"""The columnar node store and implicit sample rings.

Scaling the monitor past ~1k nodes is not a constant-factor problem:
the legacy hot path does O(nodes) Python work *per sampling tick* —
one dict copy, two gauge writes and one accountant charge per node —
so a 10k-node, 600 s window costs ~3M Python sample bodies before a
single query runs. The columnar layout makes steady-state sampling
O(ticks + power-state changes) instead:

* Each :class:`~repro.monitor.sampler.BatchSampler` group owns one
  :class:`TickLog` — a shared, growable timestamp column. A group tick
  appends *one* raw timestamp plus one quantised wire timestamp per
  distinct sensor granularity, regardless of how many nodes share the
  grid.
* Each columnar node agent owns a :class:`ColumnarRing`: no per-tick
  storage at all, just a window ``[start, end)`` into the tick log and
  a short list of *segments* — ``(tick index, power_rev, template)``
  runs during which the node's finished sample differed only in its
  timestamp (exactly the invariant ``Backend.sample_cached`` already
  relies on). Ring contents are materialised lazily: a query returns a
  :class:`ColumnarSamples` view whose ``len`` is O(1) and whose dicts
  are built on iteration, byte-identical to the scalar path's.
* Power-state changes are detected with one integer compare per tick:
  every demand/cap mutation bumps :attr:`ColumnarNodeStore.global_rev`
  (via ``Node.bump_power_rev``), and only ticks that observe a changed
  global revision rescan member nodes for stale segments.
* The per-tick telemetry side effects are deferred but *exact*: buffer
  gauges are last-write-wins (recomputed from ring state at flush) and
  the accountant charge is the same constant for every columnar member
  (enforced by :meth:`ColumnarNodeStore.accept_charge`), so replaying
  ``n`` identical float additions at flush time reproduces the scalar
  accumulator bit for bit. Flushes run before any other ``monitor``
  charge (accountant pre-charge hook) and before every metrics export.

Nodes that would break those exactness arguments — noisy sensors
(per-sample RNG), a different per-sample charge constant, agents
restored from a snapshot — simply stay on the scalar path.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.monitor.buffer import DEFAULT_SAMPLE_BYTES, CircularBuffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import Node
    from repro.monitor.node_agent import NodeAgentModule
    from repro.simkernel.engine import Simulator

_ATTR = "_columnar_store"


def columnar_store_of(sim: "Simulator") -> "ColumnarNodeStore":
    """The per-simulator store, created on first use."""
    store = getattr(sim, _ATTR, None)
    if store is None:
        store = ColumnarNodeStore(sim)
        setattr(sim, _ATTR, store)
    return store


def columnar_of(sim: "Simulator") -> Optional["ColumnarNodeStore"]:
    """The per-simulator store if one exists, else None."""
    return getattr(sim, _ATTR, None)


def _wire_timestamp(t: float, granularity_s: float) -> float:
    """The finished-sample timestamp for a tick at raw time ``t``.

    Identical arithmetic to the sensor read + ``base_sample`` path
    (``math.floor(t/g)*g`` then ``round(..., 6)``) so a materialised
    columnar sample carries the exact float the scalar path stores.
    """
    q = math.floor(t / granularity_s) * granularity_s if granularity_s > 0 else t
    return round(float(q), 6)


class _Column:
    """A growable 1-D numpy array (amortised doubling)."""

    __slots__ = ("data", "n")

    def __init__(self, dtype: str = "f8", capacity: int = 64) -> None:
        self.data = np.empty(capacity, dtype=dtype)
        self.n = 0

    def append(self, value) -> None:
        data = self.data
        if self.n == len(data):
            grown = np.empty(max(16, 2 * len(data)), dtype=data.dtype)
            grown[: len(data)] = data
            self.data = data = grown
        data[self.n] = value
        self.n += 1

    def view(self) -> np.ndarray:
        return self.data[: self.n]


class TickLog:
    """Shared timestamp column for one sample group.

    ``raw`` holds the engine times the group ticked at (the values the
    scalar ring buffer bisects over); ``wire`` holds, per distinct
    sensor granularity among the members, the quantised timestamp every
    finished sample at that tick carries.
    """

    __slots__ = ("raw", "wire")

    def __init__(self) -> None:
        self.raw = _Column()
        self.wire: Dict[float, _Column] = {}

    @property
    def n(self) -> int:
        return self.raw.n

    def ensure_granularity(self, granularity_s: float) -> None:
        """Add a wire column for ``granularity_s``, backfilling history
        so a later-joining agent can reference earlier ticks."""
        if granularity_s in self.wire:
            return
        col = _Column()
        for t in self.raw.view():
            col.append(_wire_timestamp(float(t), granularity_s))
        self.wire[granularity_s] = col

    def tick(self, now: float) -> None:
        self.raw.append(now)
        for g, col in self.wire.items():
            col.append(_wire_timestamp(now, g))


class ColumnarSamples(Sequence):
    """Lazy window of ring samples: O(1) ``len``, dicts built on read.

    Slicing materialises to a plain list (the downsampling path), so
    downstream list idioms keep working; iteration yields fresh dicts
    whose contents are byte-identical to the scalar samples.
    """

    __slots__ = ("_ring", "_lo", "_hi")

    def __init__(self, ring: "ColumnarRing", lo: int, hi: int) -> None:
        self._ring = ring
        self._lo = lo
        self._hi = max(lo, hi)

    def __len__(self) -> int:
        return self._hi - self._lo

    def __iter__(self):
        ring = self._ring
        for i in range(self._lo, self._hi):
            yield ring.materialize(i)

    def __getitem__(self, index):
        n = len(self)
        if isinstance(index, slice):
            return [self._ring.materialize(self._lo + i)
                    for i in range(*index.indices(n))]
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(index)
        return self._ring.materialize(self._lo + index)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnarSamples(n={len(self)})"


class ColumnarRing:
    """A ring-buffer-compatible *view* over a group's tick log.

    Implements the :class:`~repro.monitor.buffer.CircularBuffer` read
    surface (len / dropped / oldest / newest / range / flush /
    snapshot) without storing anything per tick. ``append`` is
    unsupported by design — contents are implicit; agents that need an
    explicit buffer again (snapshot restore) demote to a real
    :class:`CircularBuffer` via :meth:`to_circular_buffer`.
    """

    __slots__ = (
        "capacity", "log", "granularity_s", "start", "_flush_lo",
        "_frozen_end", "segments",
    )

    def __init__(
        self, log: TickLog, granularity_s: float, capacity: int, start: int
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.log = log
        self.granularity_s = granularity_s
        #: Log index of this ring's first sample.
        self.start = start
        self._flush_lo = start
        self._frozen_end: Optional[int] = None
        #: ``(log index, power_rev, template dict)`` runs, oldest first.
        self.segments: List[Tuple[int, int, dict]] = []

    # -- window arithmetic ---------------------------------------------
    @property
    def end(self) -> int:
        return self.log.n if self._frozen_end is None else self._frozen_end

    def freeze(self) -> None:
        """Stop tracking the log (agent unregistered)."""
        if self._frozen_end is None:
            self._frozen_end = self.log.n

    @property
    def total_appended(self) -> int:
        return self.end - self.start

    def _live_lo(self) -> int:
        return max(self._flush_lo, self.end - self.capacity)

    def __len__(self) -> int:
        return self.end - self._live_lo()

    @property
    def dropped(self) -> int:
        return self.total_appended - len(self)

    @property
    def oldest_timestamp(self) -> Optional[float]:
        lo = self._live_lo()
        return float(self.log.raw.data[lo]) if lo < self.end else None

    @property
    def newest_timestamp(self) -> Optional[float]:
        end = self.end
        return float(self.log.raw.data[end - 1]) if end > self._live_lo() else None

    def size_bytes(self, per_sample: int = DEFAULT_SAMPLE_BYTES) -> int:
        return len(self) * per_sample

    def capacity_bytes(self, per_sample: int = DEFAULT_SAMPLE_BYTES) -> int:
        return self.capacity * per_sample

    # -- segments -------------------------------------------------------
    def push_segment(self, log_idx: int, rev: int, template: dict) -> None:
        segs = self.segments
        if segs and segs[-1][0] == log_idx:
            segs[-1] = (log_idx, rev, template)
        else:
            segs.append((log_idx, rev, template))

    @property
    def segment_rev(self) -> int:
        """Power revision of the newest segment (-1 before the first)."""
        return self.segments[-1][1] if self.segments else -1

    def _template_for(self, i: int) -> dict:
        segs = self.segments
        lo, hi = 0, len(segs)
        while lo < hi:
            mid = (lo + hi) // 2
            if segs[mid][0] <= i:
                lo = mid + 1
            else:
                hi = mid
        return segs[lo - 1][2]

    def materialize(self, i: int) -> dict:
        """The finished sample for log index ``i`` — same dict contents
        (and key order) as the scalar ``sample_cached`` fast path."""
        sample = dict(self._template_for(i))
        sample["timestamp"] = float(self.log.wire[self.granularity_s].data[i])
        return sample

    def adopt_last_tick(self) -> None:
        """Extend the window one tick backwards (catch-up sample)."""
        idx = self.log.n - 1
        self.start = idx
        self._flush_lo = min(self._flush_lo, idx)

    # -- CircularBuffer read surface -----------------------------------
    def append(self, timestamp: float, sample: dict) -> None:
        raise TypeError(
            "ColumnarRing contents are implicit; demote the agent to a "
            "CircularBuffer before appending explicitly"
        )

    def range(self, t_start: float, t_end: float):
        if t_end < t_start:
            raise ValueError("t_end must be >= t_start")
        lo_idx = self._live_lo()
        end = self.end
        if end > lo_idx:
            window = self.log.raw.data[lo_idx:end]
            lo = int(np.searchsorted(window, t_start, side="left"))
            hi = int(np.searchsorted(window, t_end, side="right"))
            samples = ColumnarSamples(self, lo_idx + lo, lo_idx + hi)
        else:
            samples = ColumnarSamples(self, 0, 0)
        oldest = self.oldest_timestamp
        complete = self.total_appended == 0 or (
            oldest is not None and (oldest <= t_start or self.dropped == 0)
        )
        return samples, complete

    def flush(self) -> int:
        n = len(self)
        self._flush_lo = self.end
        return n

    def snapshot(self) -> List[Tuple[float, dict]]:
        lo = self._live_lo()
        raw = self.log.raw.data
        return [(float(raw[i]), self.materialize(i)) for i in range(lo, self.end)]

    def snapshot_state(self) -> dict:
        return {
            "capacity": self.capacity,
            "total_appended": self.total_appended,
            "entries": [[t, sample] for t, sample in self.snapshot()],
        }

    def restore_state(self, state: dict) -> None:
        raise TypeError(
            "ColumnarRing cannot restore explicit entries; the agent "
            "demotes to a CircularBuffer first"
        )

    def to_circular_buffer(self) -> CircularBuffer:
        """An explicit ring with identical logical contents."""
        buf = CircularBuffer(self.capacity)
        for t, sample in self.snapshot():
            buf.append(t, sample)
        buf.total_appended = self.total_appended
        return buf


class GroupColumns:
    """Columnar members of one sampler group.

    Owns the group's :class:`TickLog` and the deferred telemetry
    bookkeeping. A group tick with no power-state change is O(1) in the
    number of member nodes.
    """

    _GROUP_ATTR = "columns"

    def __init__(self, group, store: "ColumnarNodeStore") -> None:
        self.group = group
        self.store = store
        self.log = TickLog()
        self.agents: List["NodeAgentModule"] = []
        self._seen_global_rev = -1
        #: Per charge constant: member count (for deferral bookkeeping).
        self._members_by_charge: Dict[float, int] = {}
        #: Per charge constant: accountant charges accrued, not yet replayed.
        self._pending_charges: Dict[float, int] = {}
        store._groups.append(self)

    @classmethod
    def ensure(cls, group, store: "ColumnarNodeStore") -> "GroupColumns":
        cols = group.columns
        if cols is None:
            cols = cls(group, store)
            group.columns = cols
        return cols

    # -- membership -----------------------------------------------------
    def add(self, agent: "NodeAgentModule") -> ColumnarRing:
        node = agent.broker.node
        g = node.sensors.granularity_s
        self.log.ensure_granularity(g)
        ring = ColumnarRing(
            self.log, g, capacity=agent.buffer.capacity, start=self.log.n
        )
        self.agents.append(agent)
        c = agent._charge_s
        self._members_by_charge[c] = self._members_by_charge.get(c, 0) + 1
        # Force a segment scan on the next tick so the newcomer gets
        # its initial template even with no power-state change.
        self._seen_global_rev = -1
        return ring

    def remove(self, agent: "NodeAgentModule") -> None:
        if agent in self.agents:
            self.agents.remove(agent)
            c = agent._charge_s
            left = self._members_by_charge.get(c, 0) - 1
            if left > 0:
                self._members_by_charge[c] = left
            else:
                self._members_by_charge.pop(c, None)
        ring = getattr(agent, "_ring", None)
        if ring is not None:
            ring.freeze()

    # -- the tick -------------------------------------------------------
    def tick(self, now: float) -> None:
        self.log.tick(now)
        store = self.store
        if store.global_rev != self._seen_global_rev:
            self._seen_global_rev = store.global_rev
            idx = self.log.n - 1
            for agent in self.agents:
                node = agent.broker.node
                ring = agent._ring
                if ring.segment_rev != node.power_rev or not ring.segments:
                    template = agent._backend.sample_cached(
                        node, now, agent._plan
                    )
                    ring.push_segment(idx, node.power_rev, template)
        pending = self._pending_charges
        for c, n in self._members_by_charge.items():
            pending[c] = pending.get(c, 0) + n
        store._needs_flush = True

    # -- deferred telemetry --------------------------------------------
    def drain_charges(self, accountant) -> None:
        pending = self._pending_charges
        if not pending:
            return
        self._pending_charges = {}
        for c, count in pending.items():
            # Replaying n identical additions reproduces the scalar
            # accumulator exactly (same value sequence); mixed charge
            # constants never share a store (accept_charge), and
            # charge_repeated applies them in one bit-exact bulk step.
            accountant.charge_repeated("monitor", c, count)

    def flush_gauges(self) -> None:
        for agent in self.agents:
            agent._set_buffer_gauges()
            node = agent.broker.node
            idx = node._col_index
            if idx >= 0:
                self.store.samples_total[idx] = agent._ring.total_appended


class ColumnarNodeStore:
    """Structure-of-arrays registry of per-rank node state for one sim.

    Arrays are column-indexed; :meth:`adopt` assigns each node a column
    and installs the node-side revision sink so every demand/cap
    mutation lands here as one array write plus a global revision bump.
    ``power_w``/``cap_w`` are refreshed lazily (:meth:`refresh`) since
    recomputing a node's drawn power on every mutation would do the
    scalar path's work eagerly.
    """

    _GROW = 256

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.nodes: List["Node"] = []
        self.ranks: np.ndarray = np.full(self._GROW, -1, dtype=np.int64)
        self.power_w: np.ndarray = np.zeros(self._GROW, dtype=np.float64)
        self.cap_w: np.ndarray = np.full(self._GROW, np.nan, dtype=np.float64)
        self.power_rev: np.ndarray = np.zeros(self._GROW, dtype=np.int64)
        self.samples_total: np.ndarray = np.zeros(self._GROW, dtype=np.int64)
        self.dead: np.ndarray = np.zeros(self._GROW, dtype=bool)
        #: Bumped on every adopted node's power-state mutation; sampler
        #: groups compare it to skip per-node scans on quiet ticks.
        self.global_rev = 0
        self._power_dirty: set = set()
        self._groups: List[GroupColumns] = []
        self._charge_value: Optional[float] = None
        self._flushing = False
        self._hooked = False

    # -- membership -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def _grow_to(self, n: int) -> None:
        cap = len(self.ranks)
        if n <= cap:
            return
        new_cap = max(n, 2 * cap)

        def grown(arr, fill):
            out = np.full(new_cap, fill, dtype=arr.dtype)
            out[: len(arr)] = arr
            return out

        self.ranks = grown(self.ranks, -1)
        self.power_w = grown(self.power_w, 0.0)
        self.cap_w = grown(self.cap_w, np.nan)
        self.power_rev = grown(self.power_rev, 0)
        self.samples_total = grown(self.samples_total, 0)
        self.dead = grown(self.dead, False)

    def adopt(self, node: "Node", rank: int = -1) -> int:
        """Assign ``node`` a column and wire its revision sink."""
        existing = node._col_index if node._col_sink is self else -1
        if existing >= 0:
            return existing
        idx = len(self.nodes)
        self._grow_to(idx + 1)
        self.nodes.append(node)
        self.ranks[idx] = rank
        self.power_rev[idx] = node.power_rev
        node._col_sink = self
        node._col_index = idx
        self._power_dirty.add(idx)
        self._ensure_hooks()
        return idx

    def _ensure_hooks(self) -> None:
        if self._hooked:
            return
        from repro.telemetry import telemetry_of

        tel = telemetry_of(self.sim)
        tel.accountant.add_pre_charge_hook(self._on_accountant_charge)
        tel.metrics.add_flush_hook(self.flush)
        self._hooked = True

    # -- node-side sinks ------------------------------------------------
    def power_rev_changed(self, node: "Node") -> None:
        self.global_rev += 1
        idx = node._col_index
        self.power_rev[idx] = node.power_rev
        self._power_dirty.add(idx)

    def set_dead(self, rank: int, dead: bool) -> None:
        hits = np.nonzero(self.ranks[: len(self.nodes)] == rank)[0]
        for idx in hits:
            self.dead[idx] = dead

    # -- charge uniformity ---------------------------------------------
    def accept_charge(self, charge_s: float) -> bool:
        """Deferred accountant replay is only exact when every columnar
        member charges the same constant; the first member pins it."""
        if self._charge_value is None:
            self._charge_value = charge_s
            return True
        return charge_s == self._charge_value

    # -- lazy refresh ---------------------------------------------------
    def refresh(self) -> None:
        """Recompute power/cap columns for mutated nodes."""
        dirty = self._power_dirty
        if not dirty:
            return
        self._power_dirty = set()
        for idx in dirty:
            node = self.nodes[idx]
            self.power_w[idx] = node.total_power_w()
            cap = None
            if node.opal is not None:
                cap = node.opal.node_cap_w
            self.cap_w[idx] = np.nan if cap is None else float(cap)

    # -- deferred telemetry flush ---------------------------------------
    def _on_accountant_charge(self, category: str) -> None:
        if category != "monitor":
            return
        from repro.telemetry import telemetry_of

        accountant = telemetry_of(self.sim).accountant
        for cols in self._groups:
            cols.drain_charges(accountant)

    #: Set by group ticks; cleared on flush (cheap no-op guard).
    _needs_flush = False

    def flush(self) -> None:
        """Replay deferred charges and write deferred gauges.

        Runs before every metrics export and digest so deferred state
        is never observable; last-write-wins gauges and constant-value
        charge replay make the result bit-identical to the scalar
        path's (docs/performance.md has the argument).
        """
        if self._flushing or not self._needs_flush:
            return
        self._flushing = True
        try:
            from repro.telemetry import telemetry_of

            accountant = telemetry_of(self.sim).accountant
            for cols in self._groups:
                cols.drain_charges(accountant)
                cols.flush_gauges()
            self.refresh()
            self._needs_flush = False
        finally:
            self._flushing = False
