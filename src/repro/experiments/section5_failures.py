"""Section V: unreliable vendor capping and its effect on enforcement.

The paper's discussion reports that "on some nodes at a low node-level
power cap (1200 W), NVIDIA GPU power capping failed intermittently,
either picking up the last set power cap or defaulting to the maximum
power cap" — and argues that production adoption of dynamic capping
needs documented error bounds.

This experiment injects that exact failure mode (a seeded per-request
probability in the NVML driver) into the proportional-sharing scenario
and measures what a site operator would care about: how often and by
how much nodes exceed their assigned power shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cluster import PowerManagedCluster
from repro.experiments import calibration as cal
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig


@dataclass
class FailureInjectionResult:
    failure_rate: float
    nvml_requests: int
    nvml_failures: int
    max_cluster_kw: float
    #: Fraction of (node, sample) points where a node exceeded its
    #: assigned share by more than 2%.
    violation_fraction: float
    worst_violation_w: float


def run_failure_injection(failure_rate: float, seed: int = 1) -> FailureInjectionResult:
    """The Table IV proportional scenario with flaky NVML capping."""
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=cal.CLUSTER_NODES,
        seed=seed,
        nvml_failure_rate=failure_rate,
        manager_config=ManagerConfig(
            global_cap_w=cal.GLOBAL_POWER_CAP_W,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
    )
    gemm = cluster.submit(
        Jobspec(app="gemm", nnodes=6, params={"work_scale": cal.GEMM_WORK_SCALE})
    )
    qs = cluster.submit(
        Jobspec(
            app="quicksilver",
            nnodes=2,
            params={"work_scale": cal.QUICKSILVER_WORK_SCALE},
        )
    )
    cluster.run_until_complete(timeout_s=200_000)

    # Enforcement audit: compare each traced node sample against the
    # share in force at that time (from the cluster manager's log).
    trace = cluster.trace
    assert trace is not None
    share_log = cluster.manager.share_log
    qs_end = cluster.metrics(qs.jobid).runtime_s
    gemm_end = cluster.metrics(gemm.jobid).runtime_s

    def share_at(t: float):
        current = None
        for when, _, share in share_log:
            if when <= t:
                current = share
        return current

    violations = 0
    total = 0
    worst = 0.0
    for host, series in trace.node_series.items():
        for t, watts in zip(trace.times, series):
            if t <= 0 or t >= gemm_end:
                continue
            share = share_at(t)
            if share is None:
                continue
            # Idle (released) nodes are not bound by a share.
            if watts <= 410.0:
                continue
            total += 1
            over = watts - share * 1.02
            if over > 0:
                violations += 1
                worst = max(worst, watts - share)

    requests = sum(n.nvml.requests for n in cluster.nodes if n.nvml)
    failures = sum(n.nvml.failures for n in cluster.nodes if n.nvml)
    return FailureInjectionResult(
        failure_rate=failure_rate,
        nvml_requests=requests,
        nvml_failures=failures,
        max_cluster_kw=trace.max_cluster_power_w() / 1e3,
        violation_fraction=violations / total if total else 0.0,
        worst_violation_w=worst,
    )


def run_failure_sweep(
    rates=(0.0, 0.02, 0.10, 0.25), seed: int = 1
) -> Dict[float, FailureInjectionResult]:
    """Sweep NVML failure rates (0 = healthy driver)."""
    return {rate: run_failure_injection(rate, seed=seed) for rate in rates}


def table_rows(results: Dict[float, FailureInjectionResult]) -> List[str]:
    lines = [
        f"{'fail rate':>9} {'requests':>9} {'failures':>9} "
        f"{'max kW':>8} {'violations %':>13} {'worst over W':>13}"
    ]
    for rate, r in sorted(results.items()):
        lines.append(
            f"{rate:>9.2f} {r.nvml_requests:>9} {r.nvml_failures:>9} "
            f"{r.max_cluster_kw:>8.2f} {r.violation_fraction * 100:>13.2f} "
            f"{r.worst_violation_w:>13.1f}"
        )
    return lines
