"""Chaos campaign: the degradation story end to end.

Runs the proportional-sharing scenario while the fault injector crashes
one leaf broker mid-job (with an automatic restart), hangs another, and
drops/delays TBON messages in a window — then checks what production
operation cares about:

* the telemetry fetch still succeeds, with the dead node's row marked
  ``partial`` in the client CSV instead of the whole query failing;
* the cluster manager reclaims the dead node's power share within one
  recompute of the ``broker.down`` event;
* the retry/timeout/degradation counters actually moved, so the
  degradation is observable, not silent.

``repro chaos`` on the command line prints the summary table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster import PowerManagedCluster
from repro.faults import FaultEvent, FaultPlan, LinkFaults
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig
from repro.monitor.client import JobPowerData

#: When the leaf broker crashes. It stays down for the rest of the run
#: so the post-job telemetry fetch exercises retry exhaustion and the
#: per-node error record (restart/recovery is pinned by the tests).
CRASH_AT_S = 40.0
#: When the second broker hangs / for how long.
HANG_AT_S = 55.0
HANG_DURATION_S = 12.0
#: The probabilistic link-fault window.
LINK_WINDOW = (30.0, 60.0)


@dataclass
class ChaosResult:
    """What the chaos campaign observed."""

    seed: int
    n_nodes: int
    crashed_rank: int
    hung_rank: int
    crashed_host: str
    #: Per-host completeness flags from the post-crash telemetry fetch.
    node_complete: Dict[str, bool] = field(default_factory=dict)
    #: Per-host error strings for nodes that never answered.
    node_error: Dict[str, str] = field(default_factory=dict)
    fetch_rows: int = 0
    csv_lines: int = 0
    #: (time, active_nodes, per_node_share_w) entries around the crash.
    share_before_w: Optional[float] = None
    share_after_w: Optional[float] = None
    #: How many recomputes it took to react to the down event (must be 1).
    recomputes_after_down: int = 0
    rpc_retries: float = 0.0
    rpc_timeouts: float = 0.0
    degraded_aggregations: float = 0.0
    node_deaths: float = 0.0
    faults_injected: float = 0.0
    messages_dropped: float = 0.0

    def degraded_ok(self) -> bool:
        """The acceptance gate: degraded, redistributed, observable."""
        return (
            self.node_complete.get(self.crashed_host) is False
            and self.crashed_host in self.node_error
            and self.recomputes_after_down == 1
            and self.share_after_w is not None
            and self.share_before_w is not None
            and self.share_after_w > self.share_before_w
            and self.rpc_timeouts > 0
            and self.degraded_aggregations > 0
            and self.node_deaths > 0
        )

    def table_rows(self) -> List[str]:
        rows = [
            f"{'check':<38} {'value':>14}",
            f"{'crashed rank / host':<38} {self.crashed_rank}/{self.crashed_host:>8}",
            f"{'hung rank':<38} {self.hung_rank:>14}",
            f"{'fetch rows':<38} {self.fetch_rows:>14}",
            f"{'crashed host flagged partial':<38} "
            f"{str(self.node_complete.get(self.crashed_host) is False):>14}",
            f"{'share before crash (W/node)':<38} "
            f"{(self.share_before_w or 0.0):>14.1f}",
            f"{'share after crash (W/node)':<38} "
            f"{(self.share_after_w or 0.0):>14.1f}",
            f"{'recomputes to react':<38} {self.recomputes_after_down:>14}",
            f"{'rpc retries':<38} {self.rpc_retries:>14.0f}",
            f"{'rpc timeouts':<38} {self.rpc_timeouts:>14.0f}",
            f"{'degraded aggregations':<38} {self.degraded_aggregations:>14.0f}",
            f"{'node deaths seen by manager':<38} {self.node_deaths:>14.0f}",
            f"{'faults injected':<38} {self.faults_injected:>14.0f}",
            f"{'messages dropped':<38} {self.messages_dropped:>14.0f}",
            f"{'degraded_ok':<38} {str(self.degraded_ok()):>14}",
        ]
        return rows


def _counter_total(metrics, name: str) -> float:
    return sum(m.value for m in metrics.series_for(name))


def run_chaos_campaign(seed: int = 1, n_nodes: int = 8) -> ChaosResult:
    """Run the chaos scenario and audit the degradation chain."""
    if n_nodes < 4:
        raise ValueError("chaos campaign needs >= 4 nodes")
    # Deepest leaf and its neighbour: ranks that take nobody else down.
    crashed_rank = n_nodes - 1
    hung_rank = n_nodes - 2
    plan = FaultPlan(
        events=[
            FaultEvent(t=CRASH_AT_S, kind="crash", rank=crashed_rank),
            FaultEvent(t=HANG_AT_S, kind="hang", rank=hung_rank,
                       duration_s=HANG_DURATION_S),
        ],
        link=LinkFaults(
            drop_prob=0.03, delay_prob=0.10, delay_s=0.25,
            t_start=LINK_WINDOW[0], t_end=LINK_WINDOW[1],
        ),
    )
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=n_nodes,
        seed=seed,
        manager_config=ManagerConfig(
            global_cap_w=1200.0 * n_nodes,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
        fault_plan=plan,
    )
    job = cluster.submit(
        Jobspec(app="gemm", nnodes=n_nodes, params={"work_scale": 6.0})
    )
    cluster.run_until_complete(timeout_s=1_000_000)
    cluster.run_for(5.0)

    crashed_host = cluster.nodes[crashed_rank].hostname
    data: JobPowerData = cluster.monitor.client.fetch(job.jobid, timeout_s=120.0)

    # Share redistribution: last recompute before the down event vs the
    # first at/after it (the manager must react within exactly one).
    manager = cluster.manager.cluster
    down_t = next(t for t, kind, r in cluster.faults.injected if kind == "crash")
    before = [e for e in manager.share_log if e[0] < down_t]
    after = [e for e in manager.share_log if e[0] >= down_t]
    share_before = before[-1][2] if before else None
    # Entries strictly between the down event and the job's completion
    # recompute tell us how fast the reclaim happened.
    recomputes_after_down = 0
    share_after = None
    for t, _n, share in after:
        recomputes_after_down += 1
        share_after = share
        break  # the very first recompute after the event must already reclaim

    metrics = cluster.telemetry_hub.metrics
    result = ChaosResult(
        seed=seed,
        n_nodes=n_nodes,
        crashed_rank=crashed_rank,
        hung_rank=hung_rank,
        crashed_host=crashed_host,
        node_complete=dict(data.node_complete),
        node_error=dict(data.node_error),
        fetch_rows=len(data.rows),
        csv_lines=len(data.to_csv().splitlines()),
        share_before_w=share_before,
        share_after_w=share_after,
        recomputes_after_down=recomputes_after_down,
        rpc_retries=_counter_total(metrics, "rpc_retries_total"),
        rpc_timeouts=_counter_total(metrics, "rpc_timeouts_total"),
        degraded_aggregations=_counter_total(
            metrics, "monitor_degraded_aggregations_total"
        ),
        node_deaths=_counter_total(metrics, "manager_node_deaths_total"),
        faults_injected=_counter_total(metrics, "faults_injected_total"),
        messages_dropped=_counter_total(metrics, "tbon_messages_dropped_total"),
    )
    return result
