"""Figure 2: vendor-neutral telemetry while scaling across two systems.

LAMMPS, Quicksilver and Laghos scaled 1-32 nodes on Lassen and 1-8 on
Tioga, with per-component average power from the monitor's job CSVs.
Shapes to reproduce: weak-scaled apps are flat in per-node power;
strong-scaled LAMMPS *drops* with node count (mostly from the GPU
component); Tioga reports no memory/node domain (conservative CPU+OAM
sum) and draws more absolute power (8 GCDs vs 4 GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec

LASSEN_NODE_COUNTS = (1, 2, 4, 8, 16, 32)
TIOGA_NODE_COUNTS = (1, 2, 4, 8)
APPS = ("lammps", "quicksilver", "laghos")


@dataclass
class ScalingCell:
    app: str
    platform: str
    nnodes: int
    runtime_s: float
    avg_node_w: float
    avg_cpu_w: float
    avg_mem_w: float
    avg_gpu_w: float
    node_is_estimate: bool


@dataclass
class Fig2Result:
    cells: List[ScalingCell] = field(default_factory=list)

    def series(self, app: str, platform: str) -> List[Tuple[int, float]]:
        """(node count, avg node W) for one app/platform."""
        return sorted(
            (c.nnodes, c.avg_node_w)
            for c in self.cells
            if c.app == app and c.platform == platform
        )

    def cell(self, app: str, platform: str, nnodes: int) -> ScalingCell:
        for c in self.cells:
            if (c.app, c.platform, c.nnodes) == (app, platform, nnodes):
                return c
        raise KeyError((app, platform, nnodes))

    def table_rows(self) -> List[str]:
        lines = [
            f"{'app':<12} {'platform':<8} {'nodes':>5} {'time(s)':>9} "
            f"{'node W':>8} {'cpu W':>7} {'mem W':>7} {'gpu W':>8} {'node est?':>9}"
        ]
        for c in sorted(self.cells, key=lambda c: (c.app, c.platform, c.nnodes)):
            lines.append(
                f"{c.app:<12} {c.platform:<8} {c.nnodes:>5} {c.runtime_s:>9.1f} "
                f"{c.avg_node_w:>8.0f} {c.avg_cpu_w:>7.0f} {c.avg_mem_w:>7.0f} "
                f"{c.avg_gpu_w:>8.0f} {str(c.node_is_estimate):>9}"
            )
        return lines


def run_fig2(
    platforms: Tuple[str, ...] = ("lassen", "tioga"),
    apps: Tuple[str, ...] = APPS,
    seed: int = 5,
) -> Fig2Result:
    """Run the scaling sweep; one instance per platform, jobs sequential."""
    result = Fig2Result()
    for platform in platforms:
        counts = LASSEN_NODE_COUNTS if platform == "lassen" else TIOGA_NODE_COUNTS
        cluster = PowerManagedCluster(
            platform=platform, n_nodes=max(counts), seed=seed, trace=False
        )
        for app in apps:
            for n in counts:
                rec = cluster.submit(Jobspec(app=app, nnodes=n))
                cluster.run_until_complete(timeout_s=500_000)
                data = cluster.telemetry(rec.jobid)
                run = cluster.instance.app_runs[rec.jobid]
                mem_w = (
                    data.mean("mem_w") if platform != "tioga" else 0.0
                )  # no memory sensor on Tioga
                result.cells.append(
                    ScalingCell(
                        app=app,
                        platform=platform,
                        nnodes=n,
                        runtime_s=float(run.runtime_s),
                        avg_node_w=data.mean("node_w"),
                        avg_cpu_w=data.mean("cpu_w"),
                        avg_mem_w=mem_w,
                        avg_gpu_w=data.mean("gpu_w"),
                        node_is_estimate=not cluster.nodes[0].spec.node_power_measurable,
                    )
                )
    return result
