"""Table II: cross-system runtime / power / energy at 4 and 8 nodes.

LAMMPS, Laghos and Quicksilver on Lassen versus Tioga. Key shapes:
LAMMPS uses ~21.5 % less energy on Tioga (faster GCDs despite higher
power); Laghos doubles its runtime (task count doubled under weak
scaling) so per-node energy rises ~139 %; Quicksilver's HIP variant is
anomalously ~8x slow on Tioga, so the paper (and we) skip its energy
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import percent_change
from repro.cluster import PowerManagedCluster
from repro.experiments import calibration as cal
from repro.flux.jobspec import Jobspec

APPS = ("lammps", "laghos", "quicksilver")
NODE_COUNTS = (4, 8)


@dataclass
class CrossSystemCell:
    app: str
    platform: str
    nnodes: int
    tasks: int
    runtime_s: float
    avg_node_power_w: float
    avg_node_energy_kj: Optional[float]


@dataclass
class Table2Result:
    cells: Dict[Tuple[str, int, str], CrossSystemCell] = field(default_factory=dict)

    def energy_change_pct(self, app: str, nnodes: int) -> float:
        """Tioga-vs-Lassen per-node energy delta for one row (percent)."""
        lass = self.cells[(app, nnodes, "lassen")]
        tio = self.cells[(app, nnodes, "tioga")]
        if lass.avg_node_energy_kj is None or tio.avg_node_energy_kj is None:
            raise ValueError(f"{app} energy not comparable (anomalous runtime)")
        return percent_change(tio.avg_node_energy_kj, lass.avg_node_energy_kj)

    def table_rows(self) -> List[str]:
        lines = [
            f"{'app':<12} {'nodes':>5} {'platform':<8} "
            f"{'time meas/paper':>18} {'avgW meas/paper':>20} {'E/node kJ meas/paper':>22}"
        ]
        for (app, n, platform), c in sorted(self.cells.items()):
            ref = cal.TABLE2[(app, n, platform)]
            e_meas = f"{c.avg_node_energy_kj:.2f}" if c.avg_node_energy_kj else "-"
            e_ref = f"{ref[2]:.2f}" if ref[2] is not None else "-"
            lines.append(
                f"{app:<12} {n:>5} {platform:<8} "
                f"{c.runtime_s:>8.2f}/{ref[0]:<9.2f} "
                f"{c.avg_node_power_w:>9.1f}/{ref[1]:<10.1f} "
                f"{e_meas:>10}/{e_ref:<11}"
            )
        return lines


def run_table2(seed: int = 4) -> Table2Result:
    """Run all Table II cells (both systems, both node counts)."""
    result = Table2Result()
    for platform in ("lassen", "tioga"):
        cluster = PowerManagedCluster(
            platform=platform, n_nodes=max(NODE_COUNTS), seed=seed, trace=False
        )
        tasks_per_node = cluster.nodes[0].n_gpus  # 4 on Lassen, 8 on Tioga
        for app in APPS:
            for n in NODE_COUNTS:
                rec = cluster.submit(Jobspec(app=app, nnodes=n))
                cluster.run_until_complete(timeout_s=500_000)
                m = cluster.metrics(rec.jobid)
                # Power and energy come from the monitor's telemetry,
                # as in the paper — on Tioga that is the conservative
                # CPU + OAM sum (memory/uncore are not measurable).
                data = cluster.telemetry(rec.jobid)
                avg_w = data.mean("node_w")
                energy: Optional[float] = avg_w * m.runtime_s / 1e3
                if app == "quicksilver":
                    # The paper does not compare Quicksilver energy
                    # across systems (HIP anomaly).
                    energy = None
                result.cells[(app, n, platform)] = CrossSystemCell(
                    app=app,
                    platform=platform,
                    nnodes=n,
                    tasks=tasks_per_node * n,
                    runtime_s=m.runtime_s,
                    avg_node_power_w=avg_w,
                    avg_node_energy_kj=energy,
                )
    return result
