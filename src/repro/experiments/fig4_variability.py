"""Figure 4: run-to-run variability behind the Fig 3 outliers.

Box-plot statistics of the raw repeated runtimes from the overhead
experiment: Laghos and Quicksilver at 1-2 Lassen nodes spread by more
than 20 % of the median — with the monitor loaded *or not* — while the
other cells are tight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.stats import BoxStats, boxplot_stats
from repro.experiments.fig3_overhead import Fig3Result, run_fig3


@dataclass
class VariabilityCell:
    app: str
    platform: str
    nnodes: int
    monitor_on: BoxStats
    monitor_off: BoxStats

    @property
    def max_spread_pct(self) -> float:
        return max(self.monitor_on.spread_pct, self.monitor_off.spread_pct)


@dataclass
class Fig4Result:
    cells: Dict[Tuple[str, str, int], VariabilityCell] = field(default_factory=dict)

    def high_variability_cells(self, threshold_pct: float = 20.0) -> List[tuple]:
        return sorted(
            key
            for key, c in self.cells.items()
            if c.max_spread_pct > threshold_pct
        )

    def table_rows(self) -> List[str]:
        lines = [
            f"{'app':<12} {'platform':<8} {'nodes':>5} "
            f"{'spread%% (on)':>13} {'spread%% (off)':>14}"
        ]
        for (app, platform, n), c in sorted(self.cells.items()):
            lines.append(
                f"{app:<12} {platform:<8} {n:>5} "
                f"{c.monitor_on.spread_pct:>13.1f} {c.monitor_off.spread_pct:>14.1f}"
            )
        return lines


def run_fig4(fig3: Fig3Result = None, **fig3_kwargs) -> Fig4Result:
    """Derive box statistics from (or run) the overhead experiment."""
    if fig3 is None:
        fig3 = run_fig3(**fig3_kwargs)
    result = Fig4Result()
    for (app, platform, n), cell in fig3.cells.items():
        result.cells[(app, platform, n)] = VariabilityCell(
            app=app,
            platform=platform,
            nnodes=n,
            monitor_on=boxplot_stats(cell.runtimes_on_s),
            monitor_off=boxplot_stats(cell.runtimes_off_s),
        )
    return result
