"""Figure 1: power timelines for LAMMPS and Quicksilver on one Lassen node.

Single-node, all four GPUs, telemetry from flux-power-monitor at 2 s.
The paper plots total node power, one socket (CPU) and one GPU;
Quicksilver shows pronounced periodic phases, LAMMPS is flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec


@dataclass
class TimelineResult:
    app: str
    #: series name ("node", "cpu0", "gpu0") -> [(t, W)].
    series: Dict[str, List[Tuple[float, float]]]

    def swing_w(self, name: str = "node") -> float:
        """Peak-to-trough power swing of one series (phase amplitude).

        Skips the first and last two samples: those catch the idle-to-
        running ramp at job start/end, not phase behaviour.
        """
        vals = [w for _, w in self.series[name]][2:-2]
        if not vals:
            vals = [w for _, w in self.series[name]]
        return max(vals) - min(vals)

    def dominant_period_s(self, name: str = "node") -> float:
        """FFT-detected period of the series (None-safe: 0 if flat)."""
        from repro.manager.fft import estimate_period

        ts = [t for t, _ in self.series[name]]
        vals = [w for _, w in self.series[name]]
        if len(ts) < 2:
            return 0.0
        dt = float(np.median(np.diff(ts)))
        period = estimate_period(vals, dt)
        return period if period is not None else 0.0


def run_fig1(app: str, work_scale: float = 10.0, seed: int = 3) -> TimelineResult:
    """One app on one Lassen node; returns node/CPU/GPU power series.

    ``work_scale`` stretches the run so several phase periods are
    visible (the paper's Fig 1 runs are minutes long).
    """
    cluster = PowerManagedCluster(platform="lassen", n_nodes=1, seed=seed)
    rec = cluster.submit(Jobspec(app=app, nnodes=1, params={"work_scale": work_scale}))
    cluster.run_until_complete(timeout_s=50_000)
    data = cluster.telemetry(rec.jobid)
    host = data.hostnames[0]
    rows = data.samples_for(host)
    series: Dict[str, List[Tuple[float, float]]] = {
        "node": [(r["timestamp"], r["node_w"]) for r in rows],
        "cpu": [(r["timestamp"], r["cpu_w"] / 2.0) for r in rows],  # one socket
        "gpu": [(r["timestamp"], r["gpu_w"] / 4.0) for r in rows],  # one GPU
    }
    return TimelineResult(app=app, series=series)
