"""Figure 7: proportional power capping on a non-MPI application.

A Charm++ NQueens job (2 nodes, launcher="non-mpi") enters a
power-constrained cluster where a 6-node GEMM is already running under
proportional sharing. Expected shape: GEMM's node power *drops* when
NQueens arrives (its share shrinks from P_G/6 to P_G/8 per node) and
recovers when NQueens leaves — identical treatment to any MPI job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.stats import mean
from repro.cluster import PowerManagedCluster
from repro.experiments import calibration as cal
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig


@dataclass
class Fig7Result:
    #: (t, W) for one GEMM node across the run.
    gemm_timeline: List[Tuple[float, float]]
    #: (t, W) for one NQueens node.
    nqueens_timeline: List[Tuple[float, float]]
    nqueens_start_s: float
    nqueens_end_s: float
    gemm_runtime_s: float

    def gemm_power_before_w(self) -> float:
        vals = [
            w for t, w in self.gemm_timeline if 10.0 <= t < self.nqueens_start_s
        ]
        return mean(vals) if vals else 0.0

    def gemm_power_during_w(self) -> float:
        vals = [
            w
            for t, w in self.gemm_timeline
            if self.nqueens_start_s + 10.0 <= t < self.nqueens_end_s
        ]
        return mean(vals) if vals else 0.0

    def gemm_power_after_w(self) -> float:
        vals = [
            w
            for t, w in self.gemm_timeline
            if self.nqueens_end_s + 10.0 <= t < self.gemm_runtime_s
        ]
        return mean(vals) if vals else 0.0


def run_fig7(seed: int = 9, nqueens_delay_s: float = 60.0) -> Fig7Result:
    """GEMM first, NQueens arrives mid-run, leaves before GEMM ends."""
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=cal.CLUSTER_NODES,
        seed=seed,
        manager_config=ManagerConfig(
            global_cap_w=cal.GLOBAL_POWER_CAP_W,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
    )
    gemm = cluster.submit(
        Jobspec(app="gemm", nnodes=6, params={"work_scale": cal.GEMM_WORK_SCALE})
    )
    nq_spec = Jobspec(
        app="nqueens",
        nnodes=2,
        launcher="non-mpi",
        params={"work_scale": 0.8},
    )
    cluster.submit_at(nq_spec, nqueens_delay_s)
    cluster.run_until_complete(timeout_s=100_000)

    jm = cluster.instance.jobmanager
    nq_record = next(r for r in jm.jobs.values() if r.spec.app == "nqueens")
    gemm_host = cluster.nodes[jm.jobs[gemm.jobid].ranks[0]].hostname
    nq_host = cluster.nodes[nq_record.ranks[0]].hostname
    trace = cluster.trace
    assert trace is not None
    return Fig7Result(
        gemm_timeline=trace.node_timeline(gemm_host),
        nqueens_timeline=trace.node_timeline(nq_host),
        nqueens_start_s=float(nq_record.t_start),
        nqueens_end_s=float(nq_record.t_end),
        gemm_runtime_s=float(cluster.metrics(gemm.jobid).runtime_s),
    )
