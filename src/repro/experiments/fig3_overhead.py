"""Figure 3: overhead of flux-power-monitor.

Three applications at several node counts on each system, six repeated
runs with the monitor loaded and six without; overhead is the percent
increase of the mean runtime. The run-to-run jitter model is ON — the
paper's analysis (Fig 4) shows the apparent overhead spikes at 1-2
Lassen nodes come from >20 % run-to-run variability in Laghos and
Quicksilver, not from the monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.stats import mean
from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec

LASSEN_NODE_COUNTS = (1, 2, 4, 8, 16, 32)
TIOGA_NODE_COUNTS = (1, 2, 4, 8)
APPS = ("lammps", "laghos", "quicksilver")
REPEATS = 6


@dataclass
class OverheadCell:
    app: str
    platform: str
    nnodes: int
    runtimes_on_s: List[float]
    runtimes_off_s: List[float]

    @property
    def overhead_pct(self) -> float:
        """Percent slowdown of mean runtime with the monitor loaded."""
        off = mean(self.runtimes_off_s)
        on = mean(self.runtimes_on_s)
        return (on - off) / off * 100.0


@dataclass
class Fig3Result:
    cells: Dict[Tuple[str, str, int], OverheadCell] = field(default_factory=dict)

    def platform_average_pct(self, platform: str) -> float:
        vals = [c.overhead_pct for c in self.cells.values() if c.platform == platform]
        return mean(vals)

    def cell(self, app: str, platform: str, nnodes: int) -> OverheadCell:
        return self.cells[(app, platform, nnodes)]

    def table_rows(self) -> List[str]:
        lines = [f"{'app':<12} {'platform':<8} {'nodes':>5} {'overhead %':>11}"]
        for (app, platform, n), c in sorted(self.cells.items()):
            lines.append(f"{app:<12} {platform:<8} {n:>5} {c.overhead_pct:>11.2f}")
        return lines


def _measure_runs(
    platform: str, app: str, nnodes: int, with_monitor: bool, seed: int
) -> List[float]:
    """Six repeated runs in one instance; jitter varies per submission."""
    cluster = PowerManagedCluster(
        platform=platform,
        n_nodes=nnodes,
        seed=seed,
        with_monitor=with_monitor,
        trace=False,
        enable_jitter=True,
    )
    runtimes = []
    for _ in range(REPEATS):
        rec = cluster.submit(Jobspec(app=app, nnodes=nnodes))
        cluster.run_until_complete(timeout_s=1_000_000)
        runtimes.append(float(cluster.instance.app_runs[rec.jobid].runtime_s))
    return runtimes


def run_fig3(
    platforms: Tuple[str, ...] = ("lassen", "tioga"),
    apps: Tuple[str, ...] = APPS,
    node_counts: Dict[str, Tuple[int, ...]] = None,
    seed: int = 55,
) -> Fig3Result:
    """Run the full overhead matrix.

    The monitor-on and monitor-off populations deliberately use
    *different* jitter draws (different seeds), as real repeated runs
    would — the paper's point is precisely that this noise can dwarf
    the true overhead at low node counts.
    """
    node_counts = node_counts or {
        "lassen": LASSEN_NODE_COUNTS,
        "tioga": TIOGA_NODE_COUNTS,
    }
    result = Fig3Result()
    for platform in platforms:
        for app in apps:
            for n in node_counts[platform]:
                # Distinct seeds per cell and per monitor state: each
                # (app, nodes, on/off) population is an independent set
                # of real-world runs.
                cell_seed = seed + 1000 * n + 10 * sum(map(ord, app + platform))
                on = _measure_runs(platform, app, n, True, seed=cell_seed)
                off = _measure_runs(platform, app, n, False, seed=cell_seed + 1)
                result.cells[(app, platform, n)] = OverheadCell(
                    app=app,
                    platform=platform,
                    nnodes=n,
                    runtimes_on_s=on,
                    runtimes_off_s=off,
                )
    return result
