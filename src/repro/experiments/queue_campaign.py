"""Section IV-E: policy impact on a real job queue.

Ten jobs (3 Laghos, 2 Quicksilver, 3 LAMMPS, 2 GEMM; 1-8 nodes each,
seeded random order) on a 16-node power-constrained Lassen allocation,
scheduled FCFS. The paper's findings to reproduce: the queue makespan
is *identical* under proportional sharing and FPP (1539 s there), and
FPP improves average per-job energy-per-node by ~1.26 %.

Problem sizes are scaled so the queue runs for O(25 minutes) like the
paper's (the Table I base inputs finish in seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.energy import JobMetrics
from repro.analysis.stats import mean, percent_change
from repro.apps.workloads import make_random_queue
from repro.cluster import PowerManagedCluster
from repro.experiments import calibration as cal
from repro.manager.cluster_manager import ManagerConfig

#: Per-app problem-size multipliers for the queue (see module docstring).
QUEUE_WORK_SCALES: Dict[str, float] = {
    "laghos": 22.8,
    "quicksilver": 22.8,
    "lammps": 4.56,
    "gemm": 1.71,
}

#: 16 nodes at 1200 W each — the same per-node budget density as IV-C/D.
QUEUE_GLOBAL_CAP_W = 19_200.0


@dataclass
class QueueRun:
    policy: str
    makespan_s: float
    job_metrics: Dict[int, JobMetrics]

    def avg_energy_per_node_kj(self) -> float:
        """Average over jobs of per-node energy (the paper's metric)."""
        return mean([m.avg_node_energy_kj for m in self.job_metrics.values()])


@dataclass
class QueueCampaignResult:
    runs: Dict[str, QueueRun] = field(default_factory=dict)

    def makespans_equal(self, tolerance_s: float = 10.0) -> bool:
        """Within ``tolerance_s`` (paper: identical to the second; FPP's
        probe transients can shift the critical path a few seconds)."""
        spans = [r.makespan_s for r in self.runs.values()]
        return max(spans) - min(spans) <= tolerance_s

    def fpp_energy_improvement_pct(self) -> float:
        """Positive = FPP uses less energy per job-node than proportional."""
        return -percent_change(
            self.runs["fpp"].avg_energy_per_node_kj(),
            self.runs["proportional"].avg_energy_per_node_kj(),
        )

    def table_rows(self) -> List[str]:
        lines = [
            f"{'policy':<14} {'makespan s':>11} {'avg E/node kJ':>14}",
        ]
        for name, run in self.runs.items():
            lines.append(
                f"{name:<14} {run.makespan_s:>11.1f} "
                f"{run.avg_energy_per_node_kj():>14.1f}"
            )
        return lines


def run_queue_once(policy: str, seed: int = 10) -> QueueRun:
    """One queue campaign under one policy (identical seeded queue)."""
    queue_rng = np.random.default_rng(seed)  # shared across policies
    jobs = make_random_queue(
        queue_rng,
        min_nodes=1,
        max_nodes=8,
        work_scales=QUEUE_WORK_SCALES,
    )
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=cal.QUEUE_NODES,
        seed=seed,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=QUEUE_GLOBAL_CAP_W,
            policy=policy,
            static_node_cap_w=1950.0,
        ),
    )
    records = [cluster.submit(j.spec) for j in jobs]
    cluster.run_until_complete(timeout_s=1_000_000)
    return QueueRun(
        policy=policy,
        makespan_s=float(cluster.makespan_s()),
        job_metrics={r.jobid: cluster.metrics(r.jobid) for r in records},
    )


def run_queue_campaign(seed: int = 10) -> QueueCampaignResult:
    """Run the queue under proportional sharing and FPP."""
    result = QueueCampaignResult()
    for policy in ("proportional", "fpp"):
        result.runs[policy] = run_queue_once(policy, seed=seed)
    return result
