"""Table IV (and Figures 5/6): static versus dynamic power capping.

The Section IV-C/D scenario: an 8-node Lassen cluster with a 9.6 kW
budget running GEMM on 6 nodes (double iterations) next to Quicksilver
on 2 nodes (10x problem), under five policies:

* ``unconstrained`` — no budget, no capping (24.4 kW bound).
* ``ibm_default_1200`` — static IBM OPAL node caps of 1200 W (whose
  firmware conservatively caps each GPU to 100 W).
* ``static_1950`` — static IBM node caps of 1950 W (GPU 253 W), the
  manually-swept value whose measured peak approaches the 9.6 kW bound.
* ``proportional`` — flux-power-manager proportional sharing over the
  9.6 kW budget, with the 1950 W OPAL backstop.
* ``fpp`` — proportional sharing plus the per-GPU FFT policy.

The second half of the module generalises Table IV into the policy-zoo
**head-to-head**: every registered node policy (including the
safety-wrapped ``pi`` / ``ecoshift`` / ``checkpoint`` zoo) runs the
same seeded workload and the campaign emits a deterministic CSV /
markdown comparison table (``repro policies --compare``; documented in
docs/policies.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.energy import JobMetrics, combined_energy_kj
from repro.analysis.stats import percent_change
from repro.cluster import PowerManagedCluster
from repro.experiments import calibration as cal
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig
from repro.manager.policies import POLICY_FACTORIES

#: Scenario name -> ManagerConfig kwargs.
SCENARIOS: Dict[str, dict] = {
    "unconstrained": dict(global_cap_w=None, policy="static"),
    "ibm_default_1200": dict(
        global_cap_w=cal.GLOBAL_POWER_CAP_W, policy="static", static_node_cap_w=1200.0
    ),
    "static_1950": dict(
        global_cap_w=cal.GLOBAL_POWER_CAP_W, policy="static", static_node_cap_w=1950.0
    ),
    "proportional": dict(
        global_cap_w=cal.GLOBAL_POWER_CAP_W,
        policy="proportional",
        static_node_cap_w=1950.0,
    ),
    "fpp": dict(
        global_cap_w=cal.GLOBAL_POWER_CAP_W, policy="fpp", static_node_cap_w=1950.0
    ),
}


@dataclass
class ScenarioResult:
    """One Table IV row pair, plus the timelines behind Figures 5/6."""

    name: str
    metrics: Dict[str, JobMetrics]
    #: hostname -> [(t, node W)] — one GEMM node and one QS node.
    timelines: Dict[str, List[Tuple[float, float]]]
    #: (t, active nodes, per-node share W) from the cluster manager.
    share_log: List[tuple]
    max_cluster_power_w: float
    avg_cluster_power_w: float

    def combined_energy_kj(self) -> float:
        return combined_energy_kj(self.metrics.values())


def run_policy_scenario(name: str, seed: int = 1) -> ScenarioResult:
    """Run one Table IV scenario end to end."""
    try:
        cfg_kwargs = SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; choices: {sorted(SCENARIOS)}")
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=cal.CLUSTER_NODES,
        seed=seed,
        manager_config=ManagerConfig(**cfg_kwargs),
    )
    gemm = cluster.submit(
        Jobspec(app="gemm", nnodes=6, params={"work_scale": cal.GEMM_WORK_SCALE})
    )
    qs = cluster.submit(
        Jobspec(
            app="quicksilver",
            nnodes=2,
            params={"work_scale": cal.QUICKSILVER_WORK_SCALE},
        )
    )
    cluster.run_until_complete(timeout_s=100_000)

    metrics = {
        "gemm": cluster.metrics(gemm.jobid),
        "quicksilver": cluster.metrics(qs.jobid),
    }
    trace = cluster.trace
    assert trace is not None
    gemm_host = cluster.nodes[cluster.instance.jobmanager.jobs[gemm.jobid].ranks[0]].hostname
    qs_host = cluster.nodes[cluster.instance.jobmanager.jobs[qs.jobid].ranks[0]].hostname
    t_end = max(m.runtime_s for m in metrics.values())
    share_log = (
        cluster.manager.share_log if cluster.manager is not None else []
    )
    return ScenarioResult(
        name=name,
        metrics=metrics,
        timelines={
            gemm_host: trace.node_timeline(gemm_host),
            qs_host: trace.node_timeline(qs_host),
        },
        share_log=list(share_log),
        max_cluster_power_w=trace.max_cluster_power_w(),
        avg_cluster_power_w=trace.avg_cluster_power_w(t_start=0.0, t_end=t_end),
    )


@dataclass
class Table4Result:
    scenarios: Dict[str, ScenarioResult]

    def headline_claims(self) -> Dict[str, float]:
        """The abstract's comparisons, computed from measured data."""
        fpp = self.scenarios["fpp"]
        prop = self.scenarios["proportional"]
        ibm = self.scenarios["ibm_default_1200"]
        out = {}
        out["fpp_vs_prop_energy_pct"] = percent_change(
            fpp.combined_energy_kj(), prop.combined_energy_kj()
        )
        out["fpp_vs_prop_gemm_slowdown_pct"] = percent_change(
            fpp.metrics["gemm"].runtime_s, prop.metrics["gemm"].runtime_s
        )
        out["fpp_vs_ibm_energy_pct"] = percent_change(
            fpp.combined_energy_kj(), ibm.combined_energy_kj()
        )
        out["fpp_vs_ibm_gemm_speedup"] = (
            ibm.metrics["gemm"].runtime_s / fpp.metrics["gemm"].runtime_s
        )
        out["prop_vs_ibm_energy_pct"] = percent_change(
            prop.combined_energy_kj(), ibm.combined_energy_kj()
        )
        return out

    def table_rows(self) -> List[str]:
        """Formatted paper-vs-measured rows, one per scenario x app."""
        lines = [
            f"{'scenario':<18} {'app':<12} {'maxW meas/paper':>18} "
            f"{'time meas/paper':>18} {'E(kJ) meas/paper':>18}"
        ]
        for name, res in self.scenarios.items():
            for app, m in res.metrics.items():
                ref = cal.TABLE4[name][app]
                lines.append(
                    f"{name:<18} {app:<12} "
                    f"{m.max_node_power_w:>8.0f}/{ref[0]:<8.0f} "
                    f"{m.runtime_s:>8.1f}/{ref[1]:<8.1f} "
                    f"{m.avg_node_energy_kj:>8.0f}/{ref[2]:<8.0f}"
                )
        return lines


def run_table4(seed: int = 1, scenarios: Optional[List[str]] = None) -> Table4Result:
    """Run the full policy comparison (all five scenarios by default)."""
    names = scenarios or list(SCENARIOS)
    return Table4Result(
        scenarios={name: run_policy_scenario(name, seed=seed) for name in names}
    )


# ======================================================================
# Policy-zoo head-to-head (Table IV generalised to every policy)
# ======================================================================
#
# The Table IV scenarios above compare the paper's deployment *modes*
# (unconstrained / static caps / proportional / FPP). The head-to-head
# below compares the *policies themselves*: every name in the registry
# runs the same seeded workload on the same budget-constrained cluster,
# and the campaign emits one deterministic comparison row per policy
# (CSV + markdown — the table checked into docs/policies.md, and the
# byte-identity fixture behind ``tools/verify.sh``'s ``policies``
# stage).

#: Canonical head-to-head order: baselines first, then the paper's
#: dynamic policies, then the zoo. ``tests/test_policy_zoo.py`` pins
#: this against the registry so a new policy cannot silently skip the
#: campaign.
HEAD_TO_HEAD_POLICIES: Tuple[str, ...] = (
    "static",
    "proportional",
    "fpp",
    "fpp-socket",
    "history",
    "pi",
    "ecoshift",
    "checkpoint",
)


@dataclass(frozen=True)
class HeadToHeadJob:
    """One workload entry, submitted identically under every policy."""

    app: str
    nnodes: int
    work_scale: float = 1.0


#: Quick workload: small enough for the verify stage and CI, mixed
#: enough to differentiate the policies — a flat GPU-heavy app (GEMM),
#: a periodic app (Quicksilver, FPP's showcase) and the checkpointing
#: HACC proxy (the checkpoint policy's showcase).
QUICK_WORKLOAD: Tuple[HeadToHeadJob, ...] = (
    HeadToHeadJob("gemm", nnodes=3, work_scale=0.5),
    HeadToHeadJob("hacc", nnodes=3, work_scale=1.0),
    HeadToHeadJob("quicksilver", nnodes=2, work_scale=2.0),
)

#: Full workload: the Table IV problem sizes plus HACC.
FULL_WORKLOAD: Tuple[HeadToHeadJob, ...] = (
    HeadToHeadJob("gemm", nnodes=6, work_scale=cal.GEMM_WORK_SCALE),
    HeadToHeadJob("hacc", nnodes=4, work_scale=2.0),
    HeadToHeadJob(
        "quicksilver", nnodes=2, work_scale=cal.QUICKSILVER_WORK_SCALE
    ),
)


@dataclass
class PolicyRunResult:
    """One head-to-head row: a policy's outcome on the shared workload."""

    policy: str
    makespan_s: float
    combined_energy_kj: float
    avg_cluster_power_w: float
    max_cluster_power_w: float
    job_runtimes_s: Dict[str, float]
    #: Safety-wrapper activity summed over node managers (0 for
    #: unwrapped policies).
    guard_clamps: int
    damper_exits: int
    slowdown_exits: int


@dataclass
class HeadToHeadResult:
    """The full campaign: one :class:`PolicyRunResult` per policy."""

    seed: int
    quick: bool
    workload: Tuple[HeadToHeadJob, ...]
    runs: List[PolicyRunResult]

    def _job_columns(self) -> List[str]:
        return [f"{job.app}_s" for job in self.workload]

    def _columns(self) -> List[str]:
        return (
            ["policy", "makespan_s", "energy_kj", "avg_w", "max_w"]
            + self._job_columns()
            + ["guard_clamps", "damper_exits", "slowdown_exits"]
        )

    def _row(self, r: PolicyRunResult) -> List[str]:
        cells = [
            r.policy,
            f"{r.makespan_s:.3f}",
            f"{r.combined_energy_kj:.3f}",
            f"{r.avg_cluster_power_w:.3f}",
            f"{r.max_cluster_power_w:.3f}",
        ]
        cells += [f"{r.job_runtimes_s[c]:.3f}" for c in self._job_columns()]
        cells += [str(r.guard_clamps), str(r.damper_exits), str(r.slowdown_exits)]
        return cells

    def to_csv(self) -> str:
        """Byte-stable CSV (fixed column order, fixed float precision)."""
        lines = [",".join(self._columns())]
        for r in self.runs:
            lines.append(",".join(self._row(r)))
        return "\n".join(lines) + "\n"

    def to_markdown(self) -> str:
        """The same table as GitHub-flavoured markdown."""
        cols = self._columns()
        lines = [
            "| " + " | ".join(cols) + " |",
            "|" + "|".join("---" for _ in cols) + "|",
        ]
        for r in self.runs:
            lines.append("| " + " | ".join(self._row(r)) + " |")
        return "\n".join(lines) + "\n"


def _wrapper_stats(manager) -> Tuple[int, int, int]:
    """Sum safety-wrapper counters across a deployment's node managers."""
    clamps = damper = slowdown = 0
    for nm in manager.node_managers:
        d = nm.policy.describe()
        if "damperexits" not in d:
            continue  # not a wrapped policy
        clamps += sum(d.get("clamps", {}).values())
        damper += d["damperexits"]
        slowdown += d.get("slowdownexits", 0)
    return clamps, damper, slowdown


def run_policy_head_to_head_one(
    policy: str,
    seed: int = 1,
    quick: bool = True,
    workload: Optional[Tuple[HeadToHeadJob, ...]] = None,
) -> PolicyRunResult:
    """Run the shared workload under one policy."""
    jobs = workload or (QUICK_WORKLOAD if quick else FULL_WORKLOAD)
    n_nodes = max(8, sum(j.nnodes for j in jobs))
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=n_nodes,
        seed=seed,
        manager_config=ManagerConfig(
            global_cap_w=1200.0 * n_nodes,
            policy=policy,
            static_node_cap_w=1950.0,
        ),
    )
    records = [
        cluster.submit(
            Jobspec(
                app=j.app, nnodes=j.nnodes, params={"work_scale": j.work_scale}
            )
        )
        for j in jobs
    ]
    cluster.run_until_complete(timeout_s=1_000_000)

    metrics = {
        f"{j.app}_s": cluster.metrics(rec.jobid)
        for j, rec in zip(jobs, records)
    }
    trace = cluster.trace
    assert trace is not None
    makespan = cluster.makespan_s() or 0.0
    assert cluster.manager is not None
    clamps, damper, slowdown = _wrapper_stats(cluster.manager)
    return PolicyRunResult(
        policy=policy,
        makespan_s=makespan,
        combined_energy_kj=combined_energy_kj(metrics.values()),
        avg_cluster_power_w=trace.avg_cluster_power_w(
            t_start=0.0, t_end=makespan
        ),
        max_cluster_power_w=trace.max_cluster_power_w(),
        job_runtimes_s={k: m.runtime_s for k, m in metrics.items()},
        guard_clamps=clamps,
        damper_exits=damper,
        slowdown_exits=slowdown,
    )


def run_policy_head_to_head(
    seed: int = 1,
    quick: bool = True,
    policies: Optional[List[str]] = None,
) -> HeadToHeadResult:
    """Run every policy on the same seeded workload.

    Deterministic end to end: same seed → byte-identical
    :meth:`HeadToHeadResult.to_csv` (each policy runs in its own
    freshly-seeded cluster, so runs are independent and ordered).
    """
    names = list(policies) if policies is not None else list(HEAD_TO_HEAD_POLICIES)
    unknown = [n for n in names if n not in POLICY_FACTORIES]
    if unknown:
        raise ValueError(
            f"unknown policies {unknown}; choices: {sorted(POLICY_FACTORIES)}"
        )
    workload = QUICK_WORKLOAD if quick else FULL_WORKLOAD
    return HeadToHeadResult(
        seed=seed,
        quick=quick,
        workload=workload,
        runs=[
            run_policy_head_to_head_one(
                name, seed=seed, quick=quick, workload=workload
            )
            for name in names
        ],
    )
