"""Table IV (and Figures 5/6): static versus dynamic power capping.

The Section IV-C/D scenario: an 8-node Lassen cluster with a 9.6 kW
budget running GEMM on 6 nodes (double iterations) next to Quicksilver
on 2 nodes (10x problem), under five policies:

* ``unconstrained`` — no budget, no capping (24.4 kW bound).
* ``ibm_default_1200`` — static IBM OPAL node caps of 1200 W (whose
  firmware conservatively caps each GPU to 100 W).
* ``static_1950`` — static IBM node caps of 1950 W (GPU 253 W), the
  manually-swept value whose measured peak approaches the 9.6 kW bound.
* ``proportional`` — flux-power-manager proportional sharing over the
  9.6 kW budget, with the 1950 W OPAL backstop.
* ``fpp`` — proportional sharing plus the per-GPU FFT policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.energy import JobMetrics, combined_energy_kj
from repro.analysis.stats import percent_change
from repro.cluster import PowerManagedCluster
from repro.experiments import calibration as cal
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig

#: Scenario name -> ManagerConfig kwargs.
SCENARIOS: Dict[str, dict] = {
    "unconstrained": dict(global_cap_w=None, policy="static"),
    "ibm_default_1200": dict(
        global_cap_w=cal.GLOBAL_POWER_CAP_W, policy="static", static_node_cap_w=1200.0
    ),
    "static_1950": dict(
        global_cap_w=cal.GLOBAL_POWER_CAP_W, policy="static", static_node_cap_w=1950.0
    ),
    "proportional": dict(
        global_cap_w=cal.GLOBAL_POWER_CAP_W,
        policy="proportional",
        static_node_cap_w=1950.0,
    ),
    "fpp": dict(
        global_cap_w=cal.GLOBAL_POWER_CAP_W, policy="fpp", static_node_cap_w=1950.0
    ),
}


@dataclass
class ScenarioResult:
    """One Table IV row pair, plus the timelines behind Figures 5/6."""

    name: str
    metrics: Dict[str, JobMetrics]
    #: hostname -> [(t, node W)] — one GEMM node and one QS node.
    timelines: Dict[str, List[Tuple[float, float]]]
    #: (t, active nodes, per-node share W) from the cluster manager.
    share_log: List[tuple]
    max_cluster_power_w: float
    avg_cluster_power_w: float

    def combined_energy_kj(self) -> float:
        return combined_energy_kj(self.metrics.values())


def run_policy_scenario(name: str, seed: int = 1) -> ScenarioResult:
    """Run one Table IV scenario end to end."""
    try:
        cfg_kwargs = SCENARIOS[name]
    except KeyError:
        raise ValueError(f"unknown scenario {name!r}; choices: {sorted(SCENARIOS)}")
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=cal.CLUSTER_NODES,
        seed=seed,
        manager_config=ManagerConfig(**cfg_kwargs),
    )
    gemm = cluster.submit(
        Jobspec(app="gemm", nnodes=6, params={"work_scale": cal.GEMM_WORK_SCALE})
    )
    qs = cluster.submit(
        Jobspec(
            app="quicksilver",
            nnodes=2,
            params={"work_scale": cal.QUICKSILVER_WORK_SCALE},
        )
    )
    cluster.run_until_complete(timeout_s=100_000)

    metrics = {
        "gemm": cluster.metrics(gemm.jobid),
        "quicksilver": cluster.metrics(qs.jobid),
    }
    trace = cluster.trace
    assert trace is not None
    gemm_host = cluster.nodes[cluster.instance.jobmanager.jobs[gemm.jobid].ranks[0]].hostname
    qs_host = cluster.nodes[cluster.instance.jobmanager.jobs[qs.jobid].ranks[0]].hostname
    t_end = max(m.runtime_s for m in metrics.values())
    share_log = (
        cluster.manager.share_log if cluster.manager is not None else []
    )
    return ScenarioResult(
        name=name,
        metrics=metrics,
        timelines={
            gemm_host: trace.node_timeline(gemm_host),
            qs_host: trace.node_timeline(qs_host),
        },
        share_log=list(share_log),
        max_cluster_power_w=trace.max_cluster_power_w(),
        avg_cluster_power_w=trace.avg_cluster_power_w(t_start=0.0, t_end=t_end),
    )


@dataclass
class Table4Result:
    scenarios: Dict[str, ScenarioResult]

    def headline_claims(self) -> Dict[str, float]:
        """The abstract's comparisons, computed from measured data."""
        fpp = self.scenarios["fpp"]
        prop = self.scenarios["proportional"]
        ibm = self.scenarios["ibm_default_1200"]
        out = {}
        out["fpp_vs_prop_energy_pct"] = percent_change(
            fpp.combined_energy_kj(), prop.combined_energy_kj()
        )
        out["fpp_vs_prop_gemm_slowdown_pct"] = percent_change(
            fpp.metrics["gemm"].runtime_s, prop.metrics["gemm"].runtime_s
        )
        out["fpp_vs_ibm_energy_pct"] = percent_change(
            fpp.combined_energy_kj(), ibm.combined_energy_kj()
        )
        out["fpp_vs_ibm_gemm_speedup"] = (
            ibm.metrics["gemm"].runtime_s / fpp.metrics["gemm"].runtime_s
        )
        out["prop_vs_ibm_energy_pct"] = percent_change(
            prop.combined_energy_kj(), ibm.combined_energy_kj()
        )
        return out

    def table_rows(self) -> List[str]:
        """Formatted paper-vs-measured rows, one per scenario x app."""
        lines = [
            f"{'scenario':<18} {'app':<12} {'maxW meas/paper':>18} "
            f"{'time meas/paper':>18} {'E(kJ) meas/paper':>18}"
        ]
        for name, res in self.scenarios.items():
            for app, m in res.metrics.items():
                ref = cal.TABLE4[name][app]
                lines.append(
                    f"{name:<18} {app:<12} "
                    f"{m.max_node_power_w:>8.0f}/{ref[0]:<8.0f} "
                    f"{m.runtime_s:>8.1f}/{ref[1]:<8.1f} "
                    f"{m.avg_node_energy_kj:>8.0f}/{ref[2]:<8.0f}"
                )
        return lines


def run_table4(seed: int = 1, scenarios: Optional[List[str]] = None) -> Table4Result:
    """Run the full policy comparison (all five scenarios by default)."""
    names = scenarios or list(SCENARIOS)
    return Table4Result(
        scenarios={name: run_policy_scenario(name, seed=seed) for name in names}
    )
