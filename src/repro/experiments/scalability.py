"""Scalability of the telemetry path (the title's "scalable" claim).

The paper deploys on up to 32 nodes but positions the framework for
full production systems (Lassen is 792 nodes; El Capitan larger). This
study scales the simulated instance to Lassen's full size and measures
the things that grow with node count:

* job-power query latency (root fan-out versus tree aggregation),
* messages through the TBON root per query,
* aggregate telemetry payload returned for a whole-machine job.

The monitor's sampling itself is perfectly parallel (stateless local
loops), so query aggregation is the only scaling bottleneck — the
design point Section III-A's statelessness argues for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro import variorum
from repro.flux.instance import FluxInstance
from repro.monitor.module import attach_monitor
from repro.monitor.root_agent import GET_JOB_POWER_TOPIC


@dataclass
class ScaleCell:
    n_nodes: int
    strategy: str
    query_latency_s: float
    root_messages: int
    samples_returned: int
    payload_mb: float


@dataclass
class ScalabilityResult:
    cells: List[ScaleCell] = field(default_factory=list)

    def cell(self, n_nodes: int, strategy: str) -> ScaleCell:
        for c in self.cells:
            if (c.n_nodes, c.strategy) == (n_nodes, strategy):
                return c
        raise KeyError((n_nodes, strategy))

    def table_rows(self) -> List[str]:
        lines = [
            f"{'nodes':>6} {'strategy':<8} {'latency ms':>11} "
            f"{'root msgs':>10} {'samples':>9} {'payload MB':>11}"
        ]
        for c in sorted(self.cells, key=lambda c: (c.n_nodes, c.strategy)):
            lines.append(
                f"{c.n_nodes:>6} {c.strategy:<8} {c.query_latency_s * 1e3:>11.2f} "
                f"{c.root_messages:>10} {c.samples_returned:>9} {c.payload_mb:>11.2f}"
            )
        return lines


def measure_scale_point(
    n_nodes: int,
    strategy: str,
    window_s: float = 60.0,
    fanout: int = 2,
    seed: int = 7,
) -> ScaleCell:
    """One whole-machine telemetry query at a given instance size."""
    inst = FluxInstance(platform="lassen", n_nodes=n_nodes, seed=seed, fanout=fanout)
    attach_monitor(inst, strategy=strategy)
    inst.run_for(window_s)

    root = inst.brokers[0]
    msgs_before = root.messages_delivered + root.messages_sent
    t0 = inst.sim.now
    fut = root.rpc(
        0,
        GET_JOB_POWER_TOPIC,
        {"ranks": list(range(n_nodes)), "t_start": 0.0, "t_end": window_s},
    )
    while not fut.triggered:
        if not inst.sim.step():
            raise RuntimeError("drained before query completed")
    latency = inst.sim.now - t0
    nodes = fut.value["nodes"]
    n_samples = sum(len(n["samples"]) for n in nodes)
    payload_bytes = sum(
        variorum.sample_bytes_estimate(s) for n in nodes[:1] for s in n["samples"]
    ) * n_nodes  # all nodes return identically-shaped samples
    return ScaleCell(
        n_nodes=n_nodes,
        strategy=strategy,
        query_latency_s=latency,
        root_messages=(root.messages_delivered + root.messages_sent) - msgs_before,
        samples_returned=n_samples,
        payload_mb=payload_bytes / 1e6,
    )


def run_scalability(
    sizes: Tuple[int, ...] = (32, 128, 512, 792),
    strategies: Tuple[str, ...] = ("fanout", "tree"),
    seed: int = 7,
) -> ScalabilityResult:
    result = ScalabilityResult()
    for n in sizes:
        for strategy in strategies:
            result.cells.append(measure_scale_point(n, strategy, seed=seed))
    return result
