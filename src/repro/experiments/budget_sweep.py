"""Budget sweep: energy/performance Pareto of the cluster power cap.

The paper evaluates one power-constrained point (9.6 kW on 8 nodes).
This study sweeps the cluster budget from deeply constrained to
unconstrained and records, for proportional sharing on the Table IV
workload, the makespan and total energy at each point — the
hardware-overprovisioning trade-off curve [28] that motivates dynamic
power management in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.energy import combined_energy_kj
from repro.cluster import PowerManagedCluster
from repro.experiments import calibration as cal
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig


@dataclass
class BudgetPoint:
    budget_w: Optional[float]  # None = unconstrained
    makespan_s: float
    gemm_runtime_s: float
    total_energy_kj: float
    max_cluster_kw: float
    #: Max of *allocated-node* power: the quantity the proportional
    #: formula P_n = P_G/(N_k+N_i) actually bounds. Idle (released)
    #: nodes draw their ~400 W on top of the budget, so the raw
    #: cluster max exceeds P_G whenever the machine is not fully
    #: allocated (see EXPERIMENTS.md, "Reproduction insight").
    max_allocated_kw: float


@dataclass
class BudgetSweepResult:
    points: List[BudgetPoint] = field(default_factory=list)

    def table_rows(self) -> List[str]:
        lines = [
            f"{'budget kW':>9} {'makespan s':>11} {'GEMM s':>9} "
            f"{'energy kJ':>10} {'max kW':>8} {'steady kW':>10}"
        ]
        for p in self.points:
            label = f"{p.budget_w / 1e3:.1f}" if p.budget_w else "unc."
            lines.append(
                f"{label:>9} {p.makespan_s:>11.1f} {p.gemm_runtime_s:>9.1f} "
                f"{p.total_energy_kj:>10.0f} {p.max_cluster_kw:>8.2f} "
                f"{p.max_allocated_kw:>10.2f}"
            )
        return lines


def run_budget_point(
    budget_w: Optional[float], policy: str = "proportional", seed: int = 1
) -> BudgetPoint:
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=cal.CLUSTER_NODES,
        seed=seed,
        manager_config=ManagerConfig(
            global_cap_w=budget_w,
            policy=policy if budget_w is not None else "static",
            static_node_cap_w=1950.0 if budget_w is not None else None,
        ),
    )
    gemm = cluster.submit(
        Jobspec(app="gemm", nnodes=6, params={"work_scale": cal.GEMM_WORK_SCALE})
    )
    qs = cluster.submit(
        Jobspec(
            app="quicksilver",
            nnodes=2,
            params={"work_scale": cal.QUICKSILVER_WORK_SCALE},
        )
    )
    cluster.run_until_complete(timeout_s=2_000_000)
    metrics = [cluster.metrics(gemm.jobid), cluster.metrics(qs.jobid)]
    trace = cluster.trace
    assert trace is not None
    idle_w = cluster.nodes[0].idle_power_w()
    max_allocated = 0.0
    for i, _t in enumerate(trace.times):
        busy = sum(
            s[i] for s in trace.node_series.values() if s[i] > idle_w + 10.0
        )
        max_allocated = max(max_allocated, busy)
    return BudgetPoint(
        budget_w=budget_w,
        makespan_s=float(cluster.makespan_s()),
        gemm_runtime_s=metrics[0].runtime_s,
        total_energy_kj=combined_energy_kj(metrics),
        max_cluster_kw=trace.max_cluster_power_w() / 1e3,
        max_allocated_kw=max_allocated / 1e3,
    )


def run_budget_sweep(
    budgets=(6400.0, 8000.0, 9600.0, 12_000.0, 16_000.0, None),
    policy: str = "proportional",
    seed: int = 1,
) -> BudgetSweepResult:
    result = BudgetSweepResult()
    for b in budgets:
        result.points.append(run_budget_point(b, policy=policy, seed=seed))
    return result
