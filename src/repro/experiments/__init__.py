"""Experiment drivers: one module per paper table/figure.

Each driver builds the scenario, runs it in simulated time, and returns
a structured result carrying both the measured values and the paper's
reference numbers (from :mod:`repro.experiments.calibration`), so the
benchmark harness can print paper-versus-measured rows directly.
"""

from repro.experiments import calibration
from repro.experiments.fig1_timeline import run_fig1
from repro.experiments.fig2_scaling import run_fig2
from repro.experiments.table2_cross_system import run_table2
from repro.experiments.fig3_overhead import run_fig3
from repro.experiments.fig4_variability import run_fig4
from repro.experiments.table3_static import run_table3
from repro.experiments.table4_policies import run_table4, run_policy_scenario
from repro.experiments.queue_campaign import run_queue_campaign
from repro.experiments.fig7_nonmpi import run_fig7
from repro.experiments.section5_failures import run_failure_sweep
from repro.experiments.scalability import run_scalability
from repro.experiments.budget_sweep import run_budget_sweep
from repro.experiments.workflow_campaign import run_workflow_campaign
from repro.experiments.converged_queue import run_converged_queue
from repro.experiments.validate import run_validation

__all__ = [
    "calibration",
    "run_fig1",
    "run_fig2",
    "run_table2",
    "run_fig3",
    "run_fig4",
    "run_table3",
    "run_table4",
    "run_policy_scenario",
    "run_queue_campaign",
    "run_fig7",
    "run_failure_sweep",
    "run_scalability",
    "run_budget_sweep",
    "run_workflow_campaign",
    "run_converged_queue",
    "run_validation",
]
