"""Cross-cluster federation campaign (site-tier demo experiment).

One deterministic run of a two-cluster federated site — a Lassen-like
and a Tioga-like cluster under one site budget — exercising every
site-manager behaviour on a fixed script:

* demand-weighted epoch rebalancing while both clusters ramp their job
  mixes up and down;
* a whole-cluster outage on the Tioga-like cluster (every crashable
  rank crashes at t=30, restarts at t=55): the site reclaims its whole
  share in one recompute and restores it on recovery;
* a mid-run site budget retune (t=70);
* a per-cluster share floor (lassen-a) and ceiling (tioga-b) that stay
  respected throughout.

The output is the site's rebalance timeline as a deterministic CSV —
one row per rebalance, one share column per cluster — which the golden
byte-identity test (``tests/golden_federation.py``) pins together with
the Prometheus export of the ``federation_*`` metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.federation import ClusterSpec, FederatedSite, SiteConfig
from repro.flux.jobspec import Jobspec

#: The scripted outage window on the Tioga-like cluster (seconds).
OUTAGE_T, OUTAGE_DURATION_S = 30.0, 25.0
#: Site budget retune: (t, new budget W).
SITE_RETUNE = (70.0, 16_000.0)


def _counter_total(metrics, name: str) -> float:
    return sum(s.value for s in metrics.series_for(name))


@dataclass
class FederationCampaignResult:
    """Timeline + headline numbers of one federation campaign run."""

    seed: int
    site_budget_w: float
    cluster_names: Tuple[str, ...] = ()
    #: One row per rebalance: (t, reason, live names, name → share W).
    timeline: List[Tuple[float, str, Tuple[str, ...], Dict[str, float]]] = field(
        default_factory=list
    )
    #: cluster name → jobid → (runtime_s, avg_node_power_w).
    jobs: Dict[str, Dict[int, Tuple[float, float]]] = field(default_factory=dict)
    makespan_s: float = 0.0
    rebalances: float = 0.0
    outages: float = 0.0
    recoveries: float = 0.0
    retunes: float = 0.0
    prometheus: str = ""

    def timeline_csv(self) -> str:
        """The cross-cluster timeline, deterministically formatted."""
        cols = ",".join(f"{name}_share_w" for name in self.cluster_names)
        lines = [f"t_s,reason,live,{cols}"]
        for t, reason, live, shares in self.timeline:
            shares_txt = ",".join(
                f"{shares.get(name, 0.0):.3f}" for name in self.cluster_names
            )
            lines.append(f"{t:.3f},{reason},{'|'.join(live)},{shares_txt}")
        return "\n".join(lines) + "\n"

    def table_rows(self) -> List[str]:
        rows = [
            f"{'cluster':<10} {'jobs':>4} {'mean runtime s':>14} {'mean W/node':>12}",
        ]
        for name in self.cluster_names:
            metrics = self.jobs.get(name, {})
            n = len(metrics)
            mean_rt = sum(m[0] for m in metrics.values()) / n if n else 0.0
            mean_w = sum(m[1] for m in metrics.values()) / n if n else 0.0
            rows.append(f"{name:<10} {n:>4} {mean_rt:>14.1f} {mean_w:>12.1f}")
        rows.append("")
        rows.append(
            f"rebalances={self.rebalances:.0f} outages={self.outages:.0f} "
            f"recoveries={self.recoveries:.0f} retunes={self.retunes:.0f} "
            f"makespan={self.makespan_s:.1f}s"
        )
        return rows


def run_federation_campaign(seed: int = 1) -> FederationCampaignResult:
    """Run the scripted two-cluster campaign; fully deterministic."""
    config = SiteConfig(
        site_budget_w=20_000.0,
        rebalance_epoch_s=10.0,
        clusters=(
            ClusterSpec(
                name="lassen-a",
                platform="lassen",
                n_nodes=6,
                static_node_cap_w=1950.0,
                min_share_w=4_000.0,
            ),
            ClusterSpec(
                name="tioga-b",
                platform="tioga",
                n_nodes=4,
                max_share_w=14_000.0,
            ),
        ),
    )
    # Whole-cluster outage: every crashable rank of tioga-b goes down
    # together and restarts together (rank 0 hosts the root services).
    outage_plan = FaultPlan(
        events=[
            FaultEvent(t=OUTAGE_T, kind="crash", rank=rank,
                       duration_s=OUTAGE_DURATION_S)
            for rank in range(1, 4)
        ]
    )
    site = FederatedSite(config, seed=seed, fault_plans={"tioga-b": outage_plan})
    site.schedule_retune(*SITE_RETUNE)

    site.submit("lassen-a", Jobspec(app="gemm", nnodes=4,
                                    params={"work_scale": 2.0}))
    site.submit_at("lassen-a", Jobspec(app="quicksilver", nnodes=2,
                                       params={"work_scale": 1.5}), 5.0)
    site.submit_at("tioga-b", Jobspec(app="lammps", nnodes=3,
                                      params={"work_scale": 1.5}), 2.0)
    site.submit_at("tioga-b", Jobspec(app="nqueens", nnodes=2,
                                      params={"work_scale": 1.0}), 8.0)

    site.run_until_complete()
    site.run_for(4.0)

    result = FederationCampaignResult(
        seed=seed,
        site_budget_w=config.site_budget_w,
        cluster_names=tuple(sorted(site.clusters)),
    )
    for t, reason, shares, live in site.budget_log:
        result.timeline.append((t, reason, live, dict(shares)))
    for name in result.cluster_names:
        cluster = site.clusters[name]
        result.jobs[name] = {
            jobid: (m.runtime_s, m.avg_node_power_w)
            for jobid, m in sorted(cluster.all_metrics().items())
        }
    makespans = [
        site.clusters[n].makespan_s() for n in result.cluster_names
    ]
    result.makespan_s = max(m for m in makespans if m is not None)
    metrics = site.telemetry.metrics
    result.rebalances = _counter_total(metrics, "federation_rebalances_total")
    result.outages = _counter_total(metrics, "federation_cluster_outages_total")
    result.recoveries = _counter_total(
        metrics, "federation_cluster_recoveries_total"
    )
    result.retunes = _counter_total(metrics, "federation_site_retunes_total")
    result.prometheus = metrics.to_prometheus()
    return result
