"""Diverse job queues in converged-computing setups (future work §VI).

The paper's queue experiment drains a pre-filled batch queue; its
stated future work includes "studying diverse job queues in converged
computing setups" — cloud-style open arrivals rather than a drained
batch. This experiment submits the same application mix as a Poisson
arrival process and compares the power policies under steady churn,
where proportional shares change constantly as jobs come and go.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.stats import mean, percent_change
from repro.apps.workloads import make_random_queue
from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import JobState
from repro.manager.cluster_manager import ManagerConfig

#: Shorter jobs than the batch campaign: churn is the point here.
ARRIVAL_WORK_SCALES: Dict[str, float] = {
    "laghos": 10.0,
    "quicksilver": 10.0,
    "lammps": 2.0,
    "gemm": 0.75,
}


@dataclass
class ConvergedRun:
    policy: str
    n_jobs: int
    makespan_s: float
    avg_wait_s: float
    avg_energy_per_node_kj: float
    share_changes: int


@dataclass
class ConvergedResult:
    runs: Dict[str, ConvergedRun] = field(default_factory=dict)

    def fpp_energy_improvement_pct(self) -> float:
        return -percent_change(
            self.runs["fpp"].avg_energy_per_node_kj,
            self.runs["proportional"].avg_energy_per_node_kj,
        )

    def table_rows(self) -> List[str]:
        lines = [
            f"{'policy':<14} {'jobs':>4} {'makespan s':>11} {'avg wait s':>11} "
            f"{'E/node kJ':>10} {'share moves':>11}"
        ]
        for run in self.runs.values():
            lines.append(
                f"{run.policy:<14} {run.n_jobs:>4} {run.makespan_s:>11.1f} "
                f"{run.avg_wait_s:>11.1f} {run.avg_energy_per_node_kj:>10.1f} "
                f"{run.share_changes:>11}"
            )
        return lines


def run_converged_once(
    policy: str,
    seed: int = 5,
    n_jobs: int = 20,
    mean_interarrival_s: float = 60.0,
    n_nodes: int = 16,
    global_cap_w: float = 19_200.0,
) -> ConvergedRun:
    """Poisson arrivals of the paper's app mix under one policy."""
    rng = np.random.default_rng(seed)
    # Double the paper's mix to get n_jobs entries.
    per_app = max(1, n_jobs // 10)
    mix = {
        "laghos": 3 * per_app,
        "quicksilver": 2 * per_app,
        "lammps": 3 * per_app,
        "gemm": 2 * per_app,
    }
    queue = make_random_queue(
        rng, mix=mix, min_nodes=1, max_nodes=8, work_scales=ARRIVAL_WORK_SCALES
    )
    arrivals = np.cumsum(rng.exponential(mean_interarrival_s, size=len(queue)))

    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=n_nodes,
        seed=seed,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=global_cap_w, policy=policy, static_node_cap_w=1950.0
        ),
    )
    for entry, when in zip(queue, arrivals):
        cluster.submit_at(entry.spec, float(when))
    # Let all submissions land, then drain.
    cluster.run_for(float(arrivals[-1]) + 1.0)
    cluster.run_until_complete(timeout_s=5_000_000)

    records = list(cluster.instance.jobmanager.jobs.values())
    assert all(r.state is JobState.COMPLETED for r in records)
    waits = [r.t_start - r.t_submit for r in records]
    energies = [
        cluster.metrics(r.jobid).avg_node_energy_kj for r in records
    ]
    return ConvergedRun(
        policy=policy,
        n_jobs=len(records),
        makespan_s=float(cluster.makespan_s()),
        avg_wait_s=mean(waits),
        avg_energy_per_node_kj=mean(energies),
        share_changes=len(cluster.manager.share_log),
    )


def run_converged_queue(seed: int = 5, n_jobs: int = 20) -> ConvergedResult:
    result = ConvergedResult()
    for policy in ("proportional", "fpp"):
        result.runs[policy] = run_converged_once(policy, seed=seed, n_jobs=n_jobs)
    return result
