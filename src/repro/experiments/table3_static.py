"""Table III: static job-level power allocation with IBM node caps.

Same workload as Table IV, but the only control is the IBM OPAL
node-level cap, swept over the paper's four values. Reported per cap:
the firmware's derived per-GPU cap, and the maximum and average
*cluster* power (node power summed across all 8 nodes per 2 s sample).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cluster import PowerManagedCluster
from repro.experiments import calibration as cal
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig


@dataclass
class StaticCapResult:
    node_cap_w: float
    derived_gpu_cap_w: Optional[float]
    max_cluster_kw: float
    avg_cluster_kw: float
    gemm_runtime_s: float
    qs_runtime_s: float


@dataclass
class Table3Result:
    rows: Dict[float, StaticCapResult]

    def table_rows(self) -> List[str]:
        lines = [
            f"{'node cap W':>10} {'GPU cap meas/paper':>20} "
            f"{'max kW meas/paper':>20} {'avg kW meas/paper':>20}"
        ]
        for cap, r in sorted(self.rows.items(), reverse=True):
            ref = cal.TABLE3[cap]
            gpu = f"{r.derived_gpu_cap_w:.0f}" if r.derived_gpu_cap_w else "-"
            lines.append(
                f"{cap:>10.0f} {gpu:>9}/{ref[0]:<10.0f} "
                f"{r.max_cluster_kw:>9.2f}/{ref[1]:<10.2f} "
                f"{r.avg_cluster_kw:>9.2f}/{ref[2]:<10.2f}"
            )
        return lines


def run_static_cap(node_cap_w: Optional[float], seed: int = 1) -> StaticCapResult:
    """One Table III row: run the workload under one static node cap."""
    cfg = ManagerConfig(
        global_cap_w=None if node_cap_w is None else cal.GLOBAL_POWER_CAP_W,
        policy="static",
        static_node_cap_w=node_cap_w
        if node_cap_w is not None and node_cap_w < 3050.0
        else None,
    )
    cluster = PowerManagedCluster(
        platform="lassen", n_nodes=cal.CLUSTER_NODES, seed=seed, manager_config=cfg
    )
    gemm = cluster.submit(
        Jobspec(app="gemm", nnodes=6, params={"work_scale": cal.GEMM_WORK_SCALE})
    )
    qs = cluster.submit(
        Jobspec(
            app="quicksilver",
            nnodes=2,
            params={"work_scale": cal.QUICKSILVER_WORK_SCALE},
        )
    )
    cluster.run_until_complete(timeout_s=100_000)

    # Derived GPU cap as the firmware reports it (uncapped -> vendor max).
    opal = cluster.nodes[0].opal
    derived = opal.derived_gpu_cap_w if opal is not None else None
    if derived is None:
        gpus = cluster.nodes[0].gpu_domains
        derived = gpus[0].spec.max_cap_w if gpus else None

    trace = cluster.trace
    assert trace is not None
    gm = cluster.metrics(gemm.jobid)
    qm = cluster.metrics(qs.jobid)
    t_end = max(gm.runtime_s, qm.runtime_s)
    return StaticCapResult(
        node_cap_w=node_cap_w if node_cap_w is not None else 3050.0,
        derived_gpu_cap_w=derived,
        max_cluster_kw=trace.max_cluster_power_w() / 1e3,
        avg_cluster_kw=trace.avg_cluster_power_w(t_start=0.0, t_end=t_end) / 1e3,
        gemm_runtime_s=gm.runtime_s,
        qs_runtime_s=qm.runtime_s,
    )


def run_table3(seed: int = 1) -> Table3Result:
    """All four Table III rows (3050 = unconstrained)."""
    rows = {}
    for cap in (3050.0, 1200.0, 1800.0, 1950.0):
        rows[cap] = run_static_cap(None if cap >= 3050.0 else cap, seed=seed)
    return Table3Result(rows=rows)
