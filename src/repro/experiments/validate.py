"""One-shot validation: every headline claim, PASS/FAIL.

``python -m repro.cli validate`` runs the full reproduction and checks
each of the paper's quantitative claims against the measured values —
the quickest way to confirm an installation reproduces the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class Check:
    name: str
    passed: bool
    detail: str

    def row(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


@dataclass
class ValidationReport:
    checks: List[Check] = field(default_factory=list)

    def add(self, name: str, passed: bool, detail: str) -> None:
        self.checks.append(Check(name, bool(passed), detail))

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def render(self) -> str:
        lines = [c.row() for c in self.checks]
        n_pass = sum(c.passed for c in self.checks)
        lines.append(f"--- {n_pass}/{len(self.checks)} checks passed ---")
        return "\n".join(lines)


def run_validation(seed: int = 1, queue_seed: int = 10) -> ValidationReport:
    """Run the headline experiments and evaluate every claim."""
    from repro.experiments import calibration as cal
    from repro.experiments.fig1_timeline import run_fig1
    from repro.experiments.queue_campaign import run_queue_campaign
    from repro.experiments.table2_cross_system import run_table2
    from repro.experiments.table3_static import run_table3
    from repro.experiments.table4_policies import run_table4

    report = ValidationReport()

    # Fig 1 — phase behaviour.
    qs = run_fig1("quicksilver", work_scale=10)
    lm = run_fig1("lammps", work_scale=2)
    report.add(
        "fig1: Quicksilver periodic / LAMMPS flat",
        abs(qs.dominant_period_s() - 20.0) < 3.0 and lm.dominant_period_s() == 0.0,
        f"QS period {qs.dominant_period_s():.1f} s, LAMMPS none",
    )

    # Table II — cross-system energy deltas.
    t2 = run_table2()
    lammps_delta = t2.energy_change_pct("lammps", 4)
    laghos_delta = t2.energy_change_pct("laghos", 4)
    report.add(
        "table2: LAMMPS ~-21.5% energy on Tioga",
        abs(lammps_delta + 21.5) < 5.0,
        f"measured {lammps_delta:+.1f}%",
    )
    report.add(
        "table2: Laghos ~+139% energy on Tioga",
        abs(laghos_delta - 139.0) < 20.0,
        f"measured {laghos_delta:+.1f}%",
    )

    # Table III — IBM derivation + conservatism.
    t3 = run_table3(seed=seed)
    derivations_ok = all(
        abs(t3.rows[cap].derived_gpu_cap_w - ref[0]) <= 2.0
        for cap, ref in cal.TABLE3.items()
    )
    report.add(
        "table3: IBM GPU-cap derivation (100/216/253/300 W)",
        derivations_ok,
        ", ".join(
            f"{cap:.0f}->{t3.rows[cap].derived_gpu_cap_w:.0f}W" for cap in sorted(cal.TABLE3)
        ),
    )
    report.add(
        "table3: 1200 W caps are extremely conservative (~6 kW of 9.6)",
        abs(t3.rows[1200.0].max_cluster_kw - 6.05) / 6.05 < 0.10,
        f"measured {t3.rows[1200.0].max_cluster_kw:.2f} kW",
    )

    # Table IV — the policy story.
    t4 = run_table4(seed=seed)
    claims = t4.headline_claims()
    report.add(
        "table4: FPP saves ~1% energy vs proportional",
        -5.0 < claims["fpp_vs_prop_energy_pct"] < -0.2,
        f"measured {claims['fpp_vs_prop_energy_pct']:+.2f}% (paper -1.2%)",
    )
    report.add(
        "table4: FPP ~20% less energy than IBM default",
        claims["fpp_vs_ibm_energy_pct"] < -12.0,
        f"measured {claims['fpp_vs_ibm_energy_pct']:+.2f}% (paper -20%)",
    )
    report.add(
        "table4: FPP ~1.58x faster than IBM default",
        1.4 < claims["fpp_vs_ibm_gemm_speedup"] < 2.2,
        f"measured {claims['fpp_vs_ibm_gemm_speedup']:.2f}x (paper 1.58x)",
    )
    times = {k: v.metrics["gemm"].runtime_s for k, v in t4.scenarios.items()}
    report.add(
        "table4: runtime ordering unconstr<=static<=prop<=fpp<<ibm",
        times["unconstrained"]
        <= times["static_1950"]
        <= times["proportional"]
        <= times["fpp"]
        < times["ibm_default_1200"],
        " / ".join(f"{k}={v:.0f}s" for k, v in times.items()),
    )

    # Section IV-E — the queue.
    q = run_queue_campaign(seed=queue_seed)
    report.add(
        "queue: makespan identical under prop and FPP",
        q.makespans_equal(tolerance_s=10.0),
        f"{q.runs['proportional'].makespan_s:.1f} vs "
        f"{q.runs['fpp'].makespan_s:.1f} s (paper 1539 s)",
    )
    report.add(
        "queue: FPP improves per-job energy-per-node",
        q.fpp_energy_improvement_pct() > 0.2,
        f"measured {q.fpp_energy_improvement_pct():+.2f}% (paper +1.26%)",
    )

    return report
