"""Power-managed scientific workflows (future work §VI).

The paper closes with "power-performance optimizations for complex
scientific workflows" as future work. This experiment runs a
diamond-shaped workflow DAG — a preprocessing stage, a wide fan-out of
compute jobs, and a reduction — on a power-constrained cluster, and
compares a static node cap against proportional sharing.

The interesting effect: a workflow's *width varies over time*. Static
caps are sized for the widest stage and strand power during narrow
stages; proportional sharing reallocates the whole budget to whatever
stage is active, so the narrow stages run at full tilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig

N_NODES = 8
BUDGET_W = 9600.0


@dataclass
class WorkflowRun:
    policy: str
    makespan_s: float
    total_energy_kj: float
    stage_starts: Dict[str, float]

    def row(self) -> str:
        return (
            f"{self.policy:<16} {self.makespan_s:>10.1f} {self.total_energy_kj:>11.0f}"
        )


@dataclass
class WorkflowResult:
    runs: Dict[str, WorkflowRun] = field(default_factory=dict)

    def table_rows(self) -> List[str]:
        lines = [f"{'policy':<16} {'makespan s':>10} {'energy kJ':>11}"]
        for run in self.runs.values():
            lines.append(run.row())
        return lines


def run_workflow_once(policy: str, seed: int = 12) -> WorkflowRun:
    """Preprocess (2 nodes) -> 4x GEMM fan-out (2 nodes each) -> reduce."""
    static_cap = 1200.0 if policy == "static" else 1950.0
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=N_NODES,
        seed=seed,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=BUDGET_W,
            policy=policy,
            static_node_cap_w=static_cap,
        ),
    )
    pre = cluster.submit(
        Jobspec(app="laghos", nnodes=2, name="preprocess", params={"work_scale": 10})
    )
    fan = [
        cluster.submit(
            Jobspec(app="gemm", nnodes=2, name=f"compute-{i}",
                    params={"work_scale": 0.5}),
            depends_on=[pre.jobid],
        )
        for i in range(4)
    ]
    reduce_job = cluster.submit(
        Jobspec(app="laghos", nnodes=4, name="reduce", params={"work_scale": 6}),
        depends_on=[j.jobid for j in fan],
    )
    cluster.run_until_complete(timeout_s=2_000_000)

    metrics = [cluster.metrics(j.jobid) for j in [pre, *fan, reduce_job]]
    total_e = sum(m.avg_node_energy_kj * m.nnodes for m in metrics)
    return WorkflowRun(
        policy=policy,
        makespan_s=float(cluster.makespan_s()),
        total_energy_kj=total_e,
        stage_starts={
            "preprocess": pre.t_start,
            "fanout": min(j.t_start for j in fan),
            "reduce": reduce_job.t_start,
        },
    )


def run_workflow_campaign(seed: int = 12) -> WorkflowResult:
    result = WorkflowResult()
    for policy in ("static", "proportional", "fpp"):
        result.runs[policy] = run_workflow_once(policy, seed=seed)
    return result
