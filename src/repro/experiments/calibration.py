"""The paper's reference numbers, transcribed for comparison.

Every value in this module is copied from the paper (tables, figures or
prose) and used only for reporting paper-versus-measured deltas — the
simulation never reads them at runtime. Workload scale factors for the
Section IV-C/D experiments live here too, since they define the
scenarios rather than the model.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Section IV-C/D workload (GEMM 6 nodes + Quicksilver 2 nodes on 8 Lassen
# nodes; "10x problem size for Quicksilver and double the iteration count
# for GEMM").
# ---------------------------------------------------------------------------
GEMM_WORK_SCALE = 2.0
#: Chosen so the unconstrained Quicksilver run lasts the paper's 348 s.
QUICKSILVER_WORK_SCALE = 348.0 / 13.0

CLUSTER_NODES = 8
GLOBAL_POWER_CAP_W = 9600.0
UNCONSTRAINED_BOUND_W = 24400.0  # 8 nodes x 3050 W

# ---------------------------------------------------------------------------
# Table II: cross-system performance (4 and 8 nodes).
# (runtime_s, avg_node_power_w, avg_node_energy_kj); energy '-' -> None.
# ---------------------------------------------------------------------------
TABLE2 = {
    ("lammps", 4, "lassen"): (77.17, 1283.74, 99.07),
    ("lammps", 8, "lassen"): (46.33, 1155.08, 53.51),
    ("lammps", 4, "tioga"): (51.00, 1552.40, 79.17),
    ("lammps", 8, "tioga"): (29.67, 1388.99, 41.21),
    ("laghos", 4, "lassen"): (12.55, 472.91, 5.94),
    ("laghos", 8, "lassen"): (12.62, 469.59, 5.93),
    ("laghos", 4, "tioga"): (26.71, 530.87, 14.18),
    ("laghos", 8, "tioga"): (26.81, 532.28, 14.27),
    ("quicksilver", 4, "lassen"): (12.78, 546.99, None),
    ("quicksilver", 8, "lassen"): (13.63, 559.64, None),
    ("quicksilver", 4, "tioga"): (102.03, 915.82, None),
    ("quicksilver", 8, "tioga"): (106.15, 924.85, None),
}

# ---------------------------------------------------------------------------
# Fig 3: monitor overhead (averages reported in the text).
# ---------------------------------------------------------------------------
OVERHEAD_AVG_PCT = {"lassen": 1.2, "tioga": 0.04}
OVERHEAD_HEADLINE_PCT = 0.4  # abstract: "low average overhead of 0.4%"
#: Low-node-count outliers the paper highlights (app, nodes) -> avg %.
OVERHEAD_OUTLIERS_PCT = {
    ("laghos", 1): 6.2,
    ("laghos", 2): 8.2,
    ("quicksilver", 2): 9.3,
}
#: Fig 4: run-to-run spread at low node counts exceeded this.
VARIABILITY_THRESHOLD_PCT = 20.0

# ---------------------------------------------------------------------------
# Table III: static IBM node-level caps on the 8-node cluster.
# node_cap -> (derived_gpu_cap_w, max_cluster_kw, avg_cluster_kw)
# ---------------------------------------------------------------------------
TABLE3 = {
    3050.0: (300.0, 10.66, 8.9),
    1200.0: (100.0, 6.05, 5.1),
    1800.0: (216.0, 8.68, 7.2),
    1950.0: (253.0, 9.5, 7.9),
}

# ---------------------------------------------------------------------------
# Table IV: policy comparison.
# scenario -> app -> (max_node_w, exec_s, avg_node_energy_kj)
# ---------------------------------------------------------------------------
TABLE4 = {
    "unconstrained": {
        "gemm": (1523.0, 548.0, 726.0),
        "quicksilver": (952.0, 348.0, 177.0),
    },
    "ibm_default_1200": {
        "gemm": (841.0, 1145.0, 805.0),
        "quicksilver": (820.0, 359.0, 160.0),
    },
    "static_1950": {
        "gemm": (1330.0, 564.0, 652.0),
        "quicksilver": (975.0, 347.0, 175.0),
    },
    "proportional": {
        "gemm": (1343.0, 597.0, 612.0),
        "quicksilver": (939.0, 347.0, 170.0),
    },
    "fpp": {
        "gemm": (1325.0, 602.0, 598.0),
        "quicksilver": (951.0, 350.0, 174.0),
    },
}

#: Headline claims (abstract / Section IV-D / Section VI).
FPP_VS_PROP_ENERGY_PCT = -1.2
FPP_VS_PROP_PERF_LOSS_PCT = 0.8
FPP_VS_IBM_ENERGY_PCT = -20.0
FPP_VS_IBM_SPEEDUP = 1.58
PROP_VS_IBM_ENERGY_PCT = -19.0
PROP_VS_IBM_SPEEDUP = 1.59
PROP_VS_STATIC1950_ENERGY_PCT = -5.4

# ---------------------------------------------------------------------------
# Section IV-E: job queue.
# ---------------------------------------------------------------------------
QUEUE_MAKESPAN_S = 1539.0
QUEUE_NODES = 16
QUEUE_FPP_ENERGY_IMPROVEMENT_PCT = 1.26

# ---------------------------------------------------------------------------
# Monitor sizing (Section III-A).
# ---------------------------------------------------------------------------
MONITOR_BUFFER_SAMPLES = 100_000
MONITOR_BUFFER_MB = 43.4  # MiB
MONITOR_SAMPLE_INTERVAL_S = 2.0
