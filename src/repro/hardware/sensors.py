"""Power sensors: what each platform can actually measure.

Lassen's On-Chip Controller (OCC) reports node, socket, memory and
per-GPU power at 500 µs granularity; the node-level reading is taken
directly in hardware and *includes uncore*. Tioga exposes only CPU
socket power (via E-SMI MSRs) and per-OAM power (two GPUs combined,
via ROCm); memory, uncore and true node power are not measurable, so a
"node" value on Tioga is a conservative sum of CPU + OAM readings —
exactly how the paper reports it (Section IV-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.hardware.domains import DomainKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.hardware.node import Node


@dataclass
class SensorReading:
    """One instantaneous sample of a node's measurable power domains.

    ``node_w`` is the hardware node-level reading where one exists
    (Lassen); otherwise it is the conservative sum of measurable
    domains and ``node_measured`` is False.
    """

    timestamp: float
    hostname: str
    node_w: float
    node_measured: bool
    domains_w: Dict[str, float] = field(default_factory=dict)

    def total_by_kind(self, kind: DomainKind) -> float:
        """Sum of readings for all measurable domains of one kind."""
        total = 0.0
        for name, watts in self.domains_w.items():
            if name.startswith(kind.value):
                total += watts
        return total


class SensorSuite:
    """Reads a node's measurable domains, with sensor quantisation.

    Parameters
    ----------
    node:
        The node to sample.
    granularity_s:
        Native sensor update period (500 µs on Lassen's OCC, ~1 ms for
        MSR-based readings on Tioga). Readings are timestamps rounded
        down to this grid, modelling that a sample sees the last sensor
        update rather than the true instantaneous value.
    noise_sigma_w:
        Additive gaussian measurement noise per domain (small; sensors
        are good but not perfect). Uses a seeded stream when given.
    """

    def __init__(
        self,
        node: "Node",
        granularity_s: float = 500e-6,
        noise_sigma_w: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._node = node
        self.granularity_s = float(granularity_s)
        self.noise_sigma_w = float(noise_sigma_w)
        self._rng = rng

    def _noise(self) -> float:
        if self.noise_sigma_w <= 0.0 or self._rng is None:
            return 0.0
        return float(self._rng.normal(0.0, self.noise_sigma_w))

    def read(self, timestamp: float) -> SensorReading:
        """Sample every measurable domain on the node.

        Hot path: ``math.floor`` on floats matches ``np.floor`` bit for
        bit (both are correctly-rounded IEEE-754 operations), and when
        noise is enabled all of a node's draws come from one vectorized
        ``Generator.normal`` call — the generator fills its stream
        sequentially, so values equal the per-domain scalar draws (a
        regression test pins this).
        """
        node = self._node
        quantised = (
            math.floor(timestamp / self.granularity_s) * self.granularity_s
            if self.granularity_s > 0
            else timestamp
        )
        measurable = node.measurable_domains
        node_measured = node.spec.node_power_measurable
        domains: Dict[str, float] = {}
        measured_sum = 0.0
        if self.noise_sigma_w > 0.0 and self._rng is not None:
            # One draw per measurable domain plus one for the node
            # sensor, in the order the scalar path consumed them.
            noise = self._rng.normal(
                0.0, self.noise_sigma_w, size=len(measurable) + (1 if node_measured else 0)
            )
            for i, dom in enumerate(measurable):
                watts = max(0.0, dom.actual_w + float(noise[i]))
                domains[dom.spec.name] = watts
                measured_sum += watts
            if node_measured:
                # Hardware node sensor sees everything, including uncore
                # and any unmeasurable domains.
                node_w = max(0.0, node.total_power_w() + float(noise[-1]))
            else:
                node_w = measured_sum
        else:
            for dom in measurable:
                watts = max(0.0, dom.actual_w)
                domains[dom.spec.name] = watts
                measured_sum += watts
            if node_measured:
                node_w = max(0.0, node.total_power_w())
            else:
                node_w = measured_sum
        return SensorReading(
            timestamp=float(quantised),
            hostname=node.hostname,
            node_w=node_w,
            node_measured=node_measured,
            domains_w=domains,
        )
