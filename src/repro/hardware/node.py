"""The node model: domains + firmware + sensors for one server.

A :class:`Node` owns its power domains and whatever vendor firmware the
platform provides (OPAL/NVML on Lassen, E-SMI/ROCm on Tioga, RAPL on
the generic Intel platform). Workloads interact with a node only by
setting per-domain power *demand*; power managers interact only through
the firmware drivers (usually via the Variorum layer); telemetry reads
only through the :class:`~repro.hardware.sensors.SensorSuite`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.hardware.domains import DomainKind, DomainSpec, PowerDomain
from repro.hardware.firmware import (
    ESMIDriver,
    NVMLDriver,
    OPALFirmware,
    RAPLDriver,
)
from repro.hardware.sensors import SensorSuite


@dataclass(frozen=True)
class NodeSpec:
    """Static platform description of a node.

    Attributes
    ----------
    platform:
        ``"lassen"``, ``"tioga"`` or ``"generic"``.
    vendor:
        CPU vendor string used by the Variorum backend dispatch.
    domains:
        Per-component specs (sockets, memory, GPUs/OAMs, uncore).
    node_power_measurable:
        True when hardware reports a direct node-level power sensor
        (Lassen). When False, "node power" is a conservative sum of
        measurable domains (Tioga).
    node_cappable:
        True when firmware supports direct node-level capping (Lassen).
    node_max_w / node_cap_min_soft_w / node_cap_min_hard_w:
        Node capping range, where applicable.
    sensor_granularity_s:
        Native sensor refresh period.
    gpus_per_telemetry_domain:
        1 when each GPU is individually measurable (Lassen); 2 on Tioga,
        where telemetry is per-OAM (two GCDs combined).
    """

    platform: str
    vendor: str
    domains: tuple
    node_power_measurable: bool = True
    node_cappable: bool = False
    node_max_w: float = 0.0
    node_cap_min_soft_w: float = 0.0
    node_cap_min_hard_w: float = 0.0
    sensor_granularity_s: float = 500e-6
    gpus_per_telemetry_domain: int = 1

    def domain_specs(self, kind: DomainKind) -> List[DomainSpec]:
        return [d for d in self.domains if d.kind is kind]


class Node:
    """One simulated server node.

    Parameters
    ----------
    hostname:
        Unique name, e.g. ``"lassen12"``.
    spec:
        The platform :class:`NodeSpec`.
    rng:
        Optional seeded generator for sensor noise and NVML failure
        draws on this node.
    nvml_failure_rate:
        Probability that an NVML cap request misbehaves (Section V).
    """

    def __init__(
        self,
        hostname: str,
        spec: NodeSpec,
        rng: Optional[np.random.Generator] = None,
        nvml_failure_rate: float = 0.0,
        sensor_noise_sigma_w: float = 0.0,
    ) -> None:
        self.hostname = hostname
        self.spec = spec
        self.domains: Dict[str, PowerDomain] = {
            ds.name: PowerDomain(ds) for ds in spec.domains
        }
        self._by_kind: Dict[DomainKind, List[PowerDomain]] = {}
        for dom in self.domains.values():
            self._by_kind.setdefault(dom.spec.kind, []).append(dom)
        #: Measurable domains in declaration order — the sampling hot
        #: path iterates this instead of re-filtering ``domains`` on
        #: every read. Domains are fixed after construction.
        self.measurable_domains: List[PowerDomain] = [
            d for d in self.domains.values() if d.spec.measurable
        ]
        #: All domains as a list, for the power-summing hot loops.
        self._domain_list: List[PowerDomain] = list(self.domains.values())
        #: Power-state revision: bumped by every demand/cap mutation on
        #: this node (domains and OPAL report in). Sampling caches key
        #: on it — equal revisions guarantee identical observable power.
        self.power_rev = 0
        #: Columnar sink, set by ColumnarNodeStore.adopt(); while set,
        #: every revision bump is mirrored into the store's arrays.
        self._col_sink = None
        self._col_index = -1
        for dom in self._domain_list:
            dom._owner = self

        cpus = self._by_kind.get(DomainKind.CPU, [])
        gpus = self._by_kind.get(DomainKind.GPU, [])
        oams = self._by_kind.get(DomainKind.OAM, [])

        self.opal: Optional[OPALFirmware] = None
        self.nvml: Optional[NVMLDriver] = None
        self.esmi: Optional[ESMIDriver] = None
        self.rapl: Optional[RAPLDriver] = None

        if spec.platform == "lassen":
            self.opal = OPALFirmware(
                gpu_domains=gpus,
                cpu_domains=cpus,
                node_max_w=spec.node_max_w,
                soft_min_w=spec.node_cap_min_soft_w,
                hard_min_w=spec.node_cap_min_hard_w,
            )
            self.opal._owner = self
            self.nvml = NVMLDriver(
                gpu_domains=gpus, rng=rng, failure_rate=nvml_failure_rate
            )
        elif spec.platform in ("tioga", "elcapitan"):
            # AMD management plane: E-SMI/HSMP over CPU + accelerator
            # packages (MI250X OAMs on Tioga, MI300A APUs on El Capitan-
            # class nodes — the APU has no separate host CPU domain).
            self.esmi = ESMIDriver(cpu_domains=cpus, oam_domains=oams)
        else:
            self.rapl = RAPLDriver(cpu_domains=cpus)
            if gpus:
                self.nvml = NVMLDriver(
                    gpu_domains=gpus, rng=rng, failure_rate=nvml_failure_rate
                )

        self.sensors = SensorSuite(
            self,
            granularity_s=spec.sensor_granularity_s,
            noise_sigma_w=sensor_noise_sigma_w,
            rng=rng,
        )

    def bump_power_rev(self) -> None:
        """Advance the power revision (every demand/cap mutation).

        When a columnar store has adopted this node the new revision is
        mirrored into its arrays so vectorized consumers (sampler
        template scans, manager cap fan-out) see the change without
        touching the node object again.
        """
        self.power_rev += 1
        sink = self._col_sink
        if sink is not None:
            sink.power_rev_changed(self)

    # ------------------------------------------------------------------
    # Domain access
    # ------------------------------------------------------------------
    def by_kind(self, kind: DomainKind) -> List[PowerDomain]:
        return list(self._by_kind.get(kind, []))

    @property
    def cpu_domains(self) -> List[PowerDomain]:
        return self.by_kind(DomainKind.CPU)

    @property
    def gpu_domains(self) -> List[PowerDomain]:
        """Individually-cappable accelerator domains (GPU or OAM)."""
        return self.by_kind(DomainKind.GPU) or self.by_kind(DomainKind.OAM)

    @property
    def memory_domains(self) -> List[PowerDomain]:
        return self.by_kind(DomainKind.MEMORY)

    @property
    def n_gpus(self) -> int:
        """Logical GPU count (GCDs on Tioga: 2 per OAM domain)."""
        gpus = self.by_kind(DomainKind.GPU)
        if gpus:
            return len(gpus)
        return len(self.by_kind(DomainKind.OAM)) * self.spec.gpus_per_telemetry_domain

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    def raw_power_w(self) -> float:
        """Sum of every domain's drawn power, before node-cap clipping."""
        return sum([d.actual_w for d in self._domain_list])

    def total_power_w(self) -> float:
        """Node power after OPAL residual enforcement (if any).

        On Lassen, if the post-GPU-cap sum still exceeds an installed
        node cap, OPAL throttles the sockets; the node then draws the
        cap. Elsewhere this equals :meth:`raw_power_w`.
        """
        raw = self.raw_power_w()
        if self.opal is not None and self.opal.node_cap_w is not None:
            return min(raw, max(self.opal.node_cap_w, self.idle_power_w()))
        return raw

    def idle_power_w(self) -> float:
        return sum(d.spec.idle_w for d in self.domains.values())

    # ------------------------------------------------------------------
    # Demand (set by running workloads)
    # ------------------------------------------------------------------
    def apply_demand(self, demand: Dict[str, float]) -> None:
        """Set per-domain demand from a workload, by domain name."""
        for name, watts in demand.items():
            dom = self.domains.get(name)
            if dom is None:
                raise KeyError(f"{self.hostname}: no such domain {name!r}")
            dom.set_demand(watts)

    def clear_demand(self) -> None:
        for dom in self.domains.values():
            dom.clear_demand()

    # ------------------------------------------------------------------
    # Throttle signals for the performance model
    # ------------------------------------------------------------------
    def gpu_throttles(self) -> List[float]:
        """Per-accelerator dynamic-power grant ratios, in domain order."""
        return [d.throttle_ratio for d in self.gpu_domains]

    def cpu_throttle(self) -> float:
        """Combined CPU grant ratio, including OPAL residual throttling."""
        cpus = self.cpu_domains
        if not cpus:
            return 1.0
        base = min(d.throttle_ratio for d in cpus)
        if self.opal is not None:
            base *= self.opal.cpu_throttle_needed(self.raw_power_w())
        return base

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.hostname}, {self.spec.platform}, {self.total_power_w():.0f} W)"
