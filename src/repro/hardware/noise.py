"""Run-to-run variability model (OS jitter, network congestion).

Section IV-B attributes the apparent monitor overhead spikes at 1–2
Lassen nodes to run-to-run variability exceeding 20 % for Laghos and
Quicksilver — present with *and* without the monitor loaded — caused by
OS daemon jitter [22] and neighbouring-job congestion [8]. We model a
multiplicative lognormal runtime factor whose sigma depends on
(platform, application, node count), with elevated values exactly where
the paper observed them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np


#: Default variability sigma by (platform, app) at low node counts (<= 2).
#: The paper's Fig 4 shows >20% spread for laghos/quicksilver on Lassen.
_LOW_NODE_SIGMA: Dict[Tuple[str, str], float] = {
    ("lassen", "laghos"): 0.115,
    ("lassen", "quicksilver"): 0.125,
}

#: Baseline sigma for everything else (small, sub-percent scale spread).
_BASE_SIGMA: Dict[str, float] = {
    "lassen": 0.004,
    "tioga": 0.0015,
    "generic": 0.003,
}


@dataclass
class JitterModel:
    """Draws multiplicative runtime-noise factors.

    Parameters
    ----------
    rng:
        Seeded generator; with ``None`` the model is disabled (factor
        1.0 always), which keeps calibration experiments deterministic.
    low_node_threshold:
        Node counts at or below this use the elevated sigmas.
    """

    rng: Optional[np.random.Generator] = None
    low_node_threshold: int = 2
    extra_sigma: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def sigma(self, platform: str, app: str, n_nodes: int) -> float:
        """Lognormal sigma for one (platform, app, node count) cell."""
        key = (platform, app)
        if key in self.extra_sigma:
            return self.extra_sigma[key]
        if n_nodes <= self.low_node_threshold and key in _LOW_NODE_SIGMA:
            return _LOW_NODE_SIGMA[key]
        return _BASE_SIGMA.get(platform, 0.003)

    def runtime_factor(self, platform: str, app: str, n_nodes: int) -> float:
        """A multiplicative factor applied to one run's execution time.

        Lognormal with median 1.0 — jitter can only be symmetric in log
        space; congestion skews runs slow more often than fast, which
        lognormal captures.
        """
        if self.rng is None:
            return 1.0
        s = self.sigma(platform, app, n_nodes)
        if s <= 0:
            return 1.0
        return float(self.rng.lognormal(mean=0.0, sigma=s))
