"""Simulated cluster hardware.

This package substitutes for the physical Lassen (IBM Power AC922) and
Tioga (HPE Cray EX235a) machines the paper evaluates on. It models:

* per-component **power domains** (CPU sockets, memory, GPUs, OAM
  packages, uncore) with idle/max power and capping semantics,
* **firmware** behaviours — IBM OPAL node-level capping with its
  conservative node→GPU cap derivation (calibrated to Table III),
  the NVML GPU-cap driver (including the intermittent failures the
  paper reports in Section V), and AMD's E-SMI/ROCm path where user
  capping is disabled on the early-access system,
* **sensors** — which domains are measurable on each platform and at
  what granularity (Lassen: node/CPU/mem/GPU via OCC; Tioga: CPU and
  per-OAM only, no memory or node domain),
* a **run-to-run noise** model (OS jitter / congestion) used to
  reproduce the variability analysis in Figures 3 and 4.
"""

from repro.hardware.domains import DomainKind, DomainSpec, PowerDomain
from repro.hardware.node import Node, NodeSpec
from repro.hardware.firmware import (
    CappingError,
    ESMIDriver,
    NVMLDriver,
    OPALFirmware,
    RAPLDriver,
    ibm_derived_gpu_cap,
)
from repro.hardware.sensors import SensorReading, SensorSuite
from repro.hardware.noise import JitterModel

__all__ = [
    "DomainKind",
    "DomainSpec",
    "PowerDomain",
    "Node",
    "NodeSpec",
    "CappingError",
    "OPALFirmware",
    "NVMLDriver",
    "ESMIDriver",
    "RAPLDriver",
    "ibm_derived_gpu_cap",
    "SensorReading",
    "SensorSuite",
    "JitterModel",
]
