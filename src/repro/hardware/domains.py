"""Power domains: the unit of telemetry and capping.

A *domain* is a component whose power is separately measurable and/or
cappable: a CPU socket, a memory subsystem, a single GPU, an OAM package
(two GPUs on Tioga), or the uncore. Each domain carries:

* an idle floor and a nameplate maximum,
* a *demand* — the power the currently-running workload would draw if
  unconstrained,
* zero or more *cap sources* (e.g. an NVML user cap and an OPAL-derived
  firmware cap on the same GPU); the effective cap is their minimum.

Actual drawn power is ``clamp(demand, idle, effective_cap)`` — capping
can never push a component below its idle floor, and a component never
draws more than demanded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class DomainKind(enum.Enum):
    """Component classes; telemetry aggregates by kind."""

    CPU = "cpu"
    GPU = "gpu"
    MEMORY = "memory"
    OAM = "oam"  # AMD Open Compute Accelerator Module: one package, two GCDs
    UNCORE = "uncore"


@dataclass(frozen=True)
class DomainSpec:
    """Static description of a power domain.

    Attributes
    ----------
    name:
        Unique within a node, e.g. ``"socket0"``, ``"gpu2"``.
    kind:
        The :class:`DomainKind`.
    idle_w:
        Power drawn when no work is assigned.
    max_w:
        Nameplate maximum power.
    min_cap_w / max_cap_w:
        Legal capping range; ``None`` in ``cappable=False`` domains.
    cappable:
        Whether hardware exposes a cap dial for this domain.
    measurable:
        Whether hardware exposes a power sensor for this domain.
    """

    name: str
    kind: DomainKind
    idle_w: float
    max_w: float
    cappable: bool = False
    measurable: bool = True
    min_cap_w: Optional[float] = None
    max_cap_w: Optional[float] = None

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.max_w < self.idle_w:
            raise ValueError(
                f"domain {self.name}: need 0 <= idle_w <= max_w, "
                f"got idle={self.idle_w}, max={self.max_w}"
            )
        if self.cappable:
            if self.min_cap_w is None or self.max_cap_w is None:
                raise ValueError(f"domain {self.name}: cappable without cap range")
            if not (0 <= self.min_cap_w <= self.max_cap_w):
                raise ValueError(f"domain {self.name}: invalid cap range")


class PowerDomain:
    """Runtime state of one power domain on one node."""

    def __init__(self, spec: DomainSpec) -> None:
        self.spec = spec
        self._demand_w = spec.idle_w
        # Independent cap sources; effective cap is their min.
        self._caps: Dict[str, float] = {}
        #: Owning node, set by Node construction. Every mutation that
        #: can change observable power bumps the owner's ``power_rev``
        #: so sampling caches know when their state went stale.
        self._owner = None

    # ------------------------------------------------------------------
    # Demand
    # ------------------------------------------------------------------
    @property
    def demand_w(self) -> float:
        """Unconstrained power the current workload would draw."""
        return self._demand_w

    def set_demand(self, watts: float) -> None:
        """Set workload demand; clamped into [idle_w, max_w]."""
        self._demand_w = float(min(max(watts, self.spec.idle_w), self.spec.max_w))
        if self._owner is not None:
            self._owner.bump_power_rev()

    def clear_demand(self) -> None:
        """Reset demand to the idle floor (workload departed)."""
        self._demand_w = self.spec.idle_w
        if self._owner is not None:
            self._owner.bump_power_rev()

    # ------------------------------------------------------------------
    # Capping
    # ------------------------------------------------------------------
    def set_cap(self, source: str, watts: Optional[float]) -> None:
        """Install (or with ``None``, remove) a cap from a named source.

        The value is clamped into the legal capping range of the domain;
        callers that need strict validation (drivers) do it themselves.
        """
        if not self.spec.cappable:
            raise ValueError(f"domain {self.spec.name} is not cappable")
        if watts is None:
            self._caps.pop(source, None)
            if self._owner is not None:
                self._owner.bump_power_rev()
            return
        lo = self.spec.min_cap_w if self.spec.min_cap_w is not None else 0.0
        hi = self.spec.max_cap_w if self.spec.max_cap_w is not None else self.spec.max_w
        self._caps[source] = float(min(max(watts, lo), hi))
        if self._owner is not None:
            self._owner.bump_power_rev()

    def get_cap(self, source: str) -> Optional[float]:
        return self._caps.get(source)

    @property
    def effective_cap_w(self) -> Optional[float]:
        """Minimum over all installed cap sources, or None if uncapped."""
        if not self._caps:
            return None
        return min(self._caps.values())

    # ------------------------------------------------------------------
    # Power
    # ------------------------------------------------------------------
    @property
    def actual_w(self) -> float:
        """Power currently drawn: demand limited by the effective cap.

        Hot path (sensor sampling hits every domain): the cap logic is
        inlined rather than going through :attr:`effective_cap_w`, with
        comparisons ordered to match ``min(p, max(cap, idle))`` exactly.
        """
        p = self._demand_w
        caps = self._caps
        if caps:
            limit = min(caps.values())
            idle = self.spec.idle_w
            if limit < idle:
                limit = idle
            if limit < p:
                p = limit
        return p

    @property
    def throttle_ratio(self) -> float:
        """Fraction of *dynamic* (above-idle) demand actually granted.

        1.0 when uncapped or demand fits under the cap; approaches 0 as
        the cap squeezes the domain to its idle floor. This is the
        signal the performance model consumes.
        """
        dyn_demand = self._demand_w - self.spec.idle_w
        if dyn_demand <= 0:
            return 1.0
        dyn_actual = self.actual_w - self.spec.idle_w
        return max(0.0, min(1.0, dyn_actual / dyn_demand))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PowerDomain({self.spec.name}, demand={self._demand_w:.0f}W, "
            f"actual={self.actual_w:.0f}W, cap={self.effective_cap_w})"
        )
