"""A generic Intel-style platform.

Not one of the paper's two testbeds; it exists to exercise Variorum's
*best-effort node power capping* path — on Intel (and AMD) there is no
hardware node-level cap dial, so Variorum distributes a node budget
uniformly across the CPU sockets (Section II-C). Used by tests and the
vendor-neutrality examples.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.hardware.domains import DomainKind, DomainSpec
from repro.hardware.node import Node, NodeSpec


@lru_cache(maxsize=None)
def generic_node_spec(n_sockets: int = 2, n_gpus: int = 0) -> NodeSpec:
    """Build a generic dual-socket (optionally GPU-bearing) node spec."""
    domains = tuple(
        DomainSpec(
            name=f"cpu{i}",
            kind=DomainKind.CPU,
            idle_w=35.0,
            max_w=205.0,
            cappable=True,
            min_cap_w=50.0,
            max_cap_w=205.0,
        )
        for i in range(n_sockets)
    ) + (
        DomainSpec(
            name="memory0",
            kind=DomainKind.MEMORY,
            idle_w=20.0,
            max_w=80.0,
            cappable=False,
        ),
    ) + tuple(
        DomainSpec(
            name=f"gpu{i}",
            kind=DomainKind.GPU,
            idle_w=45.0,
            max_w=250.0,
            cappable=True,
            min_cap_w=100.0,
            max_cap_w=250.0,
        )
        for i in range(n_gpus)
    ) + (
        DomainSpec(
            name="uncore0",
            kind=DomainKind.UNCORE,
            idle_w=50.0,
            max_w=50.0,
            cappable=False,
            measurable=False,
        ),
    )
    return NodeSpec(
        platform="generic",
        vendor="intel",
        domains=domains,
        node_power_measurable=False,
        node_cappable=False,
        node_max_w=0.0,
        sensor_granularity_s=1e-3,
        gpus_per_telemetry_domain=1,
    )


def make_generic_node(
    hostname: str,
    rng: Optional[np.random.Generator] = None,
    n_sockets: int = 2,
    n_gpus: int = 0,
    nvml_failure_rate: float = 0.0,
    sensor_noise_sigma_w: float = 0.0,
) -> Node:
    """Construct one generic node."""
    return Node(
        hostname=hostname,
        spec=generic_node_spec(n_sockets=n_sockets, n_gpus=n_gpus),
        rng=rng,
        nvml_failure_rate=nvml_failure_rate,
        sensor_noise_sigma_w=sensor_noise_sigma_w,
    )
