"""Tioga: HPE Cray EX235a nodes (Section II-A).

Single-socket AMD Trento (64 cores) plus four AMD Instinct MI250X OAM
packages; each OAM holds two Graphics Compute Dies (GCDs), i.e. 8
logical GPUs per node. Telemetry exists only at the CPU level (E-SMI /
HSMP MSRs) and the OAM level (two GCDs combined, via ROCm) — memory,
uncore and true node power are *not* measurable, so reported node power
is a conservative CPU + 4×OAM sum. Power capping exists in hardware at
the CPU and OAM level but is not enabled for users on this early-access
system. Max OAM power: 560 W.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.hardware.domains import DomainKind, DomainSpec
from repro.hardware.node import Node, NodeSpec

OAM_MAX_W = 560.0
GCDS_PER_OAM = 2


@lru_cache(maxsize=None)
def tioga_node_spec() -> NodeSpec:
    """Build the EX235a node spec."""
    domains = (
        DomainSpec(
            name="cpu0",
            kind=DomainKind.CPU,
            idle_w=60.0,
            max_w=280.0,
            cappable=True,  # in hardware; driver refuses user requests
            min_cap_w=100.0,
            max_cap_w=280.0,
        ),
    ) + tuple(
        DomainSpec(
            name=f"oam{i}",
            kind=DomainKind.OAM,
            idle_w=90.0,  # two GCDs idling at ~45 W each
            max_w=OAM_MAX_W,
            cappable=True,
            min_cap_w=100.0,
            max_cap_w=OAM_MAX_W,
        )
        for i in range(4)
    ) + (
        DomainSpec(
            name="memory0",
            kind=DomainKind.MEMORY,
            idle_w=25.0,
            max_w=100.0,
            cappable=False,
            measurable=False,  # no memory power sensor on Tioga
        ),
        DomainSpec(
            name="uncore0",
            kind=DomainKind.UNCORE,
            idle_w=60.0,
            max_w=60.0,
            cappable=False,
            measurable=False,
        ),
    )
    return NodeSpec(
        platform="tioga",
        vendor="amd",
        domains=domains,
        node_power_measurable=False,
        node_cappable=False,
        node_max_w=0.0,
        sensor_granularity_s=1e-3,
        gpus_per_telemetry_domain=GCDS_PER_OAM,
    )


def make_tioga_node(
    hostname: str,
    rng: Optional[np.random.Generator] = None,
    sensor_noise_sigma_w: float = 0.0,
    **_ignored,
) -> Node:
    """Construct one Tioga node."""
    return Node(
        hostname=hostname,
        spec=tioga_node_spec(),
        rng=rng,
        sensor_noise_sigma_w=sensor_noise_sigma_w,
    )
