"""Lassen: IBM Power AC922 nodes (Section II-A).

Each dual-socket node has 44 Power9 cores, 4 NVIDIA Volta V100 GPUs,
256 GB CPU memory and 64 GB HBM2. Node power telemetry is direct in
hardware (OCC, 500 µs granularity) and includes uncore. OPAL provides
node-level capping: max 3050 W, minimum soft cap 500 W, minimum hard
cap with GPU activity 1000 W. GPUs are individually cappable through
NVML in [100, 300] W.

Component idle floors are chosen so that the idle node draws ~400 W,
the value the paper assumes from its measurements (Section IV-C).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.hardware.domains import DomainKind, DomainSpec
from repro.hardware.node import Node, NodeSpec

#: Idle node power the paper measured (Section IV-C): 2*40 + 30 + 4*50 + 90.
LASSEN_IDLE_NODE_W = 400.0

GPU_MIN_CAP_W = 100.0
GPU_MAX_CAP_W = 300.0
NODE_MAX_W = 3050.0
NODE_SOFT_MIN_W = 500.0
NODE_HARD_MIN_W = 1000.0


@lru_cache(maxsize=None)
def lassen_node_spec() -> NodeSpec:
    """Build the AC922 node spec."""
    domains = (
        DomainSpec(
            name="cpu0",
            kind=DomainKind.CPU,
            idle_w=40.0,
            max_w=250.0,
            cappable=True,
            min_cap_w=50.0,
            max_cap_w=250.0,
        ),
        DomainSpec(
            name="cpu1",
            kind=DomainKind.CPU,
            idle_w=40.0,
            max_w=250.0,
            cappable=True,
            min_cap_w=50.0,
            max_cap_w=250.0,
        ),
        DomainSpec(
            name="memory0",
            kind=DomainKind.MEMORY,
            idle_w=30.0,
            max_w=150.0,
            cappable=False,
        ),
    ) + tuple(
        DomainSpec(
            name=f"gpu{i}",
            kind=DomainKind.GPU,
            idle_w=50.0,
            max_w=300.0,
            cappable=True,
            min_cap_w=GPU_MIN_CAP_W,
            max_cap_w=GPU_MAX_CAP_W,
        )
        for i in range(4)
    ) + (
        # Uncore (NVLink, fans, VRs, PCIe) — visible only through the
        # hardware node sensor, never as a per-domain reading.
        DomainSpec(
            name="uncore0",
            kind=DomainKind.UNCORE,
            idle_w=90.0,
            max_w=90.0,
            cappable=False,
            measurable=False,
        ),
    )
    return NodeSpec(
        platform="lassen",
        vendor="ibm",
        domains=domains,
        node_power_measurable=True,
        node_cappable=True,
        node_max_w=NODE_MAX_W,
        node_cap_min_soft_w=NODE_SOFT_MIN_W,
        node_cap_min_hard_w=NODE_HARD_MIN_W,
        sensor_granularity_s=500e-6,
        gpus_per_telemetry_domain=1,
    )


def make_lassen_node(
    hostname: str,
    rng: Optional[np.random.Generator] = None,
    nvml_failure_rate: float = 0.0,
    sensor_noise_sigma_w: float = 0.0,
) -> Node:
    """Construct one Lassen node."""
    return Node(
        hostname=hostname,
        spec=lassen_node_spec(),
        rng=rng,
        nvml_failure_rate=nvml_failure_rate,
        sensor_noise_sigma_w=sensor_noise_sigma_w,
    )
