"""Platform definitions: Lassen, Tioga, El Capitan-class and a generic
Intel machine."""

from repro.hardware.platforms.lassen import lassen_node_spec, make_lassen_node
from repro.hardware.platforms.tioga import tioga_node_spec, make_tioga_node
from repro.hardware.platforms.elcapitan import (
    elcapitan_node_spec,
    make_elcapitan_node,
)
from repro.hardware.platforms.generic import generic_node_spec, make_generic_node

PLATFORM_FACTORIES = {
    "lassen": make_lassen_node,
    "tioga": make_tioga_node,
    "elcapitan": make_elcapitan_node,
    "generic": make_generic_node,
}

PLATFORM_SPECS = {
    "lassen": lassen_node_spec,
    "tioga": tioga_node_spec,
    "elcapitan": elcapitan_node_spec,
    "generic": generic_node_spec,
}


def make_node(platform: str, hostname: str, **kwargs):
    """Construct a node of the named platform."""
    try:
        factory = PLATFORM_FACTORIES[platform]
    except KeyError:
        raise ValueError(
            f"unknown platform {platform!r}; choices: {sorted(PLATFORM_FACTORIES)}"
        ) from None
    return factory(hostname, **kwargs)


__all__ = [
    "lassen_node_spec",
    "make_lassen_node",
    "tioga_node_spec",
    "make_tioga_node",
    "elcapitan_node_spec",
    "make_elcapitan_node",
    "generic_node_spec",
    "make_generic_node",
    "make_node",
    "PLATFORM_FACTORIES",
    "PLATFORM_SPECS",
]
