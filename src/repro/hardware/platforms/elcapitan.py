"""El Capitan-class: HPE Cray EX255a nodes with four AMD MI300A APUs.

The exascale scale target for the columnar/sharded engine work. Each
node carries four MI300A accelerated processing units — CPU cores, CDNA3
compute dies and HBM3 stacked in one socket — so unlike Tioga there is
no separate host CPU domain: the APU *is* the node's compute and its
power envelope (≈550 W sustained, 760 W peak per socket) dominates node
power. Telemetry and capping go through the same AMD E-SMI/HSMP path as
Tioga's Trento + MI250X pairing; node-level power is a conservative sum
of the four APU sockets (no direct node sensor), and node-level capping
is not exposed to users.

Numbers are representative of the class (public MI300A envelopes), not
calibrated against the real machine — the point of the platform is the
scale of the management plane (10k–100k nodes), which is what the
columnar store and sharded federation are benchmarked against.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.hardware.domains import DomainKind, DomainSpec
from repro.hardware.node import Node, NodeSpec

#: Peak (boost) power of one MI300A socket, liquid-cooled configuration.
APU_MAX_W = 760.0
APUS_PER_NODE = 4
#: Conservative per-node peak the site/cluster tiers budget against:
#: four APU sockets plus the uncappable slingshot/uncore residual.
NODE_PEAK_W = APUS_PER_NODE * APU_MAX_W + 100.0


@lru_cache(maxsize=None)
def elcapitan_node_spec() -> NodeSpec:
    """Build (once — :class:`NodeSpec` is frozen) the EX255a node spec."""
    domains = tuple(
        DomainSpec(
            name=f"apu{i}",
            kind=DomainKind.OAM,  # one E-SMI-managed accelerator package
            idle_w=130.0,
            max_w=APU_MAX_W,
            cappable=True,
            min_cap_w=220.0,
            max_cap_w=APU_MAX_W,
        )
        for i in range(APUS_PER_NODE)
    ) + (
        DomainSpec(
            name="uncore0",
            kind=DomainKind.UNCORE,
            idle_w=100.0,
            max_w=100.0,
            cappable=False,
            measurable=False,  # NIC/board residual, no sensor
        ),
    )
    return NodeSpec(
        platform="elcapitan",
        vendor="amd",
        domains=domains,
        node_power_measurable=False,
        node_cappable=False,
        node_max_w=0.0,
        sensor_granularity_s=1e-3,
        gpus_per_telemetry_domain=1,  # the APU package reports as one
    )


def make_elcapitan_node(
    hostname: str,
    rng: Optional[np.random.Generator] = None,
    sensor_noise_sigma_w: float = 0.0,
    **_ignored,
) -> Node:
    """Construct one El Capitan-class node."""
    return Node(
        hostname=hostname,
        spec=elcapitan_node_spec(),
        rng=rng,
        sensor_noise_sigma_w=sensor_noise_sigma_w,
    )
