"""Vendor firmware / driver behaviours.

Four vendor paths are modelled, matching Section II of the paper:

* :class:`OPALFirmware` — IBM's OpenPower Abstraction Layer on the
  AC922. Supports *direct node-level power capping* (the only platform
  in the paper that does). Setting a node cap makes the firmware derive
  a maximum power cap for each GPU; the paper measured this derivation
  to be *extremely conservative* (Table III: node cap 1200 W → 100 W
  per GPU, 1800 → 216, 1950 → 253). We reproduce that exact mapping via
  :func:`ibm_derived_gpu_cap`.
* :class:`NVMLDriver` — NVIDIA Management Library GPU capping
  (100–300 W on V100), with the intermittent failure mode reported in
  Section V: at low node caps, a cap request occasionally either sticks
  at the previously-set value or resets to the maximum.
* :class:`ESMIDriver` — AMD E-SMI/HSMP + ROCm path on Tioga. Capping is
  supported by the hardware but *not enabled for users* on the early
  access system; attempts raise :class:`CappingError`.
* :class:`RAPLDriver` — generic Intel-style socket capping used by the
  ``generic`` platform (exercises Variorum's best-effort node capping,
  which splits a node budget uniformly across sockets).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.hardware.domains import DomainKind, PowerDomain


class CappingError(RuntimeError):
    """A cap request was rejected by firmware or is not permitted."""


# ---------------------------------------------------------------------------
# IBM OPAL (Lassen)
# ---------------------------------------------------------------------------

#: CPU + memory + uncore power the IBM algorithm reserves before giving the
#: remainder to GPUs (PSR=100). Fitted to Table III:
#:   (1950 - 937.6)/4 = 253.1, (1800 - 937.6)/4 = 215.6,
#:   (1200 - 937.6)/4 = 65.6 -> clamped to the 100 W GPU floor.
IBM_NODE_RESERVE_W = 937.6


def ibm_derived_gpu_cap(
    node_cap_w: float,
    n_gpus: int = 4,
    psr: float = 100.0,
    gpu_min_w: float = 100.0,
    gpu_max_w: float = 300.0,
) -> float:
    """IBM's per-GPU cap derivation for a given node-level power cap.

    The Power Shifting Ratio (PSR, 0–100 %) scales how much of the
    above-reserve budget is handed to the GPUs; the paper always runs
    with PSR=100 (maximum share to GPUs).
    """
    if n_gpus <= 0:
        raise ValueError("n_gpus must be positive")
    budget = (node_cap_w - IBM_NODE_RESERVE_W) * (psr / 100.0)
    per_gpu = budget / n_gpus
    return float(min(max(per_gpu, gpu_min_w), gpu_max_w))


class OPALFirmware:
    """IBM node-level power capping on the AC922.

    Limits (Section II-A): node maximum 3050 W; minimum *soft* cap
    500 W (not hardware-guaranteed, only meaningful without GPU
    activity); minimum *hard* cap with GPU activity 1000 W.
    """

    CAP_SOURCE = "opal"

    def __init__(
        self,
        gpu_domains: List[PowerDomain],
        cpu_domains: List[PowerDomain],
        node_max_w: float = 3050.0,
        soft_min_w: float = 500.0,
        hard_min_w: float = 1000.0,
        psr: float = 100.0,
    ) -> None:
        self._gpus = gpu_domains
        self._cpus = cpu_domains
        self.node_max_w = node_max_w
        self.soft_min_w = soft_min_w
        self.hard_min_w = hard_min_w
        self.psr = psr
        self._node_cap_w: Optional[float] = None
        #: Owning node (set by Node construction); the node-level cap
        #: changes observable power, so it bumps ``power_rev`` too.
        self._owner = None

    @property
    def node_cap_w(self) -> Optional[float]:
        return self._node_cap_w

    @property
    def derived_gpu_cap_w(self) -> Optional[float]:
        """The per-GPU maximum the firmware derived, or None if uncapped."""
        if self._node_cap_w is None or not self._gpus:
            return None
        spec = self._gpus[0].spec
        return ibm_derived_gpu_cap(
            self._node_cap_w,
            n_gpus=len(self._gpus),
            psr=self.psr,
            gpu_min_w=spec.min_cap_w or 100.0,
            gpu_max_w=spec.max_cap_w or 300.0,
        )

    def set_node_power_cap(self, watts: float) -> float:
        """Install a node-level cap; returns the derived per-GPU cap.

        Raises :class:`CappingError` outside the legal [soft_min, max]
        range. Below ``hard_min_w`` the cap is accepted but, as on the
        real machine, is only *soft* (not guaranteed under GPU load) —
        the firmware still derives GPU caps from it.
        """
        if watts < self.soft_min_w or watts > self.node_max_w:
            raise CappingError(
                f"OPAL node cap {watts} W outside "
                f"[{self.soft_min_w}, {self.node_max_w}] W"
            )
        self._node_cap_w = float(watts)
        if self._owner is not None:
            self._owner.bump_power_rev()
        derived = self.derived_gpu_cap_w
        for gpu in self._gpus:
            gpu.set_cap(self.CAP_SOURCE, derived)
        return derived if derived is not None else float("nan")

    def clear_node_power_cap(self) -> None:
        self._node_cap_w = None
        if self._owner is not None:
            self._owner.bump_power_rev()
        for gpu in self._gpus:
            gpu.set_cap(self.CAP_SOURCE, None)

    def cpu_throttle_needed(self, node_power_w: float) -> float:
        """Residual-enforcement factor for CPU domains.

        After GPU caps are applied, if the node still exceeds its cap
        OPAL throttles the sockets. Returns a multiplier in (0, 1] to
        apply to CPU dynamic power; 1.0 means no further throttling.
        """
        if self._node_cap_w is None or node_power_w <= self._node_cap_w:
            return 1.0
        excess = node_power_w - self._node_cap_w
        cpu_dyn = sum(max(d.actual_w - d.spec.idle_w, 0.0) for d in self._cpus)
        if cpu_dyn <= 0:
            return 1.0
        return max(0.0, 1.0 - excess / cpu_dyn)


# ---------------------------------------------------------------------------
# NVIDIA NVML (Lassen GPUs)
# ---------------------------------------------------------------------------


class NVMLDriver:
    """Per-GPU power capping through NVML.

    ``failure_rate`` > 0 enables the intermittent misbehaviour the
    paper observed at low node caps: with that probability a request
    silently keeps the previous cap or resets to the GPU maximum
    (Section V). Failures draw from a seeded stream so experiments are
    reproducible.
    """

    CAP_SOURCE = "nvml"

    def __init__(
        self,
        gpu_domains: List[PowerDomain],
        rng: Optional[np.random.Generator] = None,
        failure_rate: float = 0.0,
    ) -> None:
        for d in gpu_domains:
            if d.spec.kind not in (DomainKind.GPU, DomainKind.OAM):
                raise ValueError(f"{d.spec.name} is not a GPU domain")
        self._gpus = gpu_domains
        self._rng = rng
        self.failure_rate = float(failure_rate)
        self.failures = 0
        self.requests = 0

    def gpu_count(self) -> int:
        return len(self._gpus)

    def get_power_limit(self, index: int) -> Optional[float]:
        return self._gpus[index].get_cap(self.CAP_SOURCE)

    def set_power_limit(self, index: int, watts: float) -> float:
        """Request a cap on one GPU; returns the cap actually in force."""
        gpu = self._gpus[index]
        spec = gpu.spec
        lo = spec.min_cap_w if spec.min_cap_w is not None else 0.0
        hi = spec.max_cap_w if spec.max_cap_w is not None else spec.max_w
        if watts < lo or watts > hi:
            raise CappingError(
                f"NVML cap {watts} W on {spec.name} outside [{lo}, {hi}] W"
            )
        self.requests += 1
        if (
            self.failure_rate > 0.0
            and self._rng is not None
            and self._rng.random() < self.failure_rate
        ):
            self.failures += 1
            prev = gpu.get_cap(self.CAP_SOURCE)
            if prev is None or self._rng.random() < 0.5:
                # Reset to maximum (cap effectively dropped).
                gpu.set_cap(self.CAP_SOURCE, hi)
                return hi
            # Stick at the previously-set cap.
            return prev
        gpu.set_cap(self.CAP_SOURCE, float(watts))
        return float(watts)

    def set_all(self, watts: float) -> List[float]:
        return [self.set_power_limit(i, watts) for i in range(len(self._gpus))]

    def clear_all(self) -> None:
        for gpu in self._gpus:
            gpu.set_cap(self.CAP_SOURCE, None)


# ---------------------------------------------------------------------------
# AMD E-SMI / ROCm (Tioga)
# ---------------------------------------------------------------------------


class ESMIDriver:
    """AMD CPU (E-SMI/HSMP) and GPU (ROCm SMI) capping path.

    On the Tioga early-access system capping exists in hardware but has
    not been enabled for users, so every request raises
    :class:`CappingError` unless ``user_capping_enabled``.
    """

    CAP_SOURCE = "esmi"

    def __init__(
        self,
        cpu_domains: List[PowerDomain],
        oam_domains: List[PowerDomain],
        user_capping_enabled: bool = False,
    ) -> None:
        self._cpus = cpu_domains
        self._oams = oam_domains
        self.user_capping_enabled = user_capping_enabled

    def _check(self) -> None:
        if not self.user_capping_enabled:
            raise CappingError(
                "power capping not enabled for users on this early access system"
            )

    def set_socket_power_cap(self, index: int, watts: float) -> float:
        self._check()
        dom = self._cpus[index]
        dom.set_cap(self.CAP_SOURCE, watts)
        return dom.get_cap(self.CAP_SOURCE)  # type: ignore[return-value]

    def set_oam_power_cap(self, index: int, watts: float) -> float:
        self._check()
        dom = self._oams[index]
        dom.set_cap(self.CAP_SOURCE, watts)
        return dom.get_cap(self.CAP_SOURCE)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Intel RAPL (generic platform)
# ---------------------------------------------------------------------------


class RAPLDriver:
    """Intel-style per-socket Running Average Power Limit capping."""

    CAP_SOURCE = "rapl"

    def __init__(self, cpu_domains: List[PowerDomain]) -> None:
        self._cpus = cpu_domains

    def socket_count(self) -> int:
        return len(self._cpus)

    def set_socket_power_cap(self, index: int, watts: float) -> float:
        dom = self._cpus[index]
        spec = dom.spec
        lo = spec.min_cap_w if spec.min_cap_w is not None else 0.0
        hi = spec.max_cap_w if spec.max_cap_w is not None else spec.max_w
        if watts < lo or watts > hi:
            raise CappingError(
                f"RAPL cap {watts} W on {spec.name} outside [{lo}, {hi}] W"
            )
        dom.set_cap(self.CAP_SOURCE, watts)
        return float(watts)

    def caps(self) -> Dict[str, Optional[float]]:
        return {d.spec.name: d.get_cap(self.CAP_SOURCE) for d in self._cpus}
