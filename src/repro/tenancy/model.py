"""Tenant / project / account model.

Mirrors the slurm-style accounting hierarchy the sites in the paper
operate: an **account** (funding line) owns **projects**, a project has
**users**, and a job submission carries a user (and optionally an
explicit project). Fairshare weights multiply down the tree: a
project's base weight is ``project.weight × account.weight``.

Everything is plain, JSON-round-trippable data — no simulator, no
clocks — so the directory can be built once, shipped inside scenario
artifacts, and compared byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Project that jobs from unknown users are accounted against. It
#: always exists with weight 1.0, so an anonymous submission is a
#: first-class (if low-priority) tenant rather than an error.
UNAFFILIATED = "unaffiliated"

DEFAULT_ACCOUNT = "default"


def _check_weight(kind: str, name: str, weight: float) -> None:
    if not weight > 0.0 or weight != weight or weight == float("inf"):
        raise ValueError(
            f"{kind} {name!r} weight must be finite and > 0, got {weight}"
        )


@dataclass(frozen=True)
class Account:
    """A funding line: the root of the fairshare tree."""

    name: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("account name must be non-empty")
        _check_weight("account", self.name, self.weight)


@dataclass(frozen=True)
class Project:
    """A chargeable project under an account."""

    name: str
    account: str = DEFAULT_ACCOUNT
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("project name must be non-empty")
        _check_weight("project", self.name, self.weight)


@dataclass(frozen=True)
class Tenant:
    """The identity a submission resolves to: user + project."""

    user: str
    project: str = UNAFFILIATED


class TenantDirectory:
    """The site's account/project/user registry.

    Deterministic by construction: iteration orders are sorted, the
    JSON round trip is canonical, and lookups are pure.
    """

    def __init__(self) -> None:
        self._accounts: Dict[str, Account] = {
            DEFAULT_ACCOUNT: Account(name=DEFAULT_ACCOUNT)
        }
        self._projects: Dict[str, Project] = {
            UNAFFILIATED: Project(name=UNAFFILIATED)
        }
        self._user_project: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_account(self, account: Account) -> None:
        self._accounts[account.name] = account

    def add_project(self, project: Project) -> None:
        if project.account not in self._accounts:
            self._accounts[project.account] = Account(name=project.account)
        self._projects[project.name] = project

    def add_user(self, user: str, project: str) -> None:
        if not user:
            raise ValueError("user name must be non-empty")
        if project not in self._projects:
            raise ValueError(f"unknown project {project!r} for user {user!r}")
        self._user_project[user] = project

    @classmethod
    def build(
        cls,
        projects: Iterable[Tuple[str, float]] = (),
        users: Iterable[Tuple[str, str]] = (),
    ) -> "TenantDirectory":
        """Convenience constructor from ``(name, weight)`` / ``(user,
        project)`` pairs — the shape scenario tenant mixes carry."""
        directory = cls()
        for name, weight in projects:
            directory.add_project(Project(name=name, weight=float(weight)))
        for user, project in users:
            directory.add_user(user, project)
        return directory

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def project_of(self, user: Optional[str]) -> str:
        """The project ``user``'s jobs are accounted against
        (:data:`UNAFFILIATED` for unknown or missing users)."""
        if user is None:
            return UNAFFILIATED
        return self._user_project.get(user, UNAFFILIATED)

    def knows_user(self, user: Optional[str]) -> bool:
        return user is not None and user in self._user_project

    def resolve(self, user: Optional[str], project: Optional[str] = None) -> Tenant:
        """Resolve a submission to a tenant. An explicit ``project``
        wins over the user's registered one when it exists."""
        if project is not None and project in self._projects:
            return Tenant(user=user or "", project=project)
        return Tenant(user=user or "", project=self.project_of(user))

    def base_weight(self, project: str) -> float:
        """The project's static fairshare weight: its own × its
        account's (unknown projects weigh like :data:`UNAFFILIATED`)."""
        p = self._projects.get(project) or self._projects[UNAFFILIATED]
        account = self._accounts.get(p.account) or self._accounts[DEFAULT_ACCOUNT]
        return p.weight * account.weight

    def projects(self) -> List[str]:
        """All registered project names, sorted."""
        return sorted(self._projects)

    def project(self, name: str) -> Optional[Project]:
        return self._projects.get(name)

    def users(self) -> List[str]:
        return sorted(self._user_project)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "accounts": [
                {"name": a.name, "weight": a.weight}
                for _, a in sorted(self._accounts.items())
            ],
            "projects": [
                {"name": p.name, "account": p.account, "weight": p.weight}
                for _, p in sorted(self._projects.items())
            ],
            "users": [
                {"user": u, "project": p}
                for u, p in sorted(self._user_project.items())
            ],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TenantDirectory":
        directory = cls()
        for a in d.get("accounts", []):
            directory.add_account(
                Account(name=str(a["name"]), weight=float(a.get("weight", 1.0)))
            )
        for p in d.get("projects", []):
            directory.add_project(
                Project(
                    name=str(p["name"]),
                    account=str(p.get("account", DEFAULT_ACCOUNT)),
                    weight=float(p.get("weight", 1.0)),
                )
            )
        for u in d.get("users", []):
            directory.add_user(str(u["user"]), str(u["project"]))
        return directory
