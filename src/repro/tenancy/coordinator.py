"""Tenancy coordinator: wires the tenant model into a live cluster.

The coordinator sits beside :class:`~repro.cluster.PowerManagedCluster`
and does four things, all deterministically in simulated time:

* **admission** — when an :class:`~repro.tenancy.admission.AdmissionConfig`
  is set, every submission passes :func:`~repro.tenancy.admission.decide`
  first; queued specs wait FIFO and are released as capacity frees.
  Every decision is logged with its pure inputs so the simtest
  ``tenant_admission`` checker can replay the whole log byte for byte;
* **accounting** — a periodic tick charges each project for its
  currently *granted* watts (allocation-based, like core-hours: what
  the manager granted, not what the devices happened to draw) into a
  decaying :class:`~repro.tenancy.accounting.UsageLedger`;
* **fairshare** — the tick refreshes per-project effective weights and
  installs :func:`~repro.tenancy.fairshare.split_budget_weighted` as
  the cluster manager's ``share_splitter``, so job power limits track
  fairshare rather than flat node counts;
* **telemetry** — ``tenant_*`` gauges/counters per tick and decision,
  plus a deterministic accounting CSV export (same seed → same bytes).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.flux.jobspec import JobRecord, Jobspec
from repro.tenancy.accounting import (
    DEFAULT_HALF_LIFE_S,
    DEFAULT_USAGE_NORM_WS,
    UsageLedger,
    effective_weight,
)
from repro.tenancy.admission import (
    ADMIT,
    QUEUE,
    AdmissionConfig,
    AdmissionDecision,
    decide,
)
from repro.tenancy.fairshare import split_budget_weighted
from repro.tenancy.model import TenantDirectory, UNAFFILIATED

#: Columns of the accounting CSV export, in order.
ACCOUNTING_CSV_FIELDS = (
    "project",
    "account",
    "weight",
    "effective_weight",
    "usage_ws",
    "lifetime_ws",
    "granted_w",
    "active_jobs",
    "admitted_total",
    "queued_total",
    "rejected_total",
)


@dataclass(frozen=True)
class TenancyConfig:
    """Everything the coordinator needs, as plain data."""

    directory: TenantDirectory
    half_life_s: float = DEFAULT_HALF_LIFE_S
    usage_norm_ws: float = DEFAULT_USAGE_NORM_WS
    #: Accounting/fairshare refresh period (simulated seconds).
    accounting_interval_s: float = 10.0
    admission: Optional[AdmissionConfig] = None


@dataclass(frozen=True)
class AdmissionRecord:
    """One logged admission decision with its pure replay inputs."""

    t: float
    user: str
    project: str
    nnodes: int
    committed_w: float
    queue_depth: int
    known_tenant: bool
    decision: AdmissionDecision
    #: True when this admit released a previously queued spec.
    released: bool = False
    jobid: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "t": self.t,
            "user": self.user,
            "project": self.project,
            "nnodes": self.nnodes,
            "committed_w": self.committed_w,
            "queue_depth": self.queue_depth,
            "known_tenant": self.known_tenant,
            "decision": self.decision.to_dict(),
            "released": self.released,
            "jobid": self.jobid,
        }


@dataclass
class _QueuedSpec:
    spec: Jobspec
    project: str
    user: str


class TenancyCoordinator:
    """Attaches tenancy to one cluster; see the module docstring."""

    def __init__(self, cluster, config: TenancyConfig) -> None:
        self.cluster = cluster
        self.config = config
        self.directory = config.directory
        self.ledger = UsageLedger(half_life_s=config.half_life_s)
        #: Cached per-project effective weights; refreshed every
        #: accounting tick, read by the share splitter in between so
        #: allocation is a pure function of the last tick's state.
        self._weights: Dict[str, float] = {
            p: self.directory.base_weight(p) for p in self.directory.projects()
        }
        self.decisions: List[AdmissionRecord] = []
        self._queue: List[_QueuedSpec] = []
        #: jobid → reserved admission demand (W), held until the job
        #: leaves the active states.
        self._admitted_demand: Dict[int, float] = {}
        self.submissions_total = 0
        self.counts: Dict[str, int] = {"admit": 0, "queue": 0, "reject": 0}
        self._project_counts: Dict[str, Dict[str, int]] = {}
        self.accounting_ticks = 0

        root = self._root()
        if root is not None:
            root.share_splitter = self._split
        self._tick_event = cluster.sim.schedule_periodic(
            config.accounting_interval_s,
            self._accounting_tick,
            start_delay=config.accounting_interval_s,
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def sim(self):
        return self.cluster.sim

    @property
    def admission_enabled(self) -> bool:
        return self.config.admission is not None

    @property
    def queue_len(self) -> int:
        return len(self._queue)

    def _root(self):
        manager = self.cluster.manager
        return None if manager is None else manager.cluster

    def _node_peak_w(self) -> float:
        root = self._root()
        return 3050.0 if root is None else root.config.node_peak_w

    # ------------------------------------------------------------------
    # Tenant resolution
    # ------------------------------------------------------------------
    def project_of_spec(self, spec: Jobspec) -> str:
        return self.directory.resolve(
            spec.user, getattr(spec, "project", None)
        ).project

    def project_of_job(self, jobid: int) -> str:
        record = self.cluster.instance.jobmanager.jobs.get(jobid)
        if record is None:
            return UNAFFILIATED
        return self.project_of_spec(record.spec)

    def job_weights(self, job_nodes) -> Dict[int, float]:
        """Fairshare weight per job: its project's cached effective
        weight (the value the splitter and the checkers both use)."""
        return {
            jobid: self._weights.get(self.project_of_job(jobid), 1.0)
            for jobid in job_nodes
        }

    def project_weights(self) -> Dict[str, float]:
        return dict(self._weights)

    # ------------------------------------------------------------------
    # Fairshare split (installed as the manager's share_splitter)
    # ------------------------------------------------------------------
    def _split(self, budget_w, job_nodes, node_peak_w) -> Dict[int, float]:
        return split_budget_weighted(
            budget_w, job_nodes, node_peak_w, self.job_weights(job_nodes)
        )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _committed_w(self) -> float:
        """Reservation held by admitted jobs still in active states."""
        books = self.cluster.instance.jobmanager.jobs
        total = 0.0
        for jobid, demand_w in self._admitted_demand.items():
            record = books.get(jobid)
            if record is not None and record.state.active:
                total += demand_w
        return total

    def _log_decision(
        self,
        spec: Jobspec,
        project: str,
        committed_w: float,
        queue_depth: int,
        known: bool,
        decision: AdmissionDecision,
        released: bool,
        jobid: Optional[int],
    ) -> None:
        self.decisions.append(
            AdmissionRecord(
                t=self.sim.now,
                user=spec.user,
                project=project,
                nnodes=spec.nnodes,
                committed_w=committed_w,
                queue_depth=queue_depth,
                known_tenant=known,
                decision=decision,
                released=released,
                jobid=jobid,
            )
        )
        self.counts[decision.action] += 1
        per = self._project_counts.setdefault(
            project, {"admit": 0, "queue": 0, "reject": 0}
        )
        per[decision.action] += 1
        self.cluster.telemetry_hub.metrics.counter(
            "tenant_admission_decisions_total",
            {"action": decision.action},
            help="admission decisions by action (admit/queue/reject)",
        ).inc()

    def submit(self, spec: Jobspec, depends_on=None) -> Optional[JobRecord]:
        """Submission front door. Returns the job record when admitted,
        None when queued or rejected (``last_decision`` tells which)."""
        if depends_on is not None:
            # Dependency chains ride on an already-admitted ancestor;
            # admission applies to the chain head only.
            return self.cluster.instance.submit(spec, depends_on=depends_on)
        self.submissions_total += 1
        project = self.project_of_spec(spec)
        admission = self.config.admission
        if admission is None:
            return self.cluster.instance.submit(spec)
        committed_w = self._committed_w()
        queue_depth = len(self._queue)
        known = self.directory.knows_user(spec.user)
        decision = decide(
            admission, spec.nnodes, committed_w, queue_depth, known_tenant=known
        )
        if decision.action == ADMIT:
            record = self.cluster.instance.submit(spec)
            self._admitted_demand[record.jobid] = decision.demand_w
            self._log_decision(
                spec, project, committed_w, queue_depth, known, decision,
                released=False, jobid=record.jobid,
            )
            return record
        self._log_decision(
            spec, project, committed_w, queue_depth, known, decision,
            released=False, jobid=None,
        )
        if decision.action == QUEUE:
            self._queue.append(_QueuedSpec(spec=spec, project=project, user=spec.user))
        return None

    @property
    def last_decision(self) -> Optional[AdmissionDecision]:
        return self.decisions[-1].decision if self.decisions else None

    def _release_queue(self) -> None:
        """Admit queued specs FIFO while the head's reservation fits.

        Strict FIFO (no bypass): determinism and no-starvation beat
        packing efficiency here. The head always drains eventually —
        infeasible jobs were rejected at the door, so once running jobs
        finish the head's reservation fits an idle system.
        """
        admission = self.config.admission
        if admission is None:
            return
        while self._queue:
            head = self._queue[0]
            committed_w = self._committed_w()
            queue_depth = len(self._queue) - 1
            known = self.directory.knows_user(head.user)
            decision = decide(
                admission, head.spec.nnodes, committed_w, queue_depth,
                known_tenant=known,
            )
            if decision.action != ADMIT:
                break
            self._queue.pop(0)
            record = self.cluster.instance.submit(head.spec)
            self._admitted_demand[record.jobid] = decision.demand_w
            self._log_decision(
                head.spec, head.project, committed_w, queue_depth, known,
                decision, released=True, jobid=record.jobid,
            )

    def drained(self) -> bool:
        """True once every submission has been decided and no spec is
        still waiting in the admission queue."""
        return not self._queue

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _granted_by_project(self) -> Tuple[Dict[str, float], Dict[str, int]]:
        """(granted watts, active job count) per project, from the
        manager's live books (falling back to the job manager when no
        power manager is attached)."""
        granted: Dict[str, float] = {}
        active: Dict[str, int] = {}
        peak = self._node_peak_w()
        root = self._root()
        if root is not None:
            for jobid, state in root.job_level.jobs.items():
                project = self.project_of_job(jobid)
                watts = (
                    state.job_limit_w
                    if state.job_limit_w is not None
                    else peak * len(state.ranks)
                )
                granted[project] = granted.get(project, 0.0) + watts
                active[project] = active.get(project, 0) + 1
        else:
            for record in self.cluster.instance.jobmanager.running_jobs():
                project = self.project_of_spec(record.spec)
                granted[project] = granted.get(project, 0.0) + peak * record.spec.nnodes
                active[project] = active.get(project, 0) + 1
        return granted, active

    def _accounting_tick(self) -> None:
        now = self.sim.now
        granted, active = self._granted_by_project()
        for project in sorted(granted):
            watts = granted[project]
            if watts > 0.0:
                self.ledger.charge(
                    project, watts, self.config.accounting_interval_s, now
                )
        # Refresh effective weights from the decayed ledger.
        projects = sorted(set(self.directory.projects()) | set(self.ledger.projects()))
        self._weights = {
            p: effective_weight(
                self.directory.base_weight(p),
                self.ledger.decayed(p, now),
                self.config.usage_norm_ws,
            )
            for p in projects
        }
        metrics = self.cluster.telemetry_hub.metrics
        for p in projects:
            labels = {"project": p}
            metrics.gauge(
                "tenant_usage_ws", labels,
                help="decayed fairshare usage (watt-seconds) per project",
            ).set(self.ledger.decayed(p, now))
            metrics.gauge(
                "tenant_effective_weight", labels,
                help="usage-discounted fairshare weight per project",
            ).set(self._weights[p])
            metrics.gauge(
                "tenant_granted_w", labels,
                help="power currently granted to the project's jobs",
            ).set(granted.get(p, 0.0))
            metrics.gauge(
                "tenant_active_jobs", labels,
                help="jobs of the project currently in the manager's books",
            ).set(active.get(p, 0))
        metrics.counter(
            "tenant_accounting_ticks_total",
            help="fairshare accounting/refresh ticks",
        ).inc()
        self.accounting_ticks += 1
        self._release_queue()
        # Re-fill job limits under the refreshed weights.
        root = self._root()
        if root is not None and root.config.policy != "static":
            root._recompute()

    # ------------------------------------------------------------------
    # Views / export
    # ------------------------------------------------------------------
    def accounting_rows(self) -> List[Dict[str, Any]]:
        """Per-project accounting rows, sorted by project name."""
        now = self.sim.now
        granted, active = self._granted_by_project()
        projects = sorted(set(self.directory.projects()) | set(self.ledger.projects()))
        rows = []
        for p in projects:
            meta = self.directory.project(p)
            per = self._project_counts.get(p, {})
            rows.append(
                {
                    "project": p,
                    "account": meta.account if meta is not None else "default",
                    "weight": self.directory.base_weight(p),
                    "effective_weight": self._weights.get(
                        p, self.directory.base_weight(p)
                    ),
                    "usage_ws": self.ledger.decayed(p, now),
                    "lifetime_ws": self.ledger.lifetime(p),
                    "granted_w": granted.get(p, 0.0),
                    "active_jobs": active.get(p, 0),
                    "admitted_total": per.get("admit", 0),
                    "queued_total": per.get("queue", 0),
                    "rejected_total": per.get("reject", 0),
                }
            )
        return rows

    def accounting_csv(self) -> str:
        """Deterministic CSV export: same seed → byte-identical text."""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=list(ACCOUNTING_CSV_FIELDS))
        writer.writeheader()
        for row in self.accounting_rows():
            out = dict(row)
            for key in ("weight", "effective_weight", "usage_ws",
                        "lifetime_ws", "granted_w"):
                out[key] = f"{out[key]:.6f}"
            writer.writerow(out)
        return buf.getvalue()

    def digest_summary(self) -> Dict[str, Any]:
        """Canonical tenancy section for the simtest run digest."""
        return {
            "projects": {
                row["project"]: {
                    "usage_ws": row["usage_ws"],
                    "lifetime_ws": row["lifetime_ws"],
                    "effective_weight": row["effective_weight"],
                    "admitted_total": row["admitted_total"],
                    "queued_total": row["queued_total"],
                    "rejected_total": row["rejected_total"],
                }
                for row in self.accounting_rows()
            },
            "counts": dict(self.counts),
            "submissions_total": self.submissions_total,
            "queue_len": len(self._queue),
            "accounting_ticks": self.accounting_ticks,
        }
