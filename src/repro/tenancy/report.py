"""The ``repro tenants --report`` demo: fairshare in one screenful.

Builds a deliberately oversubscribed three-project cluster (weights
4:2:1, admission gated), pushes a fixed submission plan through it and
prints the admission log plus the final accounting table — the
multi-tenant analogue of the other CLI demo campaigns. Everything runs
in simulated time from a fixed plan, so the same seed produces
byte-identical output (and CSV export), which the integration tests
pin.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig
from repro.tenancy.admission import AdmissionConfig
from repro.tenancy.coordinator import TenancyConfig, TenancyCoordinator
from repro.tenancy.model import TenantDirectory

#: (user, app, nnodes, submit_t) — sized to oversubscribe a 16-node
#: cluster behind a 24 kW admission budget, so the log shows all three
#: decision kinds.
DEMO_PLAN: Tuple[Tuple[str, str, int, float], ...] = (
    ("alice", "gemm", 6, 0.0),
    ("bo", "lammps", 6, 0.0),
    ("mei", "quicksilver", 4, 2.0),
    ("amar", "gemm", 4, 4.0),
    ("bo", "nqueens", 2, 6.0),
    ("mei", "gemm", 16, 8.0),
)


def build_demo_cluster(seed: int = 0) -> PowerManagedCluster:
    """The demo deployment: 3 weighted projects, admission gated."""
    directory = TenantDirectory.build(
        projects=[("astro", 4.0), ("bio", 2.0), ("ml", 1.0)],
        users=[
            ("alice", "astro"),
            ("amar", "astro"),
            ("bo", "bio"),
            ("mei", "ml"),
        ],
    )
    return PowerManagedCluster(
        platform="lassen",
        n_nodes=16,
        seed=seed,
        manager_config=ManagerConfig(
            global_cap_w=24000.0,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
        tenancy=TenancyConfig(
            directory=directory,
            half_life_s=120.0,
            accounting_interval_s=5.0,
            admission=AdmissionConfig(
                budget_w=24000.0,
                admit_node_w=1500.0,
                max_queue_depth=2,
            ),
        ),
    )


def run_demo(
    seed: int = 0,
    csv_path: Optional[str] = None,
    out: Callable[[str], None] = print,
) -> TenancyCoordinator:
    """Run the demo plan to completion and print the report.

    Returns the coordinator so callers (tests, notebooks) can inspect
    the ledger and the decision log directly.
    """
    cluster = build_demo_cluster(seed)
    coord = cluster.tenancy
    assert coord is not None
    for user, app, nnodes, submit_t in DEMO_PLAN:
        spec = Jobspec(app=app, nnodes=nnodes, user=user)
        if submit_t <= 0.0:
            cluster.submit(spec)
        else:
            cluster.submit_at(spec, submit_t)
    jm = cluster.instance.jobmanager
    # run_until_complete would stop before queued specs are released,
    # so step in accounting-interval slices until the gate drains too.
    while not (coord.drained() and jm.all_complete()) \
            and cluster.sim.now < 5000.0:
        cluster.run_for(5.0)
    cluster.run_for(5.0)  # let the last accounting tick land

    out(f"tenants demo: seed={seed} 16-node lassen, 24 kW admission budget")
    out("")
    out("admission log:")
    for rec in coord.decisions:
        suffix = " (released from queue)" if rec.released else ""
        jobid = f" job={rec.jobid}" if rec.jobid is not None else ""
        out(
            f"  t={rec.t:7.3f} {rec.user:>6} {rec.project:>6} "
            f"{rec.nnodes:2d}n -> {rec.decision.action:6}/"
            f"{rec.decision.code}{jobid}{suffix}"
        )
    out("")
    out("accounting (decayed usage, effective weights):")
    header = (
        f"  {'project':>8} {'acct':>8} {'weight':>7} {'eff_w':>7} "
        f"{'usage_kWs':>10} {'admit':>5} {'queue':>5} {'reject':>6}"
    )
    out(header)
    for row in coord.accounting_rows():
        out(
            f"  {row['project']:>8} {row['account']:>8} "
            f"{row['weight']:7.2f} {row['effective_weight']:7.3f} "
            f"{row['usage_ws'] / 1e3:10.2f} {row['admitted_total']:5d} "
            f"{row['queued_total']:5d} {row['rejected_total']:6d}"
        )
    counts = coord.counts
    out("")
    out(
        f"decisions: {counts['admit']} admitted, {counts['queue']} queued, "
        f"{counts['reject']} rejected; makespan="
        f"{cluster.makespan_s() or 0.0:.1f}s"
    )
    if csv_path is not None:
        with open(csv_path, "w", encoding="utf-8") as fh:
            fh.write(coord.accounting_csv())
        out(f"wrote accounting CSV to {csv_path}")
    return coord


def demo_lines(seed: int = 0) -> List[str]:
    """The demo's report as a list of lines (test-friendly)."""
    lines: List[str] = []
    run_demo(seed, out=lines.append)
    return lines
