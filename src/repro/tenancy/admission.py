"""Admission control (pure; replay-checked).

When the site budget is oversubscribed the production stance is to say
*no at the door*, not to silently throttle everyone below their
feasible floor. Admission reserves ``admit_node_w`` watts per node for
every admitted-but-unfinished job; a submission whose reservation does
not fit next to the committed ones is **queued** (FIFO, released as
capacity frees) or **rejected** with a structured reason.

:func:`decide` is a pure function of its inputs — no clocks, no RNG,
no cluster state — so the simtest ``tenant_admission`` checker replays
every logged decision through it and demands byte-equal outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.federation.rebalance import REL_EPS

#: Decision actions.
ADMIT = "admit"
QUEUE = "queue"
REJECT = "reject"

#: Structured decision codes (the machine-readable reject reasons).
CODE_OK = "ok"
CODE_UNCONSTRAINED = "unconstrained"
CODE_OVERSUBSCRIBED = "oversubscribed"
CODE_TOO_LARGE = "too_large"
CODE_QUEUE_FULL = "queue_full"
CODE_UNKNOWN_TENANT = "unknown_tenant"


@dataclass(frozen=True)
class AdmissionConfig:
    """Site admission policy.

    ``budget_w`` is the power contract admission defends (normally the
    cluster's global cap at t=0); ``None`` disables capacity checks.
    ``admit_node_w`` is the per-node reservation an admitted job holds
    — the minimum power the site promises it — so admitted jobs can
    always be granted at least their floor.
    ``oversubscription >= 1`` deliberately overbooks the contract (the
    fairshare water-fill absorbs the squeeze).
    """

    budget_w: Optional[float]
    admit_node_w: float = 500.0
    oversubscription: float = 1.0
    max_queue_depth: Optional[int] = None
    #: Reject submissions from users the directory does not know
    #: (off by default: unknown users fall into ``unaffiliated``).
    enforce_registration: bool = False

    def __post_init__(self) -> None:
        if self.budget_w is not None and self.budget_w < 0:
            raise ValueError(f"budget_w must be >= 0, got {self.budget_w}")
        if self.admit_node_w <= 0:
            raise ValueError(
                f"admit_node_w must be > 0, got {self.admit_node_w}"
            )
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )

    def capacity_w(self) -> Optional[float]:
        if self.budget_w is None:
            return None
        return self.oversubscription * self.budget_w


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of one admission check."""

    action: str  # admit | queue | reject
    code: str
    reason: str
    demand_w: float
    committed_w: float
    capacity_w: Optional[float]

    @property
    def admitted(self) -> bool:
        return self.action == ADMIT

    def to_dict(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "code": self.code,
            "reason": self.reason,
            "demand_w": self.demand_w,
            "committed_w": self.committed_w,
            "capacity_w": self.capacity_w,
        }


def decide(
    config: AdmissionConfig,
    nnodes: int,
    committed_w: float,
    queue_depth: int,
    known_tenant: bool = True,
) -> AdmissionDecision:
    """Admission check for one submission (pure, deterministic).

    ``committed_w`` is the reservation held by admitted-but-unfinished
    jobs; ``queue_depth`` the current FIFO length. Ordering of checks
    (registration → feasibility → capacity → queue) is part of the
    replay contract — don't reorder without bumping the docs.
    """
    if nnodes < 1:
        raise ValueError(f"nnodes must be >= 1, got {nnodes}")
    demand_w = float(nnodes) * config.admit_node_w
    capacity = config.capacity_w()
    if config.enforce_registration and not known_tenant:
        return AdmissionDecision(
            action=REJECT, code=CODE_UNKNOWN_TENANT,
            reason="user is not registered with any project",
            demand_w=demand_w, committed_w=committed_w, capacity_w=capacity,
        )
    if capacity is None:
        return AdmissionDecision(
            action=ADMIT, code=CODE_UNCONSTRAINED,
            reason="no admission budget configured",
            demand_w=demand_w, committed_w=committed_w, capacity_w=None,
        )
    tol = REL_EPS * max(1.0, capacity)
    if demand_w > capacity + tol:
        # Infeasible even on an idle system: queueing it would wedge
        # the FIFO forever, so this is a hard reject.
        return AdmissionDecision(
            action=REJECT, code=CODE_TOO_LARGE,
            reason=(
                f"job reservation {demand_w:.1f} W exceeds site capacity "
                f"{capacity:.1f} W even when idle"
            ),
            demand_w=demand_w, committed_w=committed_w, capacity_w=capacity,
        )
    if committed_w + demand_w <= capacity + tol:
        return AdmissionDecision(
            action=ADMIT, code=CODE_OK,
            reason="reservation fits within site capacity",
            demand_w=demand_w, committed_w=committed_w, capacity_w=capacity,
        )
    if config.max_queue_depth is not None and queue_depth >= config.max_queue_depth:
        return AdmissionDecision(
            action=REJECT, code=CODE_QUEUE_FULL,
            reason=(
                f"site oversubscribed and admission queue full "
                f"({queue_depth}/{config.max_queue_depth})"
            ),
            demand_w=demand_w, committed_w=committed_w, capacity_w=capacity,
        )
    return AdmissionDecision(
        action=QUEUE, code=CODE_OVERSUBSCRIBED,
        reason=(
            f"committed {committed_w:.1f} W + reservation {demand_w:.1f} W "
            f"exceeds capacity {capacity:.1f} W; queued until capacity frees"
        ),
        demand_w=demand_w, committed_w=committed_w, capacity_w=capacity,
    )
