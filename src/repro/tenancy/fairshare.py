"""Fairshare-weighted water-fills (pure; property-tested).

These are the proportional split functions
(:func:`repro.manager.policies.proportional.split_budget`,
:func:`repro.federation.rebalance.split_site_budget`) extended with
per-tenant weights: a job belonging to a project with twice the
fairshare weight receives twice the per-node power rate, capped at the
device peak, with the excess water-filling the remaining jobs.

Design rules the Hypothesis suite pins directly
(``tests/test_tenancy_fairshare_properties.py``):

* **conservation** — Σ allocations == min(budget, peak × Σ nodes)
  (to float tolerance), exactly like the unweighted splits;
* **equal-weights parity** — with all weights equal (or ``None``) the
  result is *bitwise identical* to the unweighted reference. Weights
  are normalized by their maximum, so the all-equal case normalizes to
  exactly ``1.0`` (``x / x == 1.0`` in IEEE-754) and multiplying by it
  is the identity — no epsilon, no tolerance;
* **monotonicity** — raising one job's weight never lowers its
  allocation;
* **floor** — every job receives at least its initial weighted
  proportional rate ``budget · wn_j / W`` per node (capped at peak):
  pinning saturated jobs only ever *raises* the remaining pool's rate.

Everything is pure arithmetic over plain dicts; the vectorized twins
live in :mod:`repro.columnar.ops` and are bitwise-equal by the same
sequential-reduction discipline the columnar tier already uses.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.federation.rebalance import split_site_budget


def normalize_weights(
    weights: Optional[Mapping], keys, default: float = 1.0
) -> Dict:
    """Scale ``weights`` so the largest becomes exactly ``1.0``.

    Missing keys default to ``default``; all weights must be finite and
    > 0 (a zero-weight tenant would starve forever — model that as
    admission rejection, not allocation). Normalizing by the *maximum*
    rather than the sum makes the all-equal case exact: ``w / w`` is
    exactly ``1.0`` for every finite positive float, so the weighted
    water-fill degenerates bitwise to the unweighted one.
    """
    raw = {}
    for k in keys:
        w = float(weights.get(k, default)) if weights is not None else default
        if not w > 0.0 or w != w or w == float("inf"):
            raise ValueError(f"weight for {k!r} must be finite and > 0, got {w}")
        raw[k] = w
    if not raw:
        return {}
    ref = max(raw.values())
    return {k: w / ref for k, w in raw.items()}


def split_budget_weighted(
    budget_w: float,
    job_nodes: Mapping[int, int],
    node_peak_w: float,
    weights: Optional[Mapping[int, float]] = None,
) -> Dict[int, float]:
    """Fairshare-weighted :func:`~repro.manager.policies.proportional.split_budget`.

    ``weights`` maps jobid → fairshare weight (missing → 1.0, ``None``
    → all equal). Each job's target per-node rate is proportional to
    its normalized weight; any job whose rate would exceed the device
    peak is pinned at peak and the surplus re-fills the rest. Returns
    jobid → job power limit (W), conserving
    ``min(budget_w, node_peak_w × Σ nodes)``.

    With equal weights every pin test reduces to the unweighted
    ``active × peak <= budget`` and every rate to ``budget / active``,
    so the result is bitwise identical to ``split_budget`` — the
    property suite asserts ``==``, not ``isclose``.
    """
    if not job_nodes:
        return {}
    jobids = list(job_nodes)
    for j in jobids:
        if job_nodes[j] < 0:
            raise ValueError(f"job {j!r} node count must be >= 0")
    if sum(job_nodes.values()) == 0:
        return {}  # mirrors split_budget: no allocated nodes, no entries
    wn = normalize_weights(weights, jobids)
    alloc: Dict[int, float] = {}
    free = list(jobids)
    remaining = float(budget_w)
    while free:
        # W = Σ wn_j · n_j over free jobs, accumulated left to right in
        # jobid insertion order (the vectorized twin replays this).
        total_wn = 0.0
        for j in free:
            total_wn += wn[j] * job_nodes[j]
        if total_wn <= 0.0:
            for j in free:
                alloc[j] = 0.0
            break
        # Pin test in multiplication form: rate_j = remaining·wn_j/W
        # >= peak  ⇔  peak·W <= remaining·wn_j. With wn_j == 1.0 this
        # is exactly split_budget's ``active · peak <= budget``.
        pinned = [
            j for j in free if node_peak_w * total_wn <= remaining * wn[j]
        ]
        if pinned:
            for j in pinned:
                alloc[j] = node_peak_w * job_nodes[j]
                remaining -= alloc[j]
            pin_set = set(pinned)
            free = [j for j in free if j not in pin_set]
            continue
        for j in free:
            alloc[j] = (remaining * wn[j] / total_wn) * job_nodes[j]
        break
    return {j: alloc.get(j, 0.0) for j in jobids}


def fair_floor_w(
    budget_w: float,
    job_nodes: Mapping[int, int],
    node_peak_w: float,
    weights: Optional[Mapping[int, float]] = None,
) -> Dict[int, float]:
    """Each job's fairshare *floor*: the allocation it is entitled to no
    matter what the other tenants demand.

    ``floor_j = min(peak·n_j, budget · wn_j·n_j / Σ wn·n)`` — the first
    round's proportional rate, capped at peak.
    :func:`split_budget_weighted` provably never allocates below it
    (rates are non-decreasing across pin rounds), which is exactly the
    simtest *no-starvation* invariant.
    """
    if not job_nodes or sum(job_nodes.values()) == 0:
        return {}
    jobids = list(job_nodes)
    wn = normalize_weights(weights, jobids)
    total_wn = 0.0
    for j in jobids:
        total_wn += wn[j] * job_nodes[j]
    floors: Dict[int, float] = {}
    for j in jobids:
        cap = node_peak_w * job_nodes[j]
        if total_wn <= 0.0:
            floors[j] = 0.0
        else:
            floors[j] = min(cap, (float(budget_w) * wn[j] / total_wn) * job_nodes[j])
    return floors


def split_site_budget_weighted(
    site_budget_w: float,
    demands: Mapping[str, float],
    weights: Optional[Mapping[str, float]] = None,
    floors: Optional[Mapping[str, float]] = None,
    ceilings: Optional[Mapping[str, Optional[float]]] = None,
) -> Dict[str, float]:
    """Fairshare-weighted :func:`~repro.federation.rebalance.split_site_budget`.

    The effective fill weight of cluster ``c`` becomes
    ``wn_c × demand_c`` — a high-priority site drains proportionally
    more of the budget, still clamped to its floor/ceiling band. Like
    the unweighted split, the full budget is always distributed (equal
    split when every demand is zero); ``weights=None`` (or all equal)
    is bitwise identical to the unweighted split.
    """
    return split_site_budget(
        site_budget_w, demands, floors=floors, ceilings=ceilings, weights=weights
    )
