"""repro.tenancy — multi-tenant fairshare power management.

The ROADMAP's "millions of users competing for watts" item: the
paper's proportional split treats jobs as anonymous, but a production
site operates its power budget as an accountable per-project resource
(ORNL runs Frontier's budget this way — see PAPERS.md). This package
adds that layer without touching the anonymous path:

* :mod:`~repro.tenancy.model` — the ``Account``/``Project``/``Tenant``
  directory (slurm-style fairshare tree, JSON-round-trippable);
* :mod:`~repro.tenancy.accounting` — exponentially-decaying usage
  ledger and effective-weight feedback;
* :mod:`~repro.tenancy.fairshare` — pure weighted water-fills
  (``split_budget_weighted`` / ``split_site_budget_weighted``),
  bitwise-identical to the unweighted splits at equal weights;
* :mod:`~repro.tenancy.admission` — deterministic admit/queue/reject
  with structured reasons;
* :mod:`~repro.tenancy.coordinator` — wires it all onto a live
  :class:`~repro.cluster.PowerManagedCluster`;
* :mod:`~repro.tenancy.report` — the ``repro tenants`` CLI demo.

See docs/tenancy.md for the model, the math and the test strategy.
"""

from repro.tenancy.accounting import (
    UsageLedger,
    decay_factor,
    effective_weight,
)
from repro.tenancy.admission import (
    AdmissionConfig,
    AdmissionDecision,
    decide,
)
from repro.tenancy.coordinator import (
    ACCOUNTING_CSV_FIELDS,
    AdmissionRecord,
    TenancyConfig,
    TenancyCoordinator,
)
from repro.tenancy.fairshare import (
    fair_floor_w,
    normalize_weights,
    split_budget_weighted,
    split_site_budget_weighted,
)
from repro.tenancy.model import (
    UNAFFILIATED,
    Account,
    Project,
    Tenant,
    TenantDirectory,
)

__all__ = [
    "ACCOUNTING_CSV_FIELDS",
    "Account",
    "AdmissionConfig",
    "AdmissionDecision",
    "AdmissionRecord",
    "Project",
    "Tenant",
    "TenancyConfig",
    "TenancyCoordinator",
    "TenantDirectory",
    "UNAFFILIATED",
    "UsageLedger",
    "decay_factor",
    "decide",
    "effective_weight",
    "fair_floor_w",
    "normalize_weights",
    "split_budget_weighted",
    "split_site_budget_weighted",
]
