"""Exponentially-decaying usage accounting (pure; property-tested).

The fairshare feedback loop from the control-theory literature
(PAPERS.md, "Sustaining Performance While Reducing Energy
Consumption"): a project's *decayed usage* — watt-seconds charged with
an exponential half-life — divides down its effective weight, so heavy
recent consumers yield allocation to light ones and the system tracks
long-run fairness instead of instantaneous demand.

All functions are pure in simulated time (the caller passes ``now``),
so the same event sequence always produces the same ledger bytes —
the admission-determinism acceptance test relies on that.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: Default usage half-life (simulated seconds). Short enough that a
#: simtest-scale run (~100 s) sees meaningful decay.
DEFAULT_HALF_LIFE_S = 600.0

#: Usage (watt-seconds) at which a project's effective weight halves.
DEFAULT_USAGE_NORM_WS = 500_000.0


def decay_factor(dt_s: float, half_life_s: float) -> float:
    """``0.5 ** (dt / half_life)`` with ``dt`` clamped at 0.

    Always in ``(0, 1]``: exactly 1.0 at ``dt <= 0``, exactly 0.5 one
    half-life later, monotonically decreasing in ``dt``.
    """
    if half_life_s <= 0:
        raise ValueError(f"half_life_s must be > 0, got {half_life_s}")
    if dt_s <= 0.0:
        return 1.0
    return 0.5 ** (dt_s / half_life_s)


def effective_weight(base_weight: float, usage_ws: float, norm_ws: float) -> float:
    """Fairshare-discounted weight: ``base / (1 + usage / norm)``.

    Bounds (pinned by the property suite): always in ``(0, base]``,
    exactly ``base`` at zero usage, exactly ``base / 2`` at
    ``usage == norm``, monotonically decreasing in usage.
    """
    if not base_weight > 0.0:
        raise ValueError(f"base_weight must be > 0, got {base_weight}")
    if norm_ws <= 0:
        raise ValueError(f"norm_ws must be > 0, got {norm_ws}")
    if usage_ws < 0:
        raise ValueError(f"usage_ws must be >= 0, got {usage_ws}")
    return base_weight / (1.0 + usage_ws / norm_ws)


class UsageLedger:
    """Per-project decayed usage plus lifetime totals.

    ``charge`` folds new watt-seconds into the decayed balance;
    ``decayed`` reads the balance as of ``now`` without mutating.
    Lazy decay (apply the factor only when touched) keeps charging
    O(1) per project and independent of tick rate.
    """

    def __init__(self, half_life_s: float = DEFAULT_HALF_LIFE_S) -> None:
        if half_life_s <= 0:
            raise ValueError(f"half_life_s must be > 0, got {half_life_s}")
        self.half_life_s = float(half_life_s)
        self._usage_ws: Dict[str, float] = {}
        self._t_last: Dict[str, float] = {}
        self._lifetime_ws: Dict[str, float] = {}

    def decayed(self, project: str, now: float) -> float:
        usage = self._usage_ws.get(project)
        if usage is None:
            return 0.0
        dt = now - self._t_last.get(project, now)
        return usage * decay_factor(dt, self.half_life_s)

    def lifetime(self, project: str) -> float:
        return self._lifetime_ws.get(project, 0.0)

    def charge(self, project: str, watts: float, duration_s: float, now: float) -> float:
        """Charge ``watts × duration_s`` watt-seconds as of ``now``;
        returns the new decayed balance."""
        if watts < 0 or duration_s < 0:
            raise ValueError("charge must be non-negative")
        delta = float(watts) * float(duration_s)
        balance = self.decayed(project, now) + delta
        self._usage_ws[project] = balance
        self._t_last[project] = now
        self._lifetime_ws[project] = self._lifetime_ws.get(project, 0.0) + delta
        return balance

    def projects(self) -> List[str]:
        return sorted(set(self._usage_ws) | set(self._lifetime_ws))

    def snapshot(self, now: float) -> List[Tuple[str, float, float]]:
        """``(project, decayed_ws, lifetime_ws)`` rows, sorted."""
        return [
            (p, self.decayed(p, now), self.lifetime(p)) for p in self.projects()
        ]
