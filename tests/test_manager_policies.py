"""Unit tests for the FPP state machine and policy plumbing."""

import math

import pytest

from repro.manager.policies.fpp import FPPGpuController, FPPParams


def make_ctl(**param_overrides):
    params = FPPParams(**param_overrides)
    return FPPGpuController(0, params, sample_dt_s=2.0), params


# ---------------------------------------------------------------------------
# FPPParams defaults = Algorithm 1 constants
# ---------------------------------------------------------------------------

def test_default_params_match_algorithm1():
    p = FPPParams()
    assert p.converge_th_s == 2.0
    assert p.change_th_s == 5.0
    assert p.p_reduce_w == 50.0
    assert p.powercap_levels_w == (10.0, 15.0, 25.0)
    assert p.powercap_time_s == 90.0
    assert p.fft_update_s == 30.0
    assert p.max_gpu_cap_w == 300.0


# ---------------------------------------------------------------------------
# GET-GPU-CAP branches
# ---------------------------------------------------------------------------

def test_first_interval_probes_down():
    ctl, p = make_ctl()
    ctl.period_s = 20.0
    cap = ctl.next_cap(253.0, 100.0, 253.0)
    assert cap == 253.0 - p.p_reduce_w
    assert not ctl.converged


def test_first_interval_without_probe_keeps_cap():
    ctl, _ = make_ctl(initial_probe=False)
    ctl.period_s = 20.0
    assert ctl.next_cap(253.0, 100.0, 253.0) == 253.0


def test_probe_respects_floor():
    ctl, _ = make_ctl()
    ctl.period_s = 20.0
    assert ctl.next_cap(120.0, 100.0, 253.0) == 100.0


def test_stable_period_converges():
    """|delta| <= 2 s -> converged, cap frozen (Quicksilver's fate)."""
    ctl, _ = make_ctl()
    ctl.period_s = 20.0
    cap = ctl.next_cap(253.0, 100.0, 253.0)  # probe
    ctl.period_s = 20.5  # essentially unchanged
    cap2 = ctl.next_cap(cap, 100.0, 253.0)
    assert ctl.converged
    assert cap2 == cap  # frozen at the probed value
    # Further calls never change the cap.
    ctl.period_s = 99.0
    assert ctl.next_cap(cap2, 100.0, 253.0) == cap2


def test_small_period_decrease_reduces_power():
    ctl, p = make_ctl()
    ctl.period_s = 20.0
    cap = ctl.next_cap(253.0, 100.0, 253.0)  # probe -> 203
    ctl.period_s = 16.5  # delta = -3.5: in (converge, change)
    cap2 = ctl.next_cap(cap, 100.0, 253.0)
    assert cap2 == cap - p.p_reduce_w
    assert not ctl.converged


def test_moderate_period_growth_restores_small_step():
    ctl, p = make_ctl()
    ctl.period_s = 20.0
    cap = ctl.next_cap(253.0, 100.0, 253.0)
    ctl.period_s = 23.0  # delta = +3: hurt a little
    cap2 = ctl.next_cap(cap, 100.0, 253.0)
    assert cap2 == cap + p.powercap_levels_w[0]


def test_large_period_growth_restores_biggest_step():
    ctl, p = make_ctl()
    ctl.period_s = 20.0
    cap = ctl.next_cap(253.0, 100.0, 253.0)
    ctl.period_s = 35.0  # delta = +15 -> index min(3,2)=2
    cap2 = ctl.next_cap(cap, 100.0, 253.0)
    assert cap2 == cap + p.powercap_levels_w[2]


def test_intermediate_growth_uses_middle_level():
    ctl, p = make_ctl()
    ctl.period_s = 20.0
    cap = ctl.next_cap(253.0, 100.0, 253.0)
    ctl.period_s = 27.0  # delta = +7 -> index 1
    cap2 = ctl.next_cap(cap, 100.0, 253.0)
    assert cap2 == cap + p.powercap_levels_w[1]


def test_restore_clamped_to_ceiling():
    ctl, _ = make_ctl()
    ctl.period_s = 20.0
    ctl.next_cap(253.0, 100.0, 253.0)
    ctl.period_s = 40.0
    assert ctl.next_cap(250.0, 100.0, 253.0) == 253.0


def test_none_period_treated_as_destabilised():
    """Flat-signal apps (GEMM): power is given back at the max step."""
    ctl, p = make_ctl()
    ctl.period_s = None
    cap = ctl.next_cap(253.0, 100.0, 253.0)  # probe happens first
    assert cap == 203.0
    ctl.period_s = None
    cap2 = ctl.next_cap(cap, 100.0, 253.0)
    assert cap2 == cap + p.powercap_levels_w[2]
    assert not ctl.converged


def test_delta_uses_consecutive_windows():
    ctl, _ = make_ctl()
    ctl.period_s = 20.0
    ctl.next_cap(253.0, 100.0, 253.0)
    ctl.period_s = 26.0  # +6 vs 20
    ctl.next_cap(203.0, 100.0, 253.0)
    ctl.period_s = 26.5  # +0.5 vs 26 -> converge
    ctl.next_cap(213.0, 100.0, 253.0)
    assert ctl.converged


# ---------------------------------------------------------------------------
# FFT buffer plumbing
# ---------------------------------------------------------------------------

def test_store_power_updates_period_every_30s():
    ctl, _ = make_ctl()
    # 20 s square wave sampled at 2 s: 15 samples = 30 s.
    for i in range(30):
        pos = (i * 2.0) % 20.0
        ctl.store_power(250.0 if pos < 6.0 else 60.0)
    assert ctl.period_s == pytest.approx(20.0, abs=3.0)


def test_reset_buffer_clears_samples():
    ctl, _ = make_ctl()
    for _ in range(20):
        ctl.store_power(100.0)
    ctl.reset_buffer()
    assert ctl.buffer == []


def test_describe_snapshot():
    ctl, _ = make_ctl()
    d = ctl.describe()
    assert d["gpu"] == 0 and d["converged"] is False
