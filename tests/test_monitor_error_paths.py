"""Error-path coverage for the monitor stack."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec
from repro.flux.message import FluxRPCError
from repro.flux.module import RetryConfig
from repro.monitor.module import attach_monitor
from repro.monitor.node_agent import NodeAgentModule
from repro.monitor.root_agent import GET_JOB_POWER_TOPIC, RootAgentModule


def _degraded_total(instance):
    return sum(
        s.value
        for s in instance.telemetry.metrics.series_for(
            "monitor_degraded_aggregations_total"
        )
    )


def test_root_agent_requires_rank0(lassen4):
    with pytest.raises(ValueError):
        RootAgentModule(lassen4.brokers[1])


def test_node_agent_requires_hardware():
    from repro.flux.broker import Broker
    from repro.flux.overlay import TBON
    from repro.simkernel import Simulator

    sim = Simulator()
    broker = Broker(sim, 0, TBON(size=1))  # no node attached
    with pytest.raises(ValueError):
        NodeAgentModule(broker)


def test_get_job_power_degrades_when_node_agent_missing(lassen4):
    """Ranks without the monitor loaded degrade to per-node error records.

    Historically one missing node agent turned the whole query into an
    errnum=5 failure; now the aggregation completes with the unanswered
    ranks marked partial (the production behaviour the fault layer
    exists to prove).
    """
    # Load the root agent only (no node agents anywhere).
    lassen4.load_module_on_root(lambda b: RootAgentModule(b))
    fut = lassen4.brokers[0].rpc(
        0, GET_JOB_POWER_TOPIC, {"ranks": [1, 2], "t_start": 0.0, "t_end": 5.0}
    )
    lassen4.run_for(1.0)
    nodes = fut.value["nodes"]  # must not raise
    assert len(nodes) == 2
    for rec in nodes:
        assert rec["complete"] is False
        assert rec["samples"] == []
        assert rec["errnum"] == 38  # no service on that rank
        assert "error" in rec
    metrics = lassen4.telemetry.metrics
    degraded = sum(
        m.value for m in metrics.series_for("monitor_degraded_aggregations_total")
    )
    assert degraded == 1


def test_get_job_power_missing_args(lassen4):
    attach_monitor(lassen4)
    fut = lassen4.brokers[0].rpc(0, GET_JOB_POWER_TOPIC, {"ranks": [0]})
    lassen4.run_for(1.0)
    with pytest.raises(FluxRPCError):
        _ = fut.value


def test_tree_strategy_partial_rank_subsets():
    inst = FluxInstance(platform="lassen", n_nodes=8, seed=31)
    attach_monitor(inst, strategy="tree")
    inst.run_for(10.0)
    fut = inst.brokers[0].rpc(
        0,
        GET_JOB_POWER_TOPIC,
        {"ranks": [0, 3, 5, 7], "t_start": 0.0, "t_end": 10.0},
    )
    inst.run_for(1.0)
    hosts = sorted(n["hostname"] for n in fut.value["nodes"])
    assert hosts == ["lassen000", "lassen003", "lassen005", "lassen007"]


def test_client_timeout(lassen4):
    """With no root agent loaded, fetch errors rather than hanging."""
    mon = attach_monitor(lassen4)
    rec = lassen4.submit(Jobspec(app="laghos", nnodes=1))
    lassen4.run_until_complete()
    lassen4.unload_module_everywhere(RootAgentModule.name)
    with pytest.raises(FluxRPCError):
        mon.client.fetch(rec.jobid)


def test_flush_then_new_samples_flagged_correctly(lassen4):
    attach_monitor(lassen4)
    lassen4.run_for(20.0)
    lassen4.brokers[0].rpc(0, "power-monitor.clear", {})
    lassen4.run_for(20.0)
    # Old window: partial (history flushed). New window: complete.
    old = lassen4.brokers[0].rpc(
        0, "power-monitor.query", {"t_start": 0.0, "t_end": 18.0}
    )
    new = lassen4.brokers[0].rpc(
        0, "power-monitor.query", {"t_start": 24.0, "t_end": 38.0}
    )
    lassen4.run_for(1.0)
    assert old.value["complete"] is False
    assert new.value["complete"] is True


# ---------------------------------------------------------------------------
# Crash-driven degradation: retry exhaustion, errnum, restart mid-query
# ---------------------------------------------------------------------------

def test_retry_exhaustion_yields_exact_csv_marker_row(lassen4):
    """A crashed node's host appears as the explicit 8-field marker row."""
    mon = attach_monitor(
        lassen4, retry=RetryConfig(timeout_s=0.5, retries=1, backoff=1.0)
    )
    rec = lassen4.submit(Jobspec(app="laghos", nnodes=2))
    lassen4.run_until_complete()
    ranks = lassen4.kvs.get(f"jobs.{rec.jobid}")["ranks"]
    dead = max(ranks)
    assert dead != 0  # rank 0 hosts the root agent; crash a leaf
    FaultInjector(
        lassen4,
        FaultPlan(events=[FaultEvent(t=lassen4.sim.now + 0.1, kind="crash", rank=dead)]),
    )
    lassen4.run_for(0.5)

    data = mon.client.fetch(rec.jobid)
    host = lassen4.brokers[dead].node.hostname
    assert host in data.node_error
    assert data.node_complete[host] is False
    assert data.samples_for(host) == []

    lines = data.to_csv().splitlines()
    marker = f"{rec.jobid},{host},,,,,,partial"
    assert marker in lines
    assert marker.count(",") == 7  # all 8 CSV fields present, values empty
    # The surviving node still contributes ordinary complete rows.
    alive_host = lassen4.brokers[min(ranks)].node.hostname
    assert any(
        line.startswith(f"{rec.jobid},{alive_host},") and line.endswith("complete")
        for line in lines
    )


def test_crashed_rank_degrades_with_etimedout(lassen4):
    """Retry exhaustion against a dead broker propagates errnum 110."""
    attach_monitor(
        lassen4, retry=RetryConfig(timeout_s=0.5, retries=1, backoff=1.0)
    )
    lassen4.run_for(5.0)
    FaultInjector(
        lassen4,
        FaultPlan(events=[FaultEvent(t=lassen4.sim.now + 0.1, kind="crash", rank=2)]),
    )
    lassen4.run_for(0.5)
    before = _degraded_total(lassen4)

    fut = lassen4.brokers[0].rpc(
        0, GET_JOB_POWER_TOPIC, {"ranks": [1, 2], "t_start": 0.0, "t_end": 5.0}
    )
    lassen4.run_for(10.0)
    by_rank = {r["rank"]: r for r in fut.value["nodes"]}
    assert by_rank[2]["errnum"] == 110  # POSIX ETIMEDOUT from RPCTimeoutError
    assert by_rank[2]["complete"] is False
    assert by_rank[2]["samples"] == []
    assert "no response from rank 2" in by_rank[2]["error"]
    # The live rank is unaffected by its neighbour's death.
    assert by_rank[1]["complete"] is True
    assert by_rank[1]["samples"]
    assert _degraded_total(lassen4) == before + 1


def test_restart_during_query_recovers_without_error_record(lassen4):
    """A broker restarting inside the retry window answers a later attempt.

    The root agent's first attempt times out against the dead broker;
    the restart (with a fresh node agent reloaded, as the cluster facade
    does) lands before the retry budget is exhausted, so the query
    degrades to *partial data* — not an error record, and not a
    degraded-aggregation count.
    """
    mon = attach_monitor(lassen4)  # default retry: 5 s timeout, 2 retries
    lassen4.run_for(10.0)
    t0 = lassen4.sim.now
    dead = 1
    FaultInjector(
        lassen4,
        FaultPlan(
            events=[FaultEvent(t=t0 + 0.5, kind="crash", rank=dead, duration_s=4.0)]
        ),
        on_restart=lambda broker: mon.reload_agent(broker.rank),
    )
    lassen4.run_for(1.0)  # mid-outage: broker down, restart pending
    assert not lassen4.brokers[dead].up
    before = _degraded_total(lassen4)

    fut = lassen4.brokers[0].rpc(
        0, GET_JOB_POWER_TOPIC, {"ranks": [dead], "t_start": 0.0, "t_end": t0}
    )
    lassen4.run_for(30.0)
    rec = fut.value["nodes"][0]
    assert lassen4.brokers[dead].up  # restart happened during the query
    assert not rec.get("error")
    # The reloaded agent's ring buffer is empty: pre-crash history died
    # with the broker, so the pre-outage window comes back partial.
    assert rec["samples"] == []
    assert rec["complete"] is False
    assert _degraded_total(lassen4) == before
