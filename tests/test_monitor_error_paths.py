"""Error-path coverage for the monitor stack."""

import pytest

from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec
from repro.flux.message import FluxRPCError
from repro.monitor.module import attach_monitor
from repro.monitor.node_agent import NodeAgentModule
from repro.monitor.root_agent import GET_JOB_POWER_TOPIC, RootAgentModule


def test_root_agent_requires_rank0(lassen4):
    with pytest.raises(ValueError):
        RootAgentModule(lassen4.brokers[1])


def test_node_agent_requires_hardware():
    from repro.flux.broker import Broker
    from repro.flux.overlay import TBON
    from repro.simkernel import Simulator

    sim = Simulator()
    broker = Broker(sim, 0, TBON(size=1))  # no node attached
    with pytest.raises(ValueError):
        NodeAgentModule(broker)


def test_get_job_power_degrades_when_node_agent_missing(lassen4):
    """Ranks without the monitor loaded degrade to per-node error records.

    Historically one missing node agent turned the whole query into an
    errnum=5 failure; now the aggregation completes with the unanswered
    ranks marked partial (the production behaviour the fault layer
    exists to prove).
    """
    # Load the root agent only (no node agents anywhere).
    lassen4.load_module_on_root(lambda b: RootAgentModule(b))
    fut = lassen4.brokers[0].rpc(
        0, GET_JOB_POWER_TOPIC, {"ranks": [1, 2], "t_start": 0.0, "t_end": 5.0}
    )
    lassen4.run_for(1.0)
    nodes = fut.value["nodes"]  # must not raise
    assert len(nodes) == 2
    for rec in nodes:
        assert rec["complete"] is False
        assert rec["samples"] == []
        assert rec["errnum"] == 38  # no service on that rank
        assert "error" in rec
    metrics = lassen4.telemetry.metrics
    degraded = sum(
        m.value for m in metrics.series_for("monitor_degraded_aggregations_total")
    )
    assert degraded == 1


def test_get_job_power_missing_args(lassen4):
    attach_monitor(lassen4)
    fut = lassen4.brokers[0].rpc(0, GET_JOB_POWER_TOPIC, {"ranks": [0]})
    lassen4.run_for(1.0)
    with pytest.raises(FluxRPCError):
        _ = fut.value


def test_tree_strategy_partial_rank_subsets():
    inst = FluxInstance(platform="lassen", n_nodes=8, seed=31)
    attach_monitor(inst, strategy="tree")
    inst.run_for(10.0)
    fut = inst.brokers[0].rpc(
        0,
        GET_JOB_POWER_TOPIC,
        {"ranks": [0, 3, 5, 7], "t_start": 0.0, "t_end": 10.0},
    )
    inst.run_for(1.0)
    hosts = sorted(n["hostname"] for n in fut.value["nodes"])
    assert hosts == ["lassen000", "lassen003", "lassen005", "lassen007"]


def test_client_timeout(lassen4):
    """With no root agent loaded, fetch errors rather than hanging."""
    mon = attach_monitor(lassen4)
    rec = lassen4.submit(Jobspec(app="laghos", nnodes=1))
    lassen4.run_until_complete()
    lassen4.unload_module_everywhere(RootAgentModule.name)
    with pytest.raises(FluxRPCError):
        mon.client.fetch(rec.jobid)


def test_flush_then_new_samples_flagged_correctly(lassen4):
    attach_monitor(lassen4)
    lassen4.run_for(20.0)
    lassen4.brokers[0].rpc(0, "power-monitor.clear", {})
    lassen4.run_for(20.0)
    # Old window: partial (history flushed). New window: complete.
    old = lassen4.brokers[0].rpc(
        0, "power-monitor.query", {"t_start": 0.0, "t_end": 18.0}
    )
    new = lassen4.brokers[0].rpc(
        0, "power-monitor.query", {"t_start": 24.0, "t_end": 38.0}
    )
    lassen4.run_for(1.0)
    assert old.value["complete"] is False
    assert new.value["complete"] is True
