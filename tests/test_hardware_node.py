"""Unit tests for the node model and platform specs."""

import pytest

from repro.hardware.domains import DomainKind
from repro.hardware.platforms import PLATFORM_SPECS, make_node
from repro.hardware.platforms.lassen import make_lassen_node
from repro.hardware.platforms.tioga import make_tioga_node
from repro.hardware.platforms.generic import make_generic_node


# ---------------------------------------------------------------------------
# Lassen
# ---------------------------------------------------------------------------

def test_lassen_idle_power_is_400w():
    """Section IV-C: 'we assume an idle node power consumption of 400 W'."""
    node = make_lassen_node("n0")
    assert node.idle_power_w() == pytest.approx(400.0)


def test_lassen_has_four_gpus_two_sockets():
    node = make_lassen_node("n0")
    assert node.n_gpus == 4
    assert len(node.cpu_domains) == 2
    assert len(node.memory_domains) == 1


def test_lassen_node_sensor_and_capping_flags():
    node = make_lassen_node("n0")
    assert node.spec.node_power_measurable
    assert node.spec.node_cappable
    assert node.spec.node_max_w == 3050.0


def test_lassen_has_opal_and_nvml():
    node = make_lassen_node("n0")
    assert node.opal is not None
    assert node.nvml is not None
    assert node.esmi is None


# ---------------------------------------------------------------------------
# Tioga
# ---------------------------------------------------------------------------

def test_tioga_has_8_logical_gpus_in_4_oams():
    node = make_tioga_node("t0")
    assert len(node.by_kind(DomainKind.OAM)) == 4
    assert node.n_gpus == 8  # 2 GCDs per OAM


def test_tioga_memory_and_node_not_measurable():
    node = make_tioga_node("t0")
    assert not node.spec.node_power_measurable
    mem = node.memory_domains[0]
    assert not mem.spec.measurable


def test_tioga_oam_max_power_560():
    node = make_tioga_node("t0")
    oam = node.by_kind(DomainKind.OAM)[0]
    assert oam.spec.max_w == 560.0


def test_tioga_has_esmi_only():
    node = make_tioga_node("t0")
    assert node.esmi is not None
    assert node.opal is None
    assert node.nvml is None


# ---------------------------------------------------------------------------
# Generic + factory
# ---------------------------------------------------------------------------

def test_generic_node_with_gpus():
    node = make_generic_node("g0", n_gpus=2)
    assert node.n_gpus == 2
    assert node.nvml is not None


def test_make_node_dispatches_by_platform():
    assert make_node("lassen", "a").spec.platform == "lassen"
    assert make_node("tioga", "b").spec.platform == "tioga"
    assert make_node("generic", "c").spec.platform == "generic"


def test_make_node_rejects_unknown_platform():
    with pytest.raises(ValueError):
        make_node("cray-1", "x")


@pytest.mark.parametrize("platform", sorted(PLATFORM_SPECS))
def test_all_platform_specs_are_valid(platform):
    spec = PLATFORM_SPECS[platform]()
    assert spec.domains
    for ds in spec.domains:
        assert ds.max_w >= ds.idle_w >= 0


# ---------------------------------------------------------------------------
# Power aggregation
# ---------------------------------------------------------------------------

def test_total_power_sums_domains():
    node = make_lassen_node("n0")
    node.domains["gpu0"].set_demand(300.0)
    assert node.total_power_w() == pytest.approx(400.0 + 250.0)


def test_total_power_clipped_by_opal_cap():
    node = make_lassen_node("n0")
    node.opal.set_node_power_cap(1000.0)
    for name, dom in node.domains.items():
        dom.set_demand(dom.spec.max_w)
    assert node.total_power_w() == pytest.approx(1000.0)
    assert node.raw_power_w() > 1000.0


def test_apply_demand_by_name():
    node = make_lassen_node("n0")
    node.apply_demand({"cpu0": 200.0, "gpu1": 250.0})
    assert node.domains["cpu0"].demand_w == 200.0
    assert node.domains["gpu1"].demand_w == 250.0


def test_apply_demand_unknown_domain_raises():
    node = make_lassen_node("n0")
    with pytest.raises(KeyError):
        node.apply_demand({"gpu9": 100.0})


def test_clear_demand_returns_to_idle():
    node = make_lassen_node("n0")
    node.apply_demand({"gpu0": 300.0, "cpu0": 250.0})
    node.clear_demand()
    assert node.total_power_w() == pytest.approx(400.0)


def test_gpu_throttles_reflect_caps():
    node = make_lassen_node("n0")
    for dom in node.gpu_domains:
        dom.set_demand(300.0)
    node.nvml.set_power_limit(0, 175.0)  # dyn 125 of 250 -> 0.5
    throttles = node.gpu_throttles()
    assert throttles[0] == pytest.approx(0.5)
    assert throttles[1:] == [1.0, 1.0, 1.0]


def test_cpu_throttle_includes_opal_residual():
    node = make_lassen_node("n0")
    node.opal.set_node_power_cap(1000.0)
    for dom in node.cpu_domains:
        dom.set_demand(250.0)
    for dom in node.gpu_domains:
        dom.set_demand(300.0)
    assert node.cpu_throttle() < 1.0
