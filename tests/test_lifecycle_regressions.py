"""Pinned recovery-path regressions: dead-set bookkeeping must survive.

Two bug families this PR's sweep covers, each pinned both ways:

* **cluster tier** — a recovered rank (``broker.up``) must leave the
  manager's dead set and be booked into later jobs' shares, and a
  restore taken *while a rank is down* must preserve the dead set. A
  naive restore that drops the lifecycle section books shares to dead
  nodes again (demonstrated below against the stripped artifact).
* **site tier** — a whole-cluster flap (down → up inside one epoch)
  must clear the site's event-derived dead set before the next
  ``split_site_budget``, and that bookkeeping must survive a site
  restore taken mid-outage. A naive restore that drops it leaves the
  cluster permanently "never recovered" (no recovery re-split, ever).
"""

from __future__ import annotations

import json

from repro.faults import FaultEvent, FaultPlan
from repro.federation import ClusterSpec, FederatedSite, SiteConfig
from repro.flux.jobspec import Jobspec
from repro.lifecycle.machine import AVAILABLE, DEGRADED
from repro.lifecycle.snapshot import (
    restore_cluster,
    restore_site,
    snapshot_cluster,
    snapshot_site,
    wipe_cluster_state,
    wipe_site_state,
)
from repro.cluster import PowerManagedCluster
from repro.manager.cluster_manager import ManagerConfig
from repro.simtest.federation.harness import run_federated_scenario
from repro.simtest.federation.scenario import ClusterScenario, FederatedScenario
from repro.simtest.scenario import JobEntry


def _counter_total(metrics, name: str) -> float:
    return sum(m.value for m in metrics.series_for(name))


def _capped_cluster(fault_plan=None, n_nodes: int = 8):
    return PowerManagedCluster(
        platform="lassen",
        n_nodes=n_nodes,
        seed=5,
        manager_config=ManagerConfig(
            global_cap_w=1500.0 * n_nodes,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
        fault_plan=fault_plan,
    )


def _running_job_ranks(cluster):
    jobs = cluster.manager.cluster.job_level.jobs
    assert len(jobs) == 1, f"expected one mid-flight job, got {sorted(jobs)}"
    return list(next(iter(jobs.values())).ranks)


# ----------------------------------------------------------------------
# Satellite: broker.up must re-admit the rank to future shares
# ----------------------------------------------------------------------
def test_recovered_rank_is_booked_into_later_jobs():
    # down at t=10, back at t=30; the job arrives well after recovery.
    plan = FaultPlan([FaultEvent(t=10.0, kind="crash", rank=3, duration_s=20.0)])
    cluster = _capped_cluster(plan)
    cluster.submit_at(
        Jobspec(app="gemm", nnodes=8, params={"work_scale": 6.0}), 40.0
    )
    cluster.run_for(46.0)
    root = cluster.manager.cluster
    assert root.down_ranks == frozenset()
    assert root.lifecycle.state_of(3) == AVAILABLE
    assert 3 in _running_job_ranks(cluster)
    metrics = cluster.telemetry_hub.metrics
    assert _counter_total(metrics, "manager_dead_ranks_skipped_total") == 0


def test_submit_while_down_excludes_the_dead_rank():
    plan = FaultPlan([FaultEvent(t=10.0, kind="crash", rank=3, duration_s=20.0)])
    cluster = _capped_cluster(plan)
    cluster.submit_at(
        Jobspec(app="gemm", nnodes=8, params={"work_scale": 6.0}), 15.0
    )
    cluster.run_for(20.0)
    root = cluster.manager.cluster
    assert root.down_ranks == frozenset({3})
    assert 3 not in _running_job_ranks(cluster)
    metrics = cluster.telemetry_hub.metrics
    assert _counter_total(metrics, "manager_dead_ranks_skipped_total") == 1


def test_restore_while_down_preserves_dead_set():
    plan = FaultPlan([FaultEvent(t=10.0, kind="crash", rank=3, duration_s=40.0)])
    cluster = _capped_cluster(plan)
    cluster.run_for(20.0)
    root = cluster.manager.cluster
    assert root.down_ranks == frozenset({3})

    snap = json.loads(json.dumps(snapshot_cluster(cluster)))
    wipe_cluster_state(cluster)
    assert root.down_ranks == frozenset()  # the wipe is amnesiac
    restore_cluster(cluster, snap)
    assert root.down_ranks == frozenset({3})
    assert root.lifecycle.state_of(3) == DEGRADED

    # ...and the revival at t=50 still lands on the restored books.
    cluster.run_for(35.0)
    assert root.down_ranks == frozenset()
    assert root.lifecycle.state_of(3) == AVAILABLE


def test_naive_restore_without_lifecycle_books_shares_to_dead_nodes():
    """The pre-fix failure: a restore that drops the lifecycle section.

    Restored mid-outage, the manager believes every rank is available,
    so a job submitted before the rank revives gets the dead rank
    booked into its share split — power paid to a node that cannot
    install the cap.
    """
    plan = FaultPlan([FaultEvent(t=10.0, kind="crash", rank=3, duration_s=40.0)])
    cluster = _capped_cluster(plan)
    cluster.run_for(20.0)
    root = cluster.manager.cluster

    snap = json.loads(json.dumps(snapshot_cluster(cluster)))
    del snap["manager"]["lifecycle"]
    wipe_cluster_state(cluster)
    restore_cluster(cluster, snap)
    assert root.down_ranks == frozenset()  # dead set silently lost

    cluster.submit(Jobspec(app="gemm", nnodes=8, params={"work_scale": 6.0}))
    cluster.run_for(5.0)
    assert 3 in _running_job_ranks(cluster)  # dead rank booked: the bug
    metrics = cluster.telemetry_hub.metrics
    assert _counter_total(metrics, "manager_dead_ranks_skipped_total") == 0


# ----------------------------------------------------------------------
# Satellite: site flap bookkeeping across epochs and restores
# ----------------------------------------------------------------------
def _flap_site(outage_duration_s: float):
    """Two 2-node clusters; east's sole crashable rank flaps at t=12."""
    config = SiteConfig(
        site_budget_w=12_000.0,
        rebalance_epoch_s=10.0,
        clusters=(
            ClusterSpec(name="east", platform="lassen", n_nodes=2,
                        static_node_cap_w=1950.0),
            ClusterSpec(name="west", platform="lassen", n_nodes=2,
                        static_node_cap_w=1950.0),
        ),
    )
    plan = FaultPlan([
        FaultEvent(t=12.0, kind="crash", rank=1, duration_s=outage_duration_s)
    ])
    return FederatedSite(config, seed=4, fault_plans={"east": plan})


def test_flap_within_one_epoch_clears_dead_set_before_next_split():
    site = _flap_site(outage_duration_s=5.0)  # down 12 → up 17, epoch at 20
    site.run_for(25.0)
    reasons = [e[1] for e in site.budget_log]
    assert "outage" in reasons and "recovery" in reasons
    assert site._event_down_ranks["east"] == set()
    assert not site.cluster_is_down("east")
    assert site.lifecycle.state_of("east") == AVAILABLE
    assert site.assigned_shares["east"] > 0.0
    metrics = site.telemetry.metrics
    assert _counter_total(metrics, "federation_cluster_recoveries_total") == 1


def test_site_restore_mid_outage_preserves_flap_bookkeeping():
    site = _flap_site(outage_duration_s=18.0)  # down 12 → up 30
    site.run_for(14.0)
    assert site.cluster_is_down("east")

    snap = json.loads(json.dumps(snapshot_site(site)))
    wipe_site_state(site)
    assert not site.cluster_is_down("east")  # the wipe is amnesiac
    restore_site(site, snap)
    assert site.cluster_is_down("east")
    assert site._event_down_ranks["east"] == {1}
    assert site.lifecycle.state_of("east") == DEGRADED

    # The revival at t=30 lands on the restored dead set: the cluster
    # is declared recovered and restored to the split.
    site.run_for(20.0)
    assert not site.cluster_is_down("east")
    assert any(e[1] == "recovery" and e[0] >= 29.0 for e in site.budget_log)
    metrics = site.telemetry.metrics
    assert _counter_total(metrics, "federation_cluster_recoveries_total") == 1


def test_naive_site_restore_never_declares_recovery():
    """The pre-fix failure at the site tier.

    Dropping ``event_down_ranks``/``cluster_down``/``lifecycle`` from
    the artifact makes the restored site re-count the eventual
    ``broker.up`` against an empty dead set: the liveness edge never
    fires, so no recovery re-split ever happens.
    """
    site = _flap_site(outage_duration_s=18.0)
    site.run_for(14.0)
    snap = json.loads(json.dumps(snapshot_site(site)))
    for key in ("event_down_ranks", "cluster_down", "lifecycle"):
        del snap["site"][key]
    wipe_site_state(site)
    restore_site(site, snap)
    assert not site.cluster_is_down("east")  # outage silently forgotten

    site.run_for(30.0)  # well past the t=30 revival
    assert not any(e[1] == "recovery" for e in site.budget_log)
    metrics = site.telemetry.metrics
    assert _counter_total(metrics, "federation_cluster_recoveries_total") == 0


def test_federated_simtest_flap_scenario_is_clean_and_deterministic():
    scenario = FederatedScenario(
        seed=5,
        site_budget_w=15_000.0,
        rebalance_epoch_s=10.0,
        clusters=(
            ClusterScenario(
                name="east", platform="lassen", n_nodes=3,
                jobs=(JobEntry(app="gemm", nnodes=2, work_scale=1.0,
                               submit_t=0.0),),
                outages=((12.0, 5.0),),
            ),
            ClusterScenario(
                name="west", platform="lassen", n_nodes=2,
                jobs=(JobEntry(app="nqueens", nnodes=1, work_scale=1.0,
                               submit_t=2.0),),
            ),
        ),
    )
    sites = []

    def _capture(site, sim):
        sites.append(site)

    first = run_federated_scenario(scenario, setup=_capture)
    assert first.ok, first.summary()
    metrics = sites[0].telemetry.metrics
    assert _counter_total(metrics, "federation_cluster_outages_total") == 1
    assert _counter_total(metrics, "federation_cluster_recoveries_total") == 1

    second = run_federated_scenario(scenario)
    assert second.ok and second.digest == first.digest
