"""Property tests for the pure fairshare water-fill arithmetic.

The contract of :func:`repro.tenancy.fairshare.split_budget_weighted`
(ISSUE 10), mirroring the federation rebalance property suite:

* **conservation** — Σ allocations == min(budget, peak × Σ nodes) to
  float tolerance, for any weight vector;
* **equal-weights parity** — with ``weights=None`` or all weights
  equal, the result is *bitwise* identical (``==``, no epsilon) to the
  unweighted ``split_budget``;
* **weight monotonicity** — raising one job's weight never lowers its
  own allocation;
* **floor** — every job receives at least its
  :func:`~repro.tenancy.fairshare.fair_floor_w` entitlement;
* **numpy twins** — ``split_budget_weighted_np`` and the weighted
  ``split_site_budget_np`` are element-for-element ``==`` equal to the
  scalar code on random shapes;
* **decay/effective-weight bounds** — the accounting primitives stay
  inside their documented ranges.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.columnar.ops import split_budget_weighted_np, split_site_budget_np
from repro.federation.rebalance import split_site_budget
from repro.manager.policies.proportional import split_budget
from repro.tenancy.accounting import decay_factor, effective_weight
from repro.tenancy.fairshare import (
    fair_floor_w,
    normalize_weights,
    split_budget_weighted,
    split_site_budget_weighted,
)

settings.register_profile("repro", derandomize=True, max_examples=200)
settings.load_profile("repro")

#: Loose comparison epsilon for sums of generated floats.
EPS = 1e-6

job_counts = st.integers(1, 6)
weight_values = st.floats(0.01, 100.0, allow_nan=False, allow_infinity=False)


@st.composite
def split_inputs(draw, with_weights=True):
    n = draw(job_counts)
    nodes = draw(st.lists(st.integers(0, 64), min_size=n, max_size=n))
    budget = draw(st.floats(0.0, 500_000.0))
    peak = draw(st.floats(1.0, 5000.0))
    job_nodes = {i + 1: nodes[i] for i in range(n)}
    weights = None
    if with_weights:
        ws = draw(st.lists(weight_values, min_size=n, max_size=n))
        weights = {i + 1: ws[i] for i in range(n)}
    return budget, job_nodes, peak, weights


@given(split_inputs())
def test_conservation(inputs):
    """Σ allocations == min(budget, peak × Σ nodes), any weights."""
    budget, job_nodes, peak, weights = inputs
    alloc = split_budget_weighted(budget, job_nodes, peak, weights)
    if sum(job_nodes.values()) == 0:
        assert alloc == {}  # mirrors split_budget's no-active-nodes case
        return
    assert set(alloc) == set(job_nodes)
    expected = min(budget, peak * sum(job_nodes.values()))
    total = sum(alloc.values())
    assert math.isclose(total, expected, rel_tol=1e-9, abs_tol=EPS), (
        total, expected,
    )
    for jobid, a in alloc.items():
        assert a >= 0.0
        assert a <= peak * job_nodes[jobid] * (1.0 + 1e-9) + EPS


@given(split_inputs(with_weights=False), weight_values)
def test_equal_weights_bitwise_parity(inputs, w):
    """None, absent, and all-equal weights are all *bitwise* equal to
    the unweighted split — ``==`` on every value, no tolerance."""
    budget, job_nodes, peak, _ = inputs
    reference = split_budget(budget, job_nodes, peak)
    assert split_budget_weighted(budget, job_nodes, peak, None) == reference
    equal = {j: w for j in job_nodes}
    assert split_budget_weighted(budget, job_nodes, peak, equal) == reference


@given(split_inputs(), st.floats(0.1, 50.0))
def test_weight_monotonicity(inputs, bump):
    """Raising one job's weight never lowers its own allocation."""
    budget, job_nodes, peak, weights = inputs
    alloc = split_budget_weighted(budget, job_nodes, peak, weights)
    target = sorted(job_nodes)[0]
    bumped = dict(weights)
    bumped[target] = bumped[target] + bump
    alloc2 = split_budget_weighted(budget, job_nodes, peak, bumped)
    assert alloc2.get(target, 0.0) >= alloc.get(target, 0.0) - EPS


@given(split_inputs())
def test_floor_respected(inputs):
    """No job is ever allocated below its fairshare floor."""
    budget, job_nodes, peak, weights = inputs
    alloc = split_budget_weighted(budget, job_nodes, peak, weights)
    floors = fair_floor_w(budget, job_nodes, peak, weights)
    assert set(alloc) == set(floors)
    for jobid in alloc:
        assert alloc[jobid] >= floors[jobid] * (1.0 - 1e-9) - EPS, (
            jobid, alloc[jobid], floors[jobid],
        )


@given(split_inputs())
def test_numpy_twin_exact(inputs):
    """The vectorized twin is element-for-element ``==`` equal."""
    budget, job_nodes, peak, weights = inputs
    scalar = split_budget_weighted(budget, job_nodes, peak, weights)
    vector = split_budget_weighted_np(budget, job_nodes, peak, weights)
    assert list(scalar) == list(vector)
    for jobid in scalar:
        assert scalar[jobid] == vector[jobid], (
            jobid, scalar[jobid], vector[jobid],
        )


# ---------------------------------------------------------------------------
# Site-level weighted split
# ---------------------------------------------------------------------------

@st.composite
def site_inputs(draw, with_weights=True):
    n = draw(st.integers(1, 6))
    demands = draw(st.lists(st.floats(0.0, 50_000.0), min_size=n, max_size=n))
    budget = draw(st.floats(1_000.0, 200_000.0))
    names = [f"c{i}" for i in range(n)]
    weights = None
    if with_weights:
        ws = draw(st.lists(weight_values, min_size=n, max_size=n))
        weights = {names[i]: ws[i] for i in range(n)}
    return budget, {names[i]: demands[i] for i in range(n)}, weights


@given(site_inputs(with_weights=False), weight_values)
def test_site_equal_weights_bitwise_parity(inputs, w):
    """Weighted site split with None/equal weights == unweighted split."""
    budget, demands, _ = inputs
    reference = split_site_budget(budget, demands)
    assert split_site_budget_weighted(budget, demands, None) == reference
    equal = {c: w for c in demands}
    assert split_site_budget_weighted(budget, demands, equal) == reference


@given(site_inputs())
def test_site_weighted_conservation(inputs):
    """Weighted shares distribute the full site budget (the split's
    documented contract: equal split when every demand is zero, never a
    stranded watt), and every share is non-negative."""
    budget, demands, weights = inputs
    shares = split_site_budget_weighted(budget, demands, weights)
    assert set(shares) == set(demands)
    assert math.isclose(
        sum(shares.values()), budget, rel_tol=1e-9, abs_tol=EPS
    )
    for share in shares.values():
        assert share >= 0.0


@given(site_inputs())
def test_site_numpy_twin_exact(inputs):
    """The weighted site split's vectorized twin is ``==`` equal."""
    budget, demands, weights = inputs
    scalar = split_site_budget_weighted(budget, demands, weights)
    vector = split_site_budget_np(budget, demands, weights=weights)
    assert list(scalar) == list(vector)
    for name in scalar:
        assert scalar[name] == vector[name]


# ---------------------------------------------------------------------------
# Accounting primitives
# ---------------------------------------------------------------------------

@given(
    st.floats(0.0, 1e7, allow_nan=False, allow_infinity=False),
    st.floats(1.0, 1e5, allow_nan=False, allow_infinity=False),
)
def test_decay_factor_bounds(dt, half_life):
    """decay_factor ∈ [0, 1] (0.0 only via IEEE underflow at extreme
    dt/half-life ratios); exactly 0.5 at one half-life."""
    f = decay_factor(dt, half_life)
    assert 0.0 <= f <= 1.0
    assert decay_factor(0.0, half_life) == 1.0
    assert math.isclose(decay_factor(half_life, half_life), 0.5, rel_tol=1e-12)


@given(
    weight_values,
    st.floats(0.0, 1e9, allow_nan=False, allow_infinity=False),
    st.floats(1.0, 1e7, allow_nan=False, allow_infinity=False),
)
def test_effective_weight_bounds(base, usage, norm):
    """effective_weight ∈ (0, base]; monotonically decreasing in usage."""
    w = effective_weight(base, usage, norm)
    assert 0.0 < w <= base
    assert effective_weight(base, 0.0, norm) == base
    assert effective_weight(base, usage + norm, norm) <= w


# ---------------------------------------------------------------------------
# Validation edges
# ---------------------------------------------------------------------------

def test_normalize_weights_max_is_exactly_one():
    wn = normalize_weights({"a": 3.0, "b": 1.5}, ["a", "b"])
    assert wn["a"] == 1.0
    assert wn["b"] == 0.5


def test_rejects_nonpositive_and_nonfinite_weights():
    for bad in (0.0, -1.0, float("nan"), float("inf")):
        with pytest.raises(ValueError):
            split_budget_weighted(100.0, {1: 1, 2: 1}, 50.0, {1: bad})


def test_rejects_negative_nodes():
    with pytest.raises(ValueError):
        split_budget_weighted(100.0, {1: -1}, 50.0)


def test_empty_inputs():
    assert split_budget_weighted(100.0, {}, 50.0) == {}
    assert fair_floor_w(100.0, {}, 50.0) == {}
    assert split_site_budget_weighted(100.0, {}) == {}
    # Zero total nodes mirrors split_budget's empty result exactly.
    assert split_budget(100.0, {1: 0}, 50.0) == {}
    assert split_budget_weighted(100.0, {1: 0}, 50.0, {1: 2.0}) == {}
    assert split_budget_weighted_np(100.0, {1: 0}, 50.0) == {}
    assert fair_floor_w(100.0, {1: 0}, 50.0) == {}
    assert np.asarray([]).size == 0  # numpy really is importable here
