"""Unit tests for ASCII timeline rendering."""

import pytest

from repro.analysis.plotting import GLYPHS, ascii_timeline, sparkline


def make_series(n=50, lo=400.0, hi=1000.0):
    return [(float(t), lo + (hi - lo) * (t % 10) / 10.0) for t in range(n)]


def test_single_series_renders():
    out = ascii_timeline({"node": make_series()})
    lines = out.splitlines()
    assert lines[0] == "#=node"
    assert any("#" in line for line in lines[1:])
    assert "W" in lines[1]


def test_dimensions_respected():
    out = ascii_timeline({"a": make_series()}, width=40, height=8)
    body = [l for l in out.splitlines() if "|" in l]
    assert len(body) == 8
    assert all(len(l.split("|", 1)[1]) <= 40 for l in body)


def test_multiple_series_use_distinct_glyphs():
    out = ascii_timeline({"a": make_series(), "b": make_series(lo=100, hi=200)})
    assert f"{GLYPHS[0]}=a" in out
    assert f"{GLYPHS[1]}=b" in out
    assert GLYPHS[1] in out.split("\n", 1)[1]


def test_t_range_clips_points():
    series = make_series(100)
    out = ascii_timeline({"a": series}, t_range=(0.0, 10.0), width=30)
    assert "t=0s" in out and "t=10s" in out


def test_constant_series_does_not_divide_by_zero():
    out = ascii_timeline({"flat": [(0.0, 5.0), (1.0, 5.0)]})
    assert "#" in out


def test_empty_input_rejected():
    with pytest.raises(ValueError):
        ascii_timeline({})
    with pytest.raises(ValueError):
        ascii_timeline({"a": []})


def test_axis_labels_show_y_extremes():
    out = ascii_timeline({"a": [(0.0, 100.0), (1.0, 900.0)]})
    assert "900" in out and "100" in out


def test_sparkline_resamples_to_width():
    s = sparkline(list(range(1000)), width=40)
    assert len(s) == 40
    # Monotone data gives nondecreasing block heights.
    assert s[0] <= s[-1]


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    flat = sparkline([5.0, 5.0, 5.0])
    assert len(set(flat)) == 1
