"""Unit tests for trace CSV export."""

import pytest

from repro.analysis.traces import ClusterPowerTrace
from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec


@pytest.fixture
def traced():
    inst = FluxInstance(platform="lassen", n_nodes=2, seed=22)
    trace = ClusterPowerTrace(inst, interval_s=2.0)
    inst.submit(Jobspec(app="laghos", nnodes=2))
    inst.run_until_complete()
    trace.stop()
    return inst, trace


def test_csv_header_and_columns(traced):
    _, trace = traced
    lines = trace.to_csv().strip().splitlines()
    assert lines[0] == "timestamp,lassen000,lassen001,cluster_w"
    for line in lines[1:]:
        assert len(line.split(",")) == 4


def test_csv_cluster_column_is_row_sum(traced):
    _, trace = traced
    for line in trace.to_csv().strip().splitlines()[1:]:
        _, a, b, total = (float(x) for x in line.split(","))
        assert total == pytest.approx(a + b, abs=0.01)


def test_csv_rows_match_samples(traced):
    _, trace = traced
    lines = trace.to_csv().strip().splitlines()
    assert len(lines) - 1 == len(trace.times)


def test_write_csv_roundtrip(traced, tmp_path):
    _, trace = traced
    path = tmp_path / "trace.csv"
    trace.write_csv(str(path))
    assert path.read_text() == trace.to_csv()


def test_csv_captures_load_transition(traced):
    _, trace = traced
    lines = trace.to_csv().strip().splitlines()[1:]
    totals = [float(l.split(",")[-1]) for l in lines]
    assert totals[0] == pytest.approx(800.0)  # idle at t=0
    assert max(totals) > 900.0  # laghos load visible
