"""The public API surface: everything in ``__all__`` exists and imports."""

import importlib

import pytest

import repro


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version_string():
    assert repro.__version__


@pytest.mark.parametrize(
    "module",
    [
        "repro.simkernel",
        "repro.hardware",
        "repro.hardware.platforms",
        "repro.variorum",
        "repro.variorum.backends",
        "repro.flux",
        "repro.apps",
        "repro.monitor",
        "repro.manager",
        "repro.manager.policies",
        "repro.analysis",
        "repro.experiments",
        "repro.serving",
        "repro.cli",
    ],
)
def test_subpackage_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name}"


def test_public_items_have_docstrings():
    """Every public item on the top-level API is documented."""
    for name in repro.__all__:
        obj = getattr(repro, name)
        if name.startswith("__") or isinstance(obj, str):
            continue
        assert getattr(obj, "__doc__", None), f"{name} lacks a docstring"


def test_policy_registry_matches_exports():
    from repro.manager.policies import POLICY_FACTORIES

    assert set(POLICY_FACTORIES) == {
        "static",
        "proportional",
        "fpp",
        "fpp-socket",
        "history",
        "pi",
        "ecoshift",
        "checkpoint",
    }
