"""Unit tests for vendor firmware behaviours."""

import numpy as np
import pytest

from repro.hardware.firmware import (
    CappingError,
    ESMIDriver,
    NVMLDriver,
    OPALFirmware,
    RAPLDriver,
    ibm_derived_gpu_cap,
)
from repro.hardware.platforms.lassen import make_lassen_node
from repro.hardware.platforms.tioga import make_tioga_node
from repro.hardware.platforms.generic import make_generic_node


# ---------------------------------------------------------------------------
# IBM derived GPU caps — must fit Table III exactly
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "node_cap,expected",
    [(1200.0, 100.0), (1800.0, 216.0), (1950.0, 253.0), (3050.0, 300.0)],
)
def test_ibm_derivation_matches_table3(node_cap, expected):
    derived = ibm_derived_gpu_cap(node_cap)
    assert derived == pytest.approx(expected, abs=1.0)


def test_ibm_derivation_clamps_to_gpu_floor():
    assert ibm_derived_gpu_cap(500.0) == 100.0


def test_ibm_derivation_clamps_to_gpu_max():
    assert ibm_derived_gpu_cap(3050.0) == 300.0


def test_ibm_derivation_psr_scales_gpu_budget():
    full = ibm_derived_gpu_cap(1950.0, psr=100.0)
    half = ibm_derived_gpu_cap(1950.0, psr=50.0)
    assert half < full


def test_ibm_derivation_rejects_zero_gpus():
    with pytest.raises(ValueError):
        ibm_derived_gpu_cap(1950.0, n_gpus=0)


# ---------------------------------------------------------------------------
# OPAL
# ---------------------------------------------------------------------------

def test_opal_installs_derived_gpu_caps():
    node = make_lassen_node("n0")
    derived = node.opal.set_node_power_cap(1950.0)
    assert derived == pytest.approx(253.0, abs=1.0)
    for gpu in node.gpu_domains:
        assert gpu.get_cap("opal") == pytest.approx(253.0, abs=1.0)


def test_opal_rejects_out_of_range_caps():
    node = make_lassen_node("n0")
    with pytest.raises(CappingError):
        node.opal.set_node_power_cap(400.0)  # below soft min 500
    with pytest.raises(CappingError):
        node.opal.set_node_power_cap(4000.0)  # above max 3050


def test_opal_soft_cap_accepted_between_soft_and_hard_min():
    node = make_lassen_node("n0")
    node.opal.set_node_power_cap(700.0)  # soft region: accepted
    assert node.opal.node_cap_w == 700.0


def test_opal_clear_removes_gpu_caps():
    node = make_lassen_node("n0")
    node.opal.set_node_power_cap(1200.0)
    node.opal.clear_node_power_cap()
    assert node.opal.node_cap_w is None
    for gpu in node.gpu_domains:
        assert gpu.get_cap("opal") is None


def test_opal_cpu_throttle_when_over_cap():
    node = make_lassen_node("n0")
    node.opal.set_node_power_cap(1000.0)
    for dom in node.cpu_domains:
        dom.set_demand(250.0)
    for dom in node.gpu_domains:
        dom.set_demand(300.0)
    factor = node.opal.cpu_throttle_needed(node.raw_power_w())
    assert 0.0 <= factor < 1.0


def test_opal_no_cpu_throttle_under_cap():
    node = make_lassen_node("n0")
    node.opal.set_node_power_cap(3050.0)
    assert node.opal.cpu_throttle_needed(node.raw_power_w()) == 1.0


# ---------------------------------------------------------------------------
# NVML
# ---------------------------------------------------------------------------

def test_nvml_sets_caps_within_range():
    node = make_lassen_node("n0")
    caps = node.nvml.set_all(150.0)
    assert caps == [150.0] * 4
    for gpu in node.gpu_domains:
        assert gpu.get_cap("nvml") == 150.0


def test_nvml_rejects_out_of_range():
    node = make_lassen_node("n0")
    with pytest.raises(CappingError):
        node.nvml.set_power_limit(0, 50.0)
    with pytest.raises(CappingError):
        node.nvml.set_power_limit(0, 400.0)


def test_nvml_clear_all():
    node = make_lassen_node("n0")
    node.nvml.set_all(150.0)
    node.nvml.clear_all()
    for gpu in node.gpu_domains:
        assert gpu.get_cap("nvml") is None


def test_nvml_failures_disabled_by_default():
    node = make_lassen_node("n0", rng=np.random.default_rng(0))
    for _ in range(50):
        node.nvml.set_power_limit(0, 150.0)
    assert node.nvml.failures == 0


def test_nvml_intermittent_failures_reproduce_section5():
    """At a configured rate, caps stick or reset to max (Section V)."""
    rng = np.random.default_rng(7)
    node = make_lassen_node("n0", rng=rng, nvml_failure_rate=0.5)
    results = [node.nvml.set_power_limit(0, 120.0) for _ in range(40)]
    assert node.nvml.failures > 0
    # A failed request either kept a previous value or reset to 300.
    assert any(r != 120.0 for r in results)
    assert all(r in (120.0, 300.0) for r in results)


def test_nvml_failures_are_seeded_deterministic():
    def run(seed):
        node = make_lassen_node("n0", rng=np.random.default_rng(seed), nvml_failure_rate=0.3)
        return [node.nvml.set_power_limit(0, 150.0) for _ in range(20)]

    assert run(5) == run(5)
    assert run(5) != run(6)


# ---------------------------------------------------------------------------
# E-SMI (Tioga)
# ---------------------------------------------------------------------------

def test_esmi_refuses_user_capping_on_tioga():
    node = make_tioga_node("t0")
    with pytest.raises(CappingError):
        node.esmi.set_socket_power_cap(0, 200.0)
    with pytest.raises(CappingError):
        node.esmi.set_oam_power_cap(0, 400.0)


def test_esmi_caps_when_enabled():
    node = make_tioga_node("t0")
    node.esmi.user_capping_enabled = True
    assert node.esmi.set_oam_power_cap(0, 400.0) == 400.0


# ---------------------------------------------------------------------------
# RAPL (generic)
# ---------------------------------------------------------------------------

def test_rapl_caps_sockets():
    node = make_generic_node("g0")
    assert node.rapl.set_socket_power_cap(0, 120.0) == 120.0
    assert node.rapl.caps()["cpu0"] == 120.0


def test_rapl_rejects_out_of_range():
    node = make_generic_node("g0")
    with pytest.raises(CappingError):
        node.rapl.set_socket_power_cap(0, 10.0)
