"""Stateful property test: the job manager under random operation mixes.

Hypothesis drives a real FluxInstance through random submit / depend /
cancel / advance sequences and checks the structural invariants after
every step: node accounting balances, running jobs hold disjoint ranks,
states only move along the lifecycle DAG, and eventlogs stay monotone.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec, JobState

N_NODES = 6

#: Legal state transitions (RFC 21-style DAG).
LEGAL_NEXT = {
    JobState.SUBMITTED: {JobState.SCHEDULED, JobState.CANCELLED},
    JobState.SCHEDULED: {JobState.RUNNING},
    JobState.RUNNING: {JobState.COMPLETED, JobState.FAILED},
    JobState.COMPLETED: set(),
    JobState.CANCELLED: set(),
    JobState.FAILED: set(),
}


def _closure(state):
    """States reachable from ``state`` in one or more hops.

    Invariants only observe the machine *between* rules, so a job may
    traverse several lifecycle states inside one rule; reachability is
    the observable property.
    """
    out, frontier = set(), set(LEGAL_NEXT[state])
    while frontier:
        s = frontier.pop()
        if s not in out:
            out.add(s)
            frontier |= LEGAL_NEXT[s]
    return out


REACHABLE = {s: _closure(s) for s in LEGAL_NEXT}


class JobManagerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.inst = FluxInstance(platform="lassen", n_nodes=N_NODES, seed=99)
        self.last_state = {}

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------
    @rule(
        nnodes=st.integers(1, N_NODES),
        app=st.sampled_from(["laghos", "quicksilver"]),
        scale=st.floats(0.2, 2.0),
        fail=st.booleans(),
    )
    def submit(self, nnodes, app, scale, fail):
        params = {"work_scale": scale}
        if fail:
            params["fail_at_s"] = 2.0
        self.inst.submit(Jobspec(app=app, nnodes=nnodes, params=params))

    @rule(
        nnodes=st.integers(1, 3),
        dep_choice=st.integers(0, 10_000),
    )
    def submit_dependent(self, nnodes, dep_choice):
        jobs = list(self.inst.jobmanager.jobs)
        if not jobs:
            return
        dep = jobs[dep_choice % len(jobs)]
        self.inst.submit(
            Jobspec(app="laghos", nnodes=nnodes, params={"work_scale": 0.3}),
            depends_on=[dep],
        )

    @rule(choice=st.integers(0, 10_000))
    def cancel_a_queued_job(self, choice):
        queued = [
            j
            for j, r in self.inst.jobmanager.jobs.items()
            if r.state is JobState.SUBMITTED
        ]
        if queued:
            self.inst.jobmanager.cancel(queued[choice % len(queued)])

    @rule(dt=st.floats(0.5, 20.0))
    def advance(self, dt):
        self.inst.run_for(dt)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    @invariant()
    def node_accounting_balances(self):
        running = [
            r
            for r in self.inst.jobmanager.jobs.values()
            if r.state in (JobState.RUNNING, JobState.SCHEDULED)
        ]
        in_use = sum(len(r.ranks) for r in running)
        assert in_use + self.inst.scheduler.free_count == N_NODES

    @invariant()
    def running_jobs_hold_disjoint_ranks(self):
        seen = set()
        for r in self.inst.jobmanager.jobs.values():
            if r.state in (JobState.RUNNING, JobState.SCHEDULED):
                assert not (set(r.ranks) & seen)
                seen.update(r.ranks)

    @invariant()
    def states_follow_lifecycle(self):
        for jobid, record in self.inst.jobmanager.jobs.items():
            prev = self.last_state.get(jobid)
            if prev is not None and prev is not record.state:
                assert record.state in REACHABLE[prev], (
                    f"job {jobid}: illegal {prev} -> {record.state}"
                )
            self.last_state[jobid] = record.state

    @invariant()
    def terminal_jobs_have_end_times(self):
        for record in self.inst.jobmanager.jobs.values():
            if not record.state.active:
                assert record.t_end is not None

    @invariant()
    def eventlogs_are_monotone(self):
        for jobid in self.inst.jobmanager.jobs:
            log = self.inst.jobmanager.eventlog(jobid)
            times = [e["t"] for e in log]
            assert times == sorted(times)


TestJobManagerStateful = JobManagerMachine.TestCase
TestJobManagerStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
