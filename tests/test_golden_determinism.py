"""Byte-identity golden tests pinning the hot-path overhaul (ISSUE 3).

The fixtures in ``tests/golden/`` were produced by the pre-overhaul
engine (dataclass heap events, one sample timer per node, payload sizes
re-walked per hop). The optimized path must emit *byte-identical* CSV
telemetry and Prometheus metric exports for the same seeds — including
runs with a crash/restart fault whose restart lands exactly on the
sampling grid, and both aggregation strategies.
"""

from __future__ import annotations

import pytest

from tests.golden_scenarios import SCENARIOS, fixture_paths, run_scenario


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_byte_identity(name):
    spec = SCENARIOS[name]
    csv_blob, prom = run_scenario(spec["strategy"], spec["faults"])
    csv_path, prom_path = fixture_paths(name)
    with open(csv_path) as fh:
        assert csv_blob == fh.read(), f"CSV output diverged from golden {name}"
    with open(prom_path) as fh:
        assert prom == fh.read(), f"metrics export diverged from golden {name}"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_byte_identity_columnar(name):
    """The columnar store (ISSUE 8) rides the same byte contract.

    Deferred gauges, bulk charge replay and vectorised sampling must
    be observationally invisible: the same fixtures, byte for byte.
    """
    spec = SCENARIOS[name]
    csv_blob, prom = run_scenario(spec["strategy"], spec["faults"], columnar=True)
    csv_path, prom_path = fixture_paths(name)
    with open(csv_path) as fh:
        assert csv_blob == fh.read(), f"columnar CSV diverged from golden {name}"
    with open(prom_path) as fh:
        assert prom == fh.read(), f"columnar metrics diverged from golden {name}"
