"""The deterministic load harness: traces, digests, goldens, the CLI.

The contracts under test, in order of importance:

1. **Trace byte-identity** — same seed + profile → byte-identical JSONL
   trace (and different seeds diverge).
2. **Response byte-identity** — replaying one trace against two fresh
   identically-seeded worlds yields the same ``response_digest``, with
   zero errors (payloads are valid by construction).
3. **Golden pin** — the fixture under ``tests/golden/serving_smoke.json``
   (regenerate via ``python tests/golden_serving.py --write``).
4. **Non-perturbation** — a 500-client query storm fired mid-run leaves
   a simtest scenario's digest byte-identical (the ISSUE's acceptance
   criterion for the serving tier).
5. The bench artifact is schema-valid and the CLI gates on errors/p99.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.bench import validate_report
from repro.cli import main
from repro.serving import (
    DEFAULT_OP_MIX,
    ClusterRegistry,
    LoadProfile,
    PowerService,
    generate_trace,
    run_loadtest,
    trace_lines,
    trace_sha256,
)
from repro.simtest.harness import run_scenario
from repro.simtest.invariants import default_checkers
from repro.simtest.scenario import generate_scenario

sys.path.insert(0, os.path.dirname(__file__))
from golden_serving import GOLDEN_PATH, PROFILE, SEED, build_service, run_smoke  # noqa: E402

QUICK = LoadProfile(clients=12, requests_per_client=3, warmup_jobs=2,
                    advance_every=10)


# ---------------------------------------------------------------------------
# Trace generation
# ---------------------------------------------------------------------------


def test_same_seed_same_trace_bytes():
    a = generate_trace(3, QUICK)
    b = generate_trace(3, QUICK)
    assert trace_lines(a) == trace_lines(b)
    assert trace_sha256(a) == trace_sha256(b)


def test_different_seeds_diverge():
    assert trace_sha256(generate_trace(3, QUICK)) != \
        trace_sha256(generate_trace(4, QUICK))


def test_trace_is_open_loop_and_well_formed():
    trace = generate_trace(1, QUICK)
    assert len(trace) == QUICK.total_requests
    assert [r.seq for r in trace] == list(range(len(trace)))
    times = [r.t_arrival for r in trace]
    assert times == sorted(times)
    assert all(0 <= r.client < QUICK.clients for r in trace)
    ops = {r.op for r in trace}
    assert ops <= {name for name, _w in DEFAULT_OP_MIX}


def test_trace_targets_only_jobs_known_to_exist():
    """Valid-by-construction payloads: no request names a future jobid."""
    known = QUICK.warmup_jobs
    for req in generate_trace(5, QUICK):
        if req.op in ("get_job", "job_output"):
            jobid = int(req.path.split("/jobs/")[1].split("/")[0])
            assert 1 <= jobid <= known
        elif req.op == "submit_job":
            known += 1


def test_bad_profiles_are_rejected():
    with pytest.raises(ValueError, match=">= 1 client"):
        generate_trace(1, LoadProfile(clients=0))
    with pytest.raises(ValueError, match="sum to 1"):
        generate_trace(1, LoadProfile(op_mix=(("health", 0.5),)))


# ---------------------------------------------------------------------------
# Execution determinism
# ---------------------------------------------------------------------------


def test_fresh_worlds_same_seed_identical_responses():
    results = []
    for _ in range(2):
        service, driver = build_service()
        results.append(run_loadtest(11, QUICK, service, driver))
    first, second = results
    assert first.errors == 0, first.status_counts
    assert first.trace_sha256 == second.trace_sha256
    assert first.response_digest == second.response_digest
    assert first.status_counts == second.status_counts
    assert first.op_counts == second.op_counts


def test_different_seed_different_responses():
    service, driver = build_service()
    a = run_loadtest(11, QUICK, service, driver)
    service, driver = build_service()
    b = run_loadtest(12, QUICK, service, driver)
    assert a.response_digest != b.response_digest


def test_latency_percentiles_nearest_rank():
    service, driver = build_service()
    result = run_loadtest(11, QUICK, service, driver)
    # Surgery on the samples: known ladder, known answers.
    result.latencies_s = [i / 1000.0 for i in range(1, 101)]
    assert result.percentile_ms(50) == pytest.approx(50.0)
    assert result.percentile_ms(95) == pytest.approx(95.0)
    assert result.percentile_ms(99) == pytest.approx(99.0)
    assert result.percentile_ms(100) == pytest.approx(100.0)
    result.latencies_s = []
    assert result.p99_ms == 0.0


# ---------------------------------------------------------------------------
# Golden pin
# ---------------------------------------------------------------------------


def test_golden_smoke_fixture_matches():
    with open(GOLDEN_PATH) as fh:
        pinned = json.load(fh)
    fresh = run_smoke()
    assert fresh["trace_sha256"] == pinned["trace_sha256"], (
        "trace generation changed — if intentional, regenerate with "
        "`python tests/golden_serving.py --write`"
    )
    assert fresh["response_digest"] == pinned["response_digest"], (
        "service responses changed — if intentional, regenerate with "
        "`python tests/golden_serving.py --write`"
    )
    assert fresh == pinned


def test_golden_campaign_is_clean_and_covers_the_mix():
    with open(GOLDEN_PATH) as fh:
        pinned = json.load(fh)
    assert pinned["errors"] == 0
    assert pinned["n_requests"] == PROFILE.total_requests
    assert pinned["seed"] == SEED
    # Every op of the default mix actually occurs in the pinned trace.
    assert set(pinned["op_counts"]) == {name for name, _w in DEFAULT_OP_MIX}


# ---------------------------------------------------------------------------
# Non-perturbation: the storm-vs-digest pin
# ---------------------------------------------------------------------------

#: Read-only mix for storms fired into a foreign simulation: no submits,
#: so the storm cannot legitimately change anything.
READ_ONLY_MIX = (
    ("cluster_power", 0.30),
    ("list_jobs", 0.25),
    ("get_job", 0.15),
    ("nodes", 0.10),
    ("queue", 0.10),
    ("job_output", 0.05),
    ("health", 0.05),
)


def test_500_client_query_storm_leaves_simtest_digest_unchanged():
    """The ISSUE's acceptance pin: serving reads never perturb a run.

    The same generated scenario runs twice; the second run schedules a
    mid-run storm of 500 clients' requests straight into a PowerService
    over the live cluster. Every response must be non-5xx and the run
    digest must not move by a byte.
    """
    scenario = generate_scenario(2)
    assert scenario.serving is None  # keep the two runs' scenarios identical
    base = run_scenario(scenario, checkers=default_checkers())
    assert base.ok, base.summary()

    profile = LoadProfile(
        clients=500, requests_per_client=1, warmup_jobs=0,
        op_mix=READ_ONLY_MIX, advance_every=0,
    )
    storm_trace = generate_trace(9, profile, n_nodes=scenario.n_nodes)
    statuses = []

    def setup(cluster, sim):
        service = PowerService(
            ClusterRegistry.from_cluster(cluster, name="default"))

        def storm():
            for req in storm_trace:
                resp = service.handle(req.method, req.path, req.params,
                                      req.body)
                statuses.append(resp.status)

        sim.schedule_at(5.0, storm)

    stormy = run_scenario(generate_scenario(2), checkers=default_checkers(),
                          setup=setup)
    assert len(statuses) == 500
    assert all(s < 500 for s in statuses)
    assert stormy.digest == base.digest


# ---------------------------------------------------------------------------
# Bench artifact + CLI
# ---------------------------------------------------------------------------


def test_loadtest_report_is_schema_valid():
    service, driver = build_service()
    result = run_loadtest(11, QUICK, service, driver)
    report = result.to_report(name="unit", quick=True)
    validate_report(report.to_dict())
    metrics = {r.metric for r in report.results}
    assert metrics == {"requests_per_s", "latency_p50_ms", "latency_p95_ms",
                       "latency_p99_ms", "errors"}
    by_metric = {r.metric: r.value for r in report.results}
    assert by_metric["errors"] == 0.0
    assert by_metric["requests_per_s"] > 0


def test_cli_loadtest_writes_artifact_and_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.jsonl"
    code = main([
        "loadtest", "--clients", "10", "--requests-per-client", "2",
        "--warmup-jobs", "1", "--seed", "1", "--nodes", "8",
        "--name", "citest", "--out", str(tmp_path), "--quick",
        "--trace", str(trace_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace_sha256=" in out and "response_digest=" in out
    artifact = json.loads((tmp_path / "BENCH_citest.json").read_text())
    assert artifact["schema"] == "repro-bench/1"
    assert {r["metric"] for r in artifact["results"]} >= {"latency_p99_ms"}
    lines = trace_path.read_text().splitlines()
    assert len(lines) == 20
    assert json.loads(lines[0])["seq"] == 0


def test_cli_loadtest_same_seed_same_digest_lines(tmp_path, capsys):
    argv = ["loadtest", "--clients", "10", "--requests-per-client", "2",
            "--seed", "4", "--nodes", "8", "--out", str(tmp_path), "--quick"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out

    def digest_lines(text):
        return [l for l in text.splitlines()
                if l.startswith(("trace_sha256=", "response_digest="))]

    assert digest_lines(first) == digest_lines(second)


def test_cli_loadtest_p99_gate_fails(tmp_path, capsys):
    code = main([
        "loadtest", "--clients", "5", "--requests-per-client", "2",
        "--seed", "1", "--nodes", "8", "--out", str(tmp_path), "--quick",
        "--p99-max", "0.000001",
    ])
    assert code == 1
    assert "exceeds bound" in capsys.readouterr().err


def test_cli_serve_smoke(tmp_path, capsys):
    code = main(["serve", "--nodes", "8", "--seed", "1", "--port", "0",
                 "--smoke"])
    assert code == 0
    out = capsys.readouterr().out
    assert "6/6 checks passed" in out
