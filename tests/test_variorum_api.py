"""Unit tests for the Variorum-style vendor-neutral API."""

import pytest

from repro import variorum
from repro.hardware.platforms.generic import make_generic_node
from repro.hardware.platforms.lassen import make_lassen_node
from repro.hardware.platforms.tioga import make_tioga_node
from repro.variorum.backends import get_backend, register_backend
from repro.variorum.backends.base import Backend


# ---------------------------------------------------------------------------
# Telemetry JSON
# ---------------------------------------------------------------------------

def test_ibm_sample_has_node_socket_mem_gpu_keys():
    node = make_lassen_node("n0")
    s = variorum.get_node_power_json(node, 4.0)
    assert s["hostname"] == "n0"
    assert s["power_node_watts"] == pytest.approx(400.0)
    assert s["power_node_is_estimate"] is False
    for key in (
        "power_cpu_watts_socket_0",
        "power_cpu_watts_socket_1",
        "power_mem_watts_socket_0",
        "power_gpu_watts_gpu_0",
        "power_gpu_watts_gpu_3",
        "power_gpu_watts_socket_0",
        "power_gpu_watts_socket_1",
    ):
        assert key in s, key


def test_ibm_socket_gpu_aggregates_sum_per_gpu_values():
    node = make_lassen_node("n0")
    node.domains["gpu0"].set_demand(300.0)
    s = variorum.get_node_power_json(node, 0.0)
    per_gpu = sum(s[f"power_gpu_watts_gpu_{i}"] for i in range(4))
    per_socket = s["power_gpu_watts_socket_0"] + s["power_gpu_watts_socket_1"]
    assert per_socket == pytest.approx(per_gpu)


def test_amd_sample_exposes_oam_not_memory():
    node = make_tioga_node("t0")
    s = variorum.get_node_power_json(node, 1.0)
    assert s["power_node_is_estimate"] is True
    assert s["gcds_per_oam"] == 2
    assert "power_gpu_watts_oam_0" in s
    assert "power_gpu_watts_oam_3" in s
    assert not any(k.startswith("power_mem_watts") for k in s)


def test_amd_node_power_is_cpu_plus_oams():
    node = make_tioga_node("t0")
    s = variorum.get_node_power_json(node, 1.0)
    parts = s["power_cpu_watts_socket_0"] + sum(
        s[f"power_gpu_watts_oam_{i}"] for i in range(4)
    )
    assert s["power_node_watts"] == pytest.approx(parts)


def test_intel_sample_has_socket_and_mem():
    node = make_generic_node("g0")
    s = variorum.get_node_power_json(node, 0.0)
    assert "power_cpu_watts_socket_0" in s
    assert "power_mem_watts_socket_0" in s
    assert s["power_node_is_estimate"] is True


# ---------------------------------------------------------------------------
# Best-effort node capping
# ---------------------------------------------------------------------------

def test_ibm_node_cap_goes_through_opal():
    node = make_lassen_node("n0")
    res = variorum.cap_best_effort_node_power_limit(node, 1950.0)
    assert res["method"] == "opal_node_cap"
    assert res["derived_gpu_cap_watts"] == pytest.approx(253.0, abs=1.0)
    assert node.opal.node_cap_w == 1950.0


def test_intel_node_cap_splits_across_sockets():
    node = make_generic_node("g0")
    res = variorum.cap_best_effort_node_power_limit(node, 300.0)
    assert res["method"] == "rapl_uniform_split"
    assert res["best_effort"] is True
    caps = node.rapl.caps()
    assert caps["cpu0"] == caps["cpu1"]


def test_amd_node_cap_refused_on_tioga():
    node = make_tioga_node("t0")
    with pytest.raises(variorum.VariorumError):
        variorum.cap_best_effort_node_power_limit(node, 1000.0)


def test_nonpositive_limit_rejected():
    node = make_lassen_node("n0")
    with pytest.raises(variorum.VariorumError):
        variorum.cap_best_effort_node_power_limit(node, 0.0)


# ---------------------------------------------------------------------------
# GPU capping
# ---------------------------------------------------------------------------

def test_gpu_caps_on_ibm():
    node = make_lassen_node("n0")
    caps = variorum.cap_each_gpu_power_limit(node, 200.0)
    assert caps == [200.0] * 4


def test_gpu_caps_out_of_range_raise():
    node = make_lassen_node("n0")
    with pytest.raises(variorum.VariorumError):
        variorum.cap_each_gpu_power_limit(node, 50.0)


def test_gpu_caps_refused_on_tioga():
    node = make_tioga_node("t0")
    with pytest.raises(variorum.VariorumError):
        variorum.cap_each_gpu_power_limit(node, 200.0)


def test_gpu_caps_on_gpuless_node_raise():
    node = make_generic_node("g0", n_gpus=0)
    with pytest.raises(variorum.VariorumError):
        variorum.cap_each_gpu_power_limit(node, 200.0)


# ---------------------------------------------------------------------------
# Backend registry + sizing
# ---------------------------------------------------------------------------

def test_unknown_vendor_rejected():
    with pytest.raises(ValueError):
        get_backend("sparc")


def test_custom_backend_registration():
    class FakeBackend(Backend):
        vendor = "riscv"

    register_backend("riscv", FakeBackend())
    assert isinstance(get_backend("riscv"), FakeBackend)


def test_arm_backend_telemetry_only():
    backend = get_backend("arm")
    node = make_generic_node("g0")
    sample = backend.get_node_power_json(node, 0.0)
    assert "power_cpu_watts_socket_0" in sample
    with pytest.raises(variorum.VariorumError):
        backend.cap_best_effort_node_power_limit(node, 500.0)
    with pytest.raises(variorum.VariorumError):
        backend.cap_each_gpu_power_limit(node, 200.0)


def test_sample_bytes_estimate_in_plausible_range():
    """Section III-A sizes 100k samples at ~43.4 MiB (~455 B each)."""
    node = make_lassen_node("n0")
    s = variorum.get_node_power_json(node, 123.456)
    nbytes = variorum.sample_bytes_estimate(s)
    assert 200 <= nbytes <= 700
