"""Integration tests for FPP's node-level behaviour."""

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.manager.policies import FPPParams


def fpp_cluster(n_nodes=2, cap=2400.0, seed=14, params=None, **job):
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=n_nodes,
        seed=seed,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=cap, policy="fpp", static_node_cap_w=1950.0
        ),
        fpp_params=params,
    )
    return cluster


def test_fpp_probes_quicksilver_then_converges():
    cluster = fpp_cluster()
    cluster.submit(
        Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 40})
    )
    cluster.run_for(400.0)
    nm = cluster.manager.node_manager_for_rank(0)
    desc = nm.policy.describe()
    # Stable 20 s period: all controllers converged after the probe.
    assert all(c["converged"] for c in desc["controllers"])
    # Caps sit a probe below the derived ceiling.
    ceiling = nm.derive_gpu_share(1200.0)
    assert all(c <= ceiling for c in desc["caps_w"])
    cluster.run_until_complete(timeout_s=1_000_000)


def test_fpp_detects_quicksilver_period():
    cluster = fpp_cluster()
    cluster.submit(
        Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 40})
    )
    cluster.run_for(200.0)
    nm = cluster.manager.node_manager_for_rank(0)
    periods = [
        c["period_s"]
        for c in nm.policy.describe()["controllers"]
        if c["period_s"] is not None
    ]
    assert periods, "no period detected on any GPU"
    assert all(abs(p - 20.0) < 4.0 for p in periods)
    cluster.run_until_complete(timeout_s=1_000_000)


def test_fpp_controllers_are_per_gpu_independent():
    """Non-uniform per-GPU capping: converged state is per device."""
    cluster = fpp_cluster()
    cluster.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 40}))
    cluster.run_for(100.0)
    nm = cluster.manager.node_manager_for_rank(0)
    # Force one controller into a different state; others unaffected.
    nm.policy.controllers[2].converged = True
    nm.policy.controllers[2].t_prev = 99.0
    assert nm.policy.controllers[0].t_prev != 99.0
    cluster.run_until_complete(timeout_s=1_000_000)


def test_fpp_custom_params_respected():
    params = FPPParams(powercap_time_s=30.0, p_reduce_w=10.0)
    cluster = fpp_cluster(params=params)
    cluster.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 30}))
    cluster.run_for(100.0)
    nm = cluster.manager.node_manager_for_rank(0)
    assert nm.policy.params.p_reduce_w == 10.0
    # With a 30 s cadence, at least two control ticks happened by t=100
    # and the probe depth is 10 W.
    ceiling = nm.policy._ceiling()
    assert any(
        c >= ceiling - 20.0 for c in nm.policy.describe()["caps_w"]
    )
    cluster.run_until_complete(timeout_s=1_000_000)


def test_fpp_share_decrease_is_enforced_immediately():
    cluster = fpp_cluster(n_nodes=4, cap=9600.0)
    gemm = cluster.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 2}))
    cluster.run_for(60.0)
    nm = cluster.manager.node_manager_for_rank(0)
    caps_before = list(nm.policy.caps_w)
    # Second job arrives: shares drop from 3050 (peak) to 2400.
    cluster.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 30}))
    cluster.run_for(10.0)
    assert nm.node_limit_w == pytest.approx(2400.0)
    cluster.run_until_complete(timeout_s=1_000_000)


def test_fpp_gpuless_platform_does_not_crash():
    """FPP on a CPU-only generic node degenerates gracefully."""
    cluster = PowerManagedCluster(
        platform="generic",
        n_nodes=2,
        seed=14,
        trace=False,
        manager_config=ManagerConfig(global_cap_w=800.0, policy="fpp"),
    )
    job = cluster.submit(Jobspec(app="nqueens", nnodes=2, launcher="non-mpi"))
    cluster.run_until_complete(timeout_s=1_000_000)
    assert cluster.metrics(job.jobid).runtime_s > 0
