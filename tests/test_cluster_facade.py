"""Unit tests for the PowerManagedCluster facade."""

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster


def test_default_cluster_has_monitor_and_trace():
    c = PowerManagedCluster(platform="lassen", n_nodes=2, seed=1)
    assert c.monitor is not None
    assert c.trace is not None
    assert c.manager is None


def test_monitor_optional():
    c = PowerManagedCluster(platform="lassen", n_nodes=2, seed=1, with_monitor=False)
    assert c.monitor is None
    with pytest.raises(RuntimeError):
        c.telemetry(1)


def test_submit_run_metrics_telemetry():
    c = PowerManagedCluster(platform="lassen", n_nodes=2, seed=1)
    job = c.submit(Jobspec(app="laghos", nnodes=2))
    c.run_until_complete()
    c.run_for(4.0)
    m = c.metrics(job.jobid)
    assert m.app == "laghos"
    assert m.runtime_s == pytest.approx(12.55, rel=0.05)
    data = c.telemetry(job.jobid)
    assert data.complete


def test_manager_config_loads_manager():
    c = PowerManagedCluster(
        platform="lassen",
        n_nodes=2,
        seed=1,
        manager_config=ManagerConfig(global_cap_w=2000.0, policy="proportional"),
    )
    assert c.manager is not None
    job = c.submit(Jobspec(app="gemm", nnodes=2))
    c.run_for(30.0)
    # 2000 W over 2 nodes -> 1000 W shares pushed to node managers.
    assert c.manager.node_manager_for_rank(0).node_limit_w == pytest.approx(1000.0)
    c.run_until_complete(timeout_s=100000)


def test_all_metrics_and_makespan():
    c = PowerManagedCluster(platform="lassen", n_nodes=4, seed=1)
    c.submit(Jobspec(app="laghos", nnodes=2))
    c.submit(Jobspec(app="laghos", nnodes=2))
    c.run_until_complete()
    assert len(c.all_metrics()) == 2
    assert c.makespan_s() == pytest.approx(12.6, abs=1.5)


def test_submit_at_delays_submission():
    c = PowerManagedCluster(platform="lassen", n_nodes=1, seed=1)
    c.submit_at(Jobspec(app="laghos", nnodes=1), when=50.0)
    c.run_for(49.0)
    assert not c.instance.jobmanager.jobs
    c.run_for(2.0)
    assert len(c.instance.jobmanager.jobs) == 1
    c.run_until_complete()


def test_tioga_cluster_builds():
    c = PowerManagedCluster(platform="tioga", n_nodes=2, seed=1)
    job = c.submit(Jobspec(app="lammps", nnodes=2))
    c.run_until_complete(timeout_s=100000)
    assert c.metrics(job.jobid).runtime_s > 0
