"""Second edge-case coverage batch."""

import pytest

from repro.apps.base import PhaseProfile
from repro.apps.registry import get_profile
from repro.flux.jobspec import Jobspec, JobRecord, JobState
from repro.flux.message import FluxRPCError


# ---------------------------------------------------------------------------
# Jobspec / JobRecord serialisation
# ---------------------------------------------------------------------------

def test_job_record_to_kvs_roundtrip_fields():
    spec = Jobspec(app="gemm", nnodes=3, user="alice", launcher="mpi")
    rec = JobRecord(jobid=7, spec=spec, t_submit=1.5)
    rec.state = JobState.RUNNING
    rec.ranks = [0, 1, 2]
    rec.t_start = 2.0
    kvs = rec.to_kvs()
    assert kvs["jobid"] == 7
    assert kvs["app"] == "gemm"
    assert kvs["user"] == "alice"
    assert kvs["state"] == "running"
    assert kvs["ranks"] == [0, 1, 2]
    assert kvs["t_end"] is None


def test_jobspec_params_default_to_empty():
    assert Jobspec(app="gemm", nnodes=1).params == {}


# ---------------------------------------------------------------------------
# FluxRPCError metadata
# ---------------------------------------------------------------------------

def test_rpc_error_carries_topic_and_errnum():
    err = FluxRPCError("power-manager.set-node-limit", 22, "bad limit")
    assert err.topic == "power-manager.set-node-limit"
    assert err.errnum == 22
    assert "bad limit" in str(err)


# ---------------------------------------------------------------------------
# Phase profiles: per-platform overrides
# ---------------------------------------------------------------------------

def test_quicksilver_tioga_has_distinct_phase_profile():
    p = get_profile("quicksilver")
    lassen_ph = p.phase_profile("lassen")
    tioga_ph = p.phase_profile("tioga")
    assert lassen_ph.duty != tioga_ph.duty  # HIP variant behaves differently


def test_phase_profile_defaults_used_when_no_override():
    p = get_profile("laghos")
    assert p.phase_profile("lassen") is p.phases


def test_phase_mean_factor_sums_to_duty_weighted():
    ph = PhaseProfile(period_s=10.0, duty=0.25, gpu_depth=1.0, cpu_depth=0.5)
    g, c = ph.mean_factor()
    assert g == pytest.approx(0.25)
    assert c == pytest.approx(0.25 + 0.75 * 0.5)


# ---------------------------------------------------------------------------
# CLI parser wiring
# ---------------------------------------------------------------------------

def test_cli_parser_defaults():
    from repro.cli import build_parser

    args = build_parser().parse_args(["telemetry"])
    assert args.app == "quicksilver"
    assert args.nodes == 2
    assert args.platform == "lassen"

    args = build_parser().parse_args(["queue"])
    assert args.seed == 10

    args = build_parser().parse_args(["report", "--policy", "fpp"])
    assert args.policy == "fpp"


def test_cli_rejects_bad_platform():
    from repro.cli import build_parser

    with pytest.raises(SystemExit):
        build_parser().parse_args(["telemetry", "--platform", "summit"])


# ---------------------------------------------------------------------------
# Experiment result formatting (smoke)
# ---------------------------------------------------------------------------

def test_table4_rows_include_every_scenario_and_app():
    from repro.experiments.table4_policies import SCENARIOS, Table4Result

    # Formatting only needs the dataclass shape — use one tiny scenario.
    from repro.experiments.table4_policies import run_policy_scenario

    res = run_policy_scenario("unconstrained", seed=3)
    table = Table4Result(scenarios={"unconstrained": res})
    rows = table.table_rows()
    assert any("gemm" in r for r in rows)
    assert any("quicksilver" in r for r in rows)


def test_scalability_table_formatting():
    from repro.experiments.scalability import ScalabilityResult, ScaleCell

    res = ScalabilityResult(
        cells=[
            ScaleCell(32, "fanout", 1e-3, 70, 992, 0.37),
            ScaleCell(32, "tree", 9e-4, 12, 992, 0.37),
        ]
    )
    rows = res.table_rows()
    assert len(rows) == 3
    assert res.cell(32, "tree").root_messages == 12
    with pytest.raises(KeyError):
        res.cell(64, "tree")


def test_budget_sweep_table_formatting():
    from repro.experiments.budget_sweep import BudgetPoint, BudgetSweepResult

    res = BudgetSweepResult(
        points=[
            BudgetPoint(9600.0, 554.0, 554.0, 3925.0, 9.1, 9.1),
            BudgetPoint(None, 550.0, 550.0, 4532.0, 11.1, 11.1),
        ]
    )
    rows = res.table_rows()
    assert "unc." in rows[-1]
    assert "9.6" in rows[1]


# ---------------------------------------------------------------------------
# Telemetry client misc
# ---------------------------------------------------------------------------

def test_job_power_data_mean_empty_raises():
    from repro.monitor.client import JobPowerData

    with pytest.raises(ValueError):
        JobPowerData(jobid=1).mean("node_w")


def test_component_powers_handles_missing_keys():
    from repro.monitor.client import component_powers

    parts = component_powers({"power_node_watts": 500.0})
    assert parts == {"cpu_w": 0.0, "mem_w": 0.0, "gpu_w": 0.0, "node_w": 500.0}
