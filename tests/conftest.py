"""Shared fixtures and helpers for the test suite.

Set ``REPRO_TEST_SHUFFLE=<seed>`` to run the collected tests in a
seeded random order — the order-independence check ``tools/verify.sh``
runs. Any failure that appears only under a shuffle is a test leaking
module-level state (see docs/testing.md).
"""

from __future__ import annotations

import os
import random

import pytest

from repro.flux.instance import FluxInstance
from repro.simkernel import Simulator


def pytest_collection_modifyitems(config, items):
    seed = os.environ.get("REPRO_TEST_SHUFFLE")
    if not seed:
        return
    rng = random.Random(int(seed))
    rng.shuffle(items)
    config.pluginmanager.get_plugin("terminalreporter").write_line(
        f"REPRO_TEST_SHUFFLE={seed}: running {len(items)} tests in shuffled order"
    )


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def lassen4() -> FluxInstance:
    """A small 4-node Lassen instance (no monitor/manager loaded)."""
    return FluxInstance(platform="lassen", n_nodes=4, seed=123)


@pytest.fixture
def tioga2() -> FluxInstance:
    return FluxInstance(platform="tioga", n_nodes=2, seed=123)


def drain(sim: Simulator, until: float = None) -> float:
    """Run a simulator to completion (or a horizon)."""
    return sim.run(until=until)
