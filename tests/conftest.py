"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.flux.instance import FluxInstance
from repro.simkernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def lassen4() -> FluxInstance:
    """A small 4-node Lassen instance (no monitor/manager loaded)."""
    return FluxInstance(platform="lassen", n_nodes=4, seed=123)


@pytest.fixture
def tioga2() -> FluxInstance:
    return FluxInstance(platform="tioga", n_nodes=2, seed=123)


def drain(sim: Simulator, until: float = None) -> float:
    """Run a simulator to completion (or a horizon)."""
    return sim.run(until=until)
