"""Integration tests for the policy zoo and its head-to-head campaign.

Pins the four claims docs/policies.md makes about the zoo:

* the head-to-head campaign covers exactly the policy registry;
* quick-mode output at the documented seed is byte-identical to the
  committed fixture ``tests/golden/policy_head_to_head.csv`` (the same
  fixture ``tools/verify.sh``'s ``policies`` stage diffs);
* a deliberately mis-tuned high-gain PI controller stays inside the
  device cap box *only because* the safety wrapper clamps it — the
  pinned wrapper regression;
* the checkpoint-aware policy actually detects checkpoint windows on
  the HACC proxy (the behaviour its table row depends on).
"""

from __future__ import annotations

import os

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.experiments.table4_policies import (
    HEAD_TO_HEAD_POLICIES,
    run_policy_head_to_head,
)
from repro.manager.module import attach_manager
from repro.manager.policies import POLICY_FACTORIES, PolicySafetyWrapper
from repro.manager.policies.pi import PIParams, PIPolicy

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "policy_head_to_head.csv")


def test_head_to_head_covers_the_whole_registry():
    assert set(HEAD_TO_HEAD_POLICIES) == set(POLICY_FACTORIES)


def test_quick_head_to_head_matches_golden_fixture():
    result = run_policy_head_to_head(seed=1, quick=True)
    with open(GOLDEN) as fh:
        assert result.to_csv() == fh.read(), (
            "head-to-head output diverged from tests/golden/"
            "policy_head_to_head.csv — if the change is intentional, "
            "regenerate with: python -m repro.cli policies --compare "
            "--seed 1 -o tests/golden/policy_head_to_head.csv "
            "and refresh the table in docs/policies.md"
        )


def test_head_to_head_rejects_unknown_policy():
    with pytest.raises(ValueError):
        run_policy_head_to_head(seed=1, quick=True, policies=("nope",))


def _run_wrapped_misconfigured_pi():
    """An absurdly hot PI (kp=50, ki=5) behind the wrapper, no damper."""
    factory = lambda: PolicySafetyWrapper(
        PIPolicy(PIParams(kp=50.0, ki=5.0)), damper=0.0, slowdown=1.5
    )
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=7,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=4800.0, policy="static", static_node_cap_w=1950.0
        ),
    )
    cluster.manager.detach()
    cluster.manager = attach_manager(
        cluster.instance,
        ManagerConfig(global_cap_w=4800.0, policy="proportional",
                      static_node_cap_w=1950.0),
        policy_factory=factory,
    )
    cluster.submit(Jobspec(app="gemm", nnodes=4, params={"work_scale": 0.5}))
    cluster.run_until_complete(timeout_s=200_000)
    return cluster


def test_wrapper_contains_misconfigured_high_gain_pi():
    cluster = _run_wrapped_misconfigured_pi()
    tried_to_escape = 0
    for nm in cluster.manager.node_managers:
        lo, hi = nm.gpu_cap_range
        wrapper = nm.policy
        desc = wrapper.describe()
        assert desc["policy"] == "safe-pi"
        # Every cap the node actually installed stayed inside the box.
        for cap in nm._last_gpu_caps:
            if cap is not None:
                assert lo <= cap <= hi
        # And the wrapper demonstrably had to intervene: the raw
        # controller output was clamped at the budget ceiling / box —
        # remove the wrapper and these writes would have escaped.
        clamps = desc["clamps"]
        tried_to_escape += sum(clamps.values())
    assert tried_to_escape > 0, (
        "mis-tuned PI never hit a guard — the regression no longer "
        "exercises the wrapper"
    )


def test_checkpoint_policy_sees_hacc_windows():
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=11,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=4800.0, policy="checkpoint", static_node_cap_w=1950.0
        ),
    )
    cluster.submit(Jobspec(app="hacc", nnodes=4, params={"work_scale": 1.5}))
    cluster.run_until_complete(timeout_s=200_000)
    windows = cluster.telemetry_hub.metrics.counter(
        "policy_checkpoint_windows_total"
    ).value
    assert windows > 0, "checkpoint policy never detected a HACC window"


def test_head_to_head_is_byte_stable_across_runs():
    a = run_policy_head_to_head(seed=2, quick=True, policies=("pi", "ecoshift"))
    b = run_policy_head_to_head(seed=2, quick=True, policies=("pi", "ecoshift"))
    assert a.to_csv() == b.to_csv()
