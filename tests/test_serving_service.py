"""Unit tests for the serving-tier API core (``PowerService``).

Every endpoint is exercised through the single transport-free
``handle()`` entry point: success shapes, the structured-4xx error
contract (never a traceback, never a 500 on bad input), pagination
bounds, the concise/detailed response formats, the batch envelope, and
the cardinal serving invariant — request handling never steps the
simulator (pinned by ``events_processed``).
"""

from __future__ import annotations

import pytest

from repro.cluster import PowerManagedCluster
from repro.federation import ClusterSpec, FederatedSite, SiteConfig
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig
from repro.serving import (
    CONCISE_JOB_FIELDS,
    ClusterRegistry,
    DETAILED_JOB_FIELDS,
    PowerService,
    ServingClient,
    ServingError,
    SimDriver,
)
from repro.serving.service import MAX_BATCH_OPS


@pytest.fixture
def world():
    """A small managed cluster behind a registry, plus its driver."""
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=11,
        manager_config=ManagerConfig(
            global_cap_w=10_000.0, policy="proportional",
            static_node_cap_w=1950.0,
        ),
    )
    registry = ClusterRegistry.from_cluster(
        cluster, name="default", aliases=("prod",)
    )
    return PowerService(registry), SimDriver(registry), cluster


def _submit(service, nnodes=2, app="gemm"):
    resp = service.handle(
        "POST", "/v1/clusters/default/jobs",
        body={"app": app, "nnodes": nnodes, "params": {"work_scale": 0.5}},
    )
    assert resp.status == 201, resp.body
    return resp.body["jobid"]


# ---------------------------------------------------------------------------
# Reads
# ---------------------------------------------------------------------------


def test_health_reports_engine_state(world):
    service, _driver, cluster = world
    resp = service.handle("GET", "/v1/health")
    assert resp.status == 200
    assert resp.body["status"] == "ok"
    assert resp.body["t"] == cluster.sim.now
    assert resp.body["clusters"] == ["default"]


def test_clusters_listing_carries_aliases(world):
    service, _driver, _cluster = world
    resp = service.handle("GET", "/v1/clusters")
    assert resp.status == 200
    (entry,) = resp.body["clusters"]
    assert entry["name"] == "default"
    assert entry["platform"] == "lassen"
    assert entry["n_nodes"] == 8
    assert entry["aliases"] == ["prod"]


def test_alias_resolves_to_the_same_cluster(world):
    service, _driver, _cluster = world
    via_name = service.handle("GET", "/v1/clusters/default")
    via_alias = service.handle("GET", "/v1/clusters/prod")
    assert via_alias.status == 200
    assert via_alias.body == via_name.body


def test_cluster_power_summary_shape(world):
    service, driver, _cluster = world
    _submit(service)
    driver.advance(6.0)
    resp = service.handle("GET", "/v1/clusters/default/power")
    assert resp.status == 200
    body = resp.body
    assert body["cluster"] == "default"
    assert body["n_nodes"] == 8
    assert body["total_power_w"] > 0
    assert body["budget_w"] == 10_000.0
    assert body["policy"] == "proportional"
    assert body["active_jobs"] == [1]


def test_nodes_pagination_and_formats(world):
    service, _driver, _cluster = world
    concise = service.handle("GET", "/v1/clusters/default/nodes",
                             {"limit": 3, "offset": 6})
    assert concise.status == 200
    assert concise.body["total"] == 8
    assert [n["rank"] for n in concise.body["nodes"]] == [6, 7]
    assert concise.body["next_offset"] is None
    detailed = service.handle(
        "GET", "/v1/clusters/default/nodes",
        {"limit": 3, "response_format": "detailed"},
    )
    assert detailed.body["next_offset"] == 3
    for node in detailed.body["nodes"]:
        assert set(concise.body["nodes"][0]) < set(node)


def test_reads_never_step_the_simulator(world):
    service, driver, cluster = world
    _submit(service)
    driver.advance(4.0)
    before = (cluster.sim.now, cluster.sim.events_processed)
    for path, params in [
        ("/v1/health", None),
        ("/v1/clusters", None),
        ("/v1/clusters/default", None),
        ("/v1/clusters/default/power", None),
        ("/v1/clusters/default/nodes", {"response_format": "detailed"}),
        ("/v1/clusters/default/queue", None),
        ("/v1/clusters/default/jobs", {"response_format": "detailed"}),
        ("/v1/clusters/default/jobs/1", None),
        ("/v1/clusters/default/jobs/1/output", None),
    ]:
        assert service.handle("GET", path, params).status == 200
    assert (cluster.sim.now, cluster.sim.events_processed) == before


# ---------------------------------------------------------------------------
# Job lifecycle through the API
# ---------------------------------------------------------------------------


def test_submit_get_run_output_roundtrip(world):
    service, driver, _cluster = world
    jobid = _submit(service)
    got = service.handle("GET", f"/v1/clusters/default/jobs/{jobid}",
                         {"response_format": "detailed"})
    assert got.status == 200
    assert got.body["app"] == "gemm"
    assert got.body["nnodes"] == 2
    client = ServingClient(service, driver)
    output = client.run_and_wait("quicksilver", nnodes=1)
    assert output["finished"] is True
    assert output["state"] == "completed"
    assert output["avg_node_power_w"] > 0
    assert output["runtime_s"] > 0


def test_queue_buckets_track_states(world):
    service, driver, _cluster = world
    # 8 nodes: one 8-node job runs, the next queues behind it.
    first = _submit(service, nnodes=8)
    second = _submit(service, nnodes=8)
    driver.advance(4.0)
    resp = service.handle("GET", "/v1/clusters/default/queue")
    assert resp.status == 200
    assert first in resp.body["running"]
    assert second in resp.body["queued"]
    assert resp.body["free_nodes"] == 0


def test_cancel_only_from_submitted(world):
    service, driver, _cluster = world
    running = _submit(service, nnodes=8)
    queued = _submit(service, nnodes=8)
    driver.advance(4.0)
    ok = service.handle("DELETE", f"/v1/clusters/default/jobs/{queued}")
    assert ok.status == 200
    assert ok.body["state"] == "cancelled"
    conflict = service.handle("DELETE", f"/v1/clusters/default/jobs/{running}")
    assert conflict.status == 409
    assert conflict.body["error"]["code"] == "invalid_state"
    missing = service.handle("DELETE", "/v1/clusters/default/jobs/999")
    assert missing.status == 404
    assert missing.body["error"]["code"] == "unknown_job"


def test_list_jobs_state_filter(world):
    service, driver, _cluster = world
    _submit(service, nnodes=8)
    _submit(service, nnodes=8)
    driver.advance(4.0)
    running = service.handle("GET", "/v1/clusters/default/jobs",
                             {"state": "running"})
    assert [j["jobid"] for j in running.body["jobs"]] == [1]
    queued = service.handle("GET", "/v1/clusters/default/jobs",
                            {"state": "submitted"})
    assert [j["jobid"] for j in queued.body["jobs"]] == [2]
    bad = service.handle("GET", "/v1/clusters/default/jobs",
                         {"state": "zombie"})
    assert bad.status == 400


# ---------------------------------------------------------------------------
# Validation: structured 4xx, never a traceback
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "body,code",
    [
        (None, "bad_request"),
        ({"app": "not-an-app", "nnodes": 1}, "unknown_app"),
        ({"app": "gemm"}, "bad_request"),               # missing nnodes
        ({"app": "gemm", "nnodes": 0}, "bad_request"),
        ({"app": "gemm", "nnodes": 9}, "bad_request"),  # > cluster size
        ({"app": "gemm", "nnodes": True}, "bad_request"),
        ({"app": "gemm", "nnodes": "2"}, "bad_request"),
        ({"app": "gemm", "nnodes": 1, "params": "fast"}, "bad_request"),
        ({"app": "gemm", "nnodes": 1, "name": 7}, "bad_request"),
        ({"app": "gemm", "nnodes": 1, "user": 7}, "bad_request"),
    ],
)
def test_submit_validation(world, body, code):
    service, _driver, _cluster = world
    resp = service.handle("POST", "/v1/clusters/default/jobs", body=body)
    assert resp.status == 400
    assert resp.body["error"]["code"] == code


@pytest.mark.parametrize(
    "method,path,params,status,code",
    [
        ("GET", "/v1/clusters/nowhere", None, 404, "unknown_cluster"),
        ("GET", "/v1/clusters/default/jobs/abc", None, 400, "bad_request"),
        ("GET", "/v1/clusters/default/jobs/42", None, 404, "unknown_job"),
        ("GET", "/v1/clusters/default/jobs/42/output", None, 404, "unknown_job"),
        ("GET", "/v1/nope", None, 404, "not_found"),
        ("GET", "/v2/health", None, 404, "not_found"),
        ("PUT", "/v1/clusters/default", None, 405, "method_not_allowed"),
        ("DELETE", "/v1/clusters/default/jobs", None, 405, "method_not_allowed"),
        ("GET", "/v1/clusters/default/jobs", {"limit": 0}, 400, "bad_request"),
        ("GET", "/v1/clusters/default/jobs", {"limit": 99999}, 400, "bad_request"),
        ("GET", "/v1/clusters/default/jobs", {"offset": -1}, 400, "bad_request"),
        ("GET", "/v1/clusters/default/jobs", {"limit": "ten"}, 400, "bad_request"),
        ("GET", "/v1/clusters/default/jobs", {"response_format": "xml"},
         400, "bad_request"),
        ("GET", "/v1/site/power", None, 404, "no_site"),
    ],
)
def test_structured_errors(world, method, path, params, status, code):
    service, _driver, _cluster = world
    resp = service.handle(method, path, params)
    assert resp.status == status
    assert resp.body["error"]["code"] == code
    assert resp.body["error"]["message"]


def test_concise_and_detailed_field_sets(world):
    service, driver, _cluster = world
    jobid = _submit(service)
    driver.advance(4.0)
    concise = service.handle("GET", f"/v1/clusters/default/jobs/{jobid}")
    detailed = service.handle("GET", f"/v1/clusters/default/jobs/{jobid}",
                              {"response_format": "detailed"})
    assert set(concise.body) == set(CONCISE_JOB_FIELDS)
    assert set(detailed.body) == set(DETAILED_JOB_FIELDS)
    # A running managed job exposes its share split.
    assert detailed.body["job_limit_w"] > 0
    assert detailed.body["node_limit_w"] * len(detailed.body["ranks"]) == \
        pytest.approx(detailed.body["job_limit_w"])


# ---------------------------------------------------------------------------
# Batch
# ---------------------------------------------------------------------------


def test_batch_mixed_ops_report_per_op_status(world):
    service, _driver, _cluster = world
    resp = service.handle("POST", "/v1/batch", body={"ops": [
        {"method": "GET", "path": "/v1/health"},
        {"method": "GET", "path": "/v1/clusters/default/jobs/999"},
        {"path": "/v1/clusters/default/queue"},  # method defaults to GET
    ]})
    assert resp.status == 200
    statuses = [r["status"] for r in resp.body["results"]]
    assert statuses == [200, 404, 200]
    assert [r["index"] for r in resp.body["results"]] == [0, 1, 2]


@pytest.mark.parametrize(
    "body",
    [
        None,
        {},
        {"ops": []},
        {"ops": "all"},
        {"ops": [{"method": "GET"}]},  # per-op error, whole call still 200
        {"ops": [{"method": "POST", "path": "/v1/batch", "body": {"ops": []}}]},
        {"ops": [{"path": "x"}] * (MAX_BATCH_OPS + 1)},
    ],
)
def test_batch_envelope_validation(world, body):
    service, _driver, _cluster = world
    resp = service.handle("POST", "/v1/batch", body=body)
    if body in (None, {}, {"ops": []}, {"ops": "all"}) \
            or (isinstance(body.get("ops"), list) and len(body["ops"]) > MAX_BATCH_OPS):
        assert resp.status == 400
    else:
        # Malformed / nested ops fail individually, not the envelope.
        assert resp.status == 200
        assert all(r["status"] == 400 for r in resp.body["results"])


# ---------------------------------------------------------------------------
# Federated registry: /v1/site/power
# ---------------------------------------------------------------------------


def test_site_power_over_a_federated_registry():
    site = FederatedSite(
        SiteConfig(
            site_budget_w=12_000.0,
            clusters=(
                ClusterSpec(name="alpha", platform="lassen", n_nodes=2,
                            static_node_cap_w=1950.0),
                ClusterSpec(name="beta", platform="tioga", n_nodes=2),
            ),
        ),
        seed=3,
    )
    registry = ClusterRegistry.from_site(site)
    service = PowerService(registry)
    site.submit("alpha", Jobspec(app="gemm", nnodes=1))
    site.run_for(6.0)
    resp = service.handle("GET", "/v1/site/power")
    assert resp.status == 200
    assert resp.body["site_budget_w"] == 12_000.0
    assert set(resp.body["clusters"]) == {"alpha", "beta"}
    assert resp.body["assigned_total_w"] == pytest.approx(12_000.0)
    for entry in resp.body["clusters"].values():
        assert entry["total_power_w"] > 0
        assert entry["down"] is False
    # Per-cluster endpoints address the site's clusters by name.
    alpha = service.handle("GET", "/v1/clusters/alpha/power")
    assert alpha.status == 200 and alpha.body["cluster"] == "alpha"


def test_registry_rejects_mixed_simulators():
    a = PowerManagedCluster(platform="lassen", n_nodes=2, seed=1)
    b = PowerManagedCluster(platform="lassen", n_nodes=2, seed=2)
    registry = ClusterRegistry.from_cluster(a, name="a")
    from repro.serving.registry import ClusterBackend

    with pytest.raises(ValueError, match="share one simulator"):
        registry.register(ClusterBackend("b", b))
    with pytest.raises(ValueError, match="already registered"):
        registry.register(ClusterBackend("a", a))


def test_serving_client_raises_structured_errors(world):
    service, driver, _cluster = world
    client = ServingClient(service, driver)
    with pytest.raises(ServingError) as err:
        client.get_job(123)
    assert err.value.status == 404
    assert err.value.code == "unknown_job"


def test_metrics_count_requests_and_errors(world):
    service, _driver, cluster = world
    service.handle("GET", "/v1/health")
    service.handle("GET", "/v1/clusters/nowhere")
    metrics = cluster.telemetry_hub.metrics
    ok = [s for s in metrics.series_for("serving_requests_total")
          if s.labels.get("op") == "health"]
    assert ok and ok[0].value >= 1
    errs = [s for s in metrics.series_for("serving_errors_total")
            if s.labels.get("code") == "unknown_cluster"]
    assert errs and errs[0].value >= 1
