"""Unit tests for the run-to-run variability model."""

import numpy as np
import pytest

from repro.hardware.noise import JitterModel


def test_disabled_model_returns_exactly_one():
    model = JitterModel(rng=None)
    assert model.runtime_factor("lassen", "laghos", 1) == 1.0


def test_elevated_sigma_at_low_node_counts():
    model = JitterModel()
    assert model.sigma("lassen", "laghos", 1) > model.sigma("lassen", "laghos", 4)
    assert model.sigma("lassen", "quicksilver", 2) > model.sigma(
        "lassen", "quicksilver", 8
    )


def test_only_flagged_apps_get_elevated_sigma():
    model = JitterModel()
    assert model.sigma("lassen", "lammps", 1) == model.sigma("lassen", "lammps", 8)


def test_tioga_quieter_than_lassen():
    model = JitterModel()
    assert model.sigma("tioga", "lammps", 4) < model.sigma("lassen", "lammps", 4)


def test_extra_sigma_override():
    model = JitterModel(extra_sigma={("lassen", "lammps"): 0.5})
    assert model.sigma("lassen", "lammps", 8) == 0.5


def test_factors_have_median_about_one():
    model = JitterModel(rng=np.random.default_rng(1))
    factors = [model.runtime_factor("lassen", "laghos", 1) for _ in range(2000)]
    assert np.median(factors) == pytest.approx(1.0, abs=0.02)
    assert all(f > 0 for f in factors)


def test_low_node_spread_exceeds_twenty_percent():
    """The Fig 4 premise: >20% spread for laghos/qs at 1-2 nodes."""
    model = JitterModel(rng=np.random.default_rng(2))
    factors = [model.runtime_factor("lassen", "quicksilver", 2) for _ in range(200)]
    spread = (max(factors) - min(factors)) / np.median(factors) * 100
    assert spread > 20.0


def test_high_node_spread_is_small():
    model = JitterModel(rng=np.random.default_rng(2))
    factors = [model.runtime_factor("lassen", "quicksilver", 16) for _ in range(200)]
    spread = (max(factors) - min(factors)) / np.median(factors) * 100
    assert spread < 5.0
