"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_apps_command_lists_profiles(capsys):
    assert main(["apps"]) == 0
    out = capsys.readouterr().out
    for app in ("lammps", "gemm", "quicksilver", "laghos", "nqueens"):
        assert app in out


def test_telemetry_command_prints_csv(capsys):
    rc = main(
        ["telemetry", "--app", "laghos", "--nodes", "1", "--cluster-nodes", "1",
         "--work-scale", "1.0"]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert captured.out.startswith("jobid,hostname,timestamp")
    assert "complete" in captured.out
    assert "# job 1:" in captured.err


def test_telemetry_command_writes_file(tmp_path, capsys):
    out_file = tmp_path / "power.csv"
    rc = main(
        ["telemetry", "--app", "laghos", "--nodes", "1", "--cluster-nodes", "1",
         "--work-scale", "1.0", "-o", str(out_file)]
    )
    assert rc == 0
    assert out_file.read_text().startswith("jobid,hostname")


def test_telemetry_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["telemetry", "--app", "hpl"])


def test_observe_command_text(capsys):
    rc = main(["observe", "--cluster-nodes", "2", "--jobs", "1",
               "--policy", "proportional"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "monitor_samples_total" in out
    assert "overhead accounting" in out
    assert "paper reference" in out


def test_observe_command_prometheus(capsys):
    rc = main(["observe", "--cluster-nodes", "2", "--jobs", "1",
               "--policy", "proportional", "--format", "prom"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "# TYPE monitor_samples_total counter" in out


def test_observe_command_json_and_chrome(tmp_path, capsys):
    import json

    metrics_file = tmp_path / "metrics.json"
    chrome_file = tmp_path / "trace.json"
    rc = main(["observe", "--cluster-nodes", "2", "--jobs", "1",
               "--format", "json", "-o", str(metrics_file),
               "--chrome", str(chrome_file), "--trace", "5"])
    assert rc == 0
    doc = json.loads(metrics_file.read_text())
    assert "monitor_samples_total" in doc["metrics"]
    trace = json.loads(chrome_file.read_text())
    assert trace["traceEvents"]


def test_static_caps_command(capsys):
    assert main(["static-caps", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "3050" in out and "1200" in out
    assert "100" in out  # the conservative derived GPU cap


def test_queue_command(capsys):
    assert main(["queue", "--seed", "10"]) == 0
    out = capsys.readouterr().out
    assert "proportional" in out and "fpp" in out
    assert "makespans equal" in out


def test_chaos_command_smoke(capsys):
    """End-to-end chaos campaign: exit 0 iff degradation chain holds."""
    assert main(["chaos", "--seed", "1", "--nodes", "4"]) == 0
    out = capsys.readouterr().out
    assert "partial" in out
