"""Edge-case coverage across modules."""

import pytest

from repro import variorum
from repro.flux.broker import Broker
from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec
from repro.flux.module import Module
from repro.flux.overlay import TBON
from repro.hardware.platforms.generic import make_generic_node
from repro.monitor.overhead import sampling_overhead_fraction
from repro.simkernel import Simulator, Timeout


# ---------------------------------------------------------------------------
# Variorum: Intel best-effort with GPUs present
# ---------------------------------------------------------------------------

def test_intel_best_effort_splits_cpu_and_gpu_budget():
    node = make_generic_node("g0", n_gpus=2)
    res = variorum.cap_best_effort_node_power_limit(node, 600.0)
    assert res["best_effort"] is True
    assert "gpu_cap_watts" in res
    assert node.cpu_domains[0].get_cap("rapl") is not None
    assert node.gpu_domains[0].get_cap("nvml") is not None


def test_intel_best_effort_clamps_socket_caps():
    node = make_generic_node("g0")
    res = variorum.cap_best_effort_node_power_limit(node, 5000.0)
    # Huge budget: sockets clamp to their max cap, not beyond.
    assert res["socket_cap_watts"] <= node.cpu_domains[0].spec.max_cap_w


# ---------------------------------------------------------------------------
# Monitor overhead model
# ---------------------------------------------------------------------------

def test_overhead_unknown_platform_uses_generic_cost():
    assert sampling_overhead_fraction("cray-1", 2.0) == sampling_overhead_fraction(
        "generic", 2.0
    )


def test_overhead_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        sampling_overhead_fraction("lassen", 0.0)


def test_overhead_capped_at_half():
    assert sampling_overhead_fraction("lassen", 1e-6) == 0.5


# ---------------------------------------------------------------------------
# Instance error paths
# ---------------------------------------------------------------------------

def test_run_until_complete_times_out():
    inst = FluxInstance(platform="lassen", n_nodes=1, seed=1)
    inst.submit(Jobspec(app="gemm", nnodes=1, params={"work_scale": 100}))
    with pytest.raises(RuntimeError):
        inst.run_until_complete(timeout_s=5.0)


def test_run_until_complete_detects_drained_heap():
    inst = FluxInstance(platform="lassen", n_nodes=1, seed=1)
    rec = inst.submit(Jobspec(app="laghos", nnodes=1))
    # Kill the app process: the job never completes, the heap drains.
    inst.run_for(1.0)
    inst.app_runs[rec.jobid].process.kill()
    with pytest.raises(RuntimeError):
        inst.run_until_complete(timeout_s=1000.0)


def test_instance_rejects_mismatched_event_budget():
    inst = FluxInstance(platform="lassen", n_nodes=1, seed=1)
    inst.submit(Jobspec(app="laghos", nnodes=1))
    with pytest.raises(RuntimeError):
        inst.run_until_complete(max_events=3)


# ---------------------------------------------------------------------------
# AppRun starvation branch
# ---------------------------------------------------------------------------

def test_starved_app_waits_and_resumes():
    """A fully-starved job makes no progress but recovers when caps lift."""
    from repro.apps.base import AppProfile, PlatformDemand
    from repro.apps.registry import register_profile, unregister_profile
    from repro.apps.run import AppRun
    from repro.flux.jobspec import JobRecord
    from repro.hardware.platforms.lassen import make_lassen_node

    # A pathological profile: 100% GPU-sensitive with a floor-less
    # response, so a deep cap stalls it almost completely.
    register_profile(
        "stallable",
        lambda: AppProfile(
            name="stallable",
            scaling="weak",
            launcher="mpi",
            base_runtime_s=50.0,
            ref_nodes=1,
            gpu_frac=1.0,
            cpu_frac=0.0,
            beta_gpu=1.0,
            gamma_gpu=1.0,
            demand={"lassen": PlatformDemand(0.0, 0.0, 250.0)},
        ),
    )
    from repro.apps.registry import get_profile

    try:
        sim = Simulator()
        node = make_lassen_node("n0")
        node.nvml.set_all(100.0)  # dyn grant 50/250 -> response 0.2 floor-ish
        record = JobRecord(jobid=1, spec=Jobspec(app="stallable", nnodes=1))
        run = AppRun(sim, record, [node], get_profile("stallable"))
        sim.run(until=100.0)
        assert not run.finished
        node.nvml.clear_all()
        sim.run(until=400.0)
        assert run.finished
    finally:
        unregister_profile("stallable")


# ---------------------------------------------------------------------------
# Module helpers
# ---------------------------------------------------------------------------

def test_module_spawned_processes_killed_on_unload():
    sim = Simulator()
    overlay = TBON(size=1)
    broker = Broker(sim, 0, overlay)
    ticks = []

    class Spawner(Module):
        name = "spawner"

        def on_load(self):
            self.spawn(self._loop())

        def _loop(self):
            while True:
                yield Timeout(1.0)
                ticks.append(sim.now)

    broker.load_module(Spawner(broker))
    sim.run(until=3.0)
    assert len(ticks) == 3
    broker.unload_module("spawner")
    sim.run(until=10.0)
    assert len(ticks) == 3  # loop killed


def test_event_published_from_rank0_reaches_itself():
    sim = Simulator()
    overlay = TBON(size=2)
    registry = {}
    b0 = Broker(sim, 0, overlay, registry=registry)
    Broker(sim, 1, overlay, registry=registry)
    got = []
    b0.subscribe("self.", lambda m: got.append(m.seq))
    b0.publish("self.test")
    sim.run()
    assert got == [1]


def test_unregister_service_is_idempotent():
    sim = Simulator()
    broker = Broker(sim, 0, TBON(size=1))
    broker.register_service("x", lambda b, m: None)
    broker.unregister_service("x")
    broker.unregister_service("x")
    assert not broker.has_service("x")
