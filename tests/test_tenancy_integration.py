"""End-to-end tenancy: weighted shares, decay, admission, determinism.

Drives real :class:`~repro.cluster.PowerManagedCluster` instances (not
mocks) through the tenancy coordinator and checks the ISSUE 10
acceptance properties: fairshare weights actually move installed job
power limits, decayed usage feeds back into the weights, the admission
FIFO drains, and the oversubscribed demo is byte-deterministic
(same seed → identical accounting CSV).
"""

from __future__ import annotations

from repro.cluster import PowerManagedCluster
from repro.federation.rebalance import REL_EPS
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig
from repro.tenancy import (
    UNAFFILIATED,
    AdmissionConfig,
    TenancyConfig,
    TenancyCoordinator,
    TenantDirectory,
)
from repro.tenancy.report import DEMO_PLAN, build_demo_cluster, demo_lines, run_demo


def _capped_cluster(
    seed: int = 0,
    cap_w: float = 8000.0,
    admission: AdmissionConfig | None = None,
    interval_s: float = 5.0,
) -> PowerManagedCluster:
    directory = TenantDirectory.build(
        projects=[("astro", 4.0), ("ml", 1.0)],
        users=[("alice", "astro"), ("mei", "ml")],
    )
    return PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=seed,
        manager_config=ManagerConfig(
            global_cap_w=cap_w,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
        tenancy=TenancyConfig(
            directory=directory,
            half_life_s=60.0,
            accounting_interval_s=interval_s,
            admission=admission,
        ),
    )


def test_tenancy_off_by_default():
    """Anonymous deployments carry no coordinator and no splitter —
    the historical code path, untouched."""
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=1,
        manager_config=ManagerConfig(
            global_cap_w=8000.0,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
    )
    assert cluster.tenancy is None
    assert cluster.manager.cluster.share_splitter is None


def test_coordinator_installed_and_wired():
    cluster = _capped_cluster()
    coord = cluster.tenancy
    assert isinstance(coord, TenancyCoordinator)
    root = cluster.manager.cluster
    assert root.share_splitter is not None
    assert not coord.admission_enabled  # no AdmissionConfig here
    assert coord.project_weights()["astro"] == 4.0


def test_weighted_shares_favor_heavy_project():
    """Under contention the astro (weight 4) job's installed limit is
    4× the ml (weight 1) job's — the weighted water-fill, live."""
    cluster = _capped_cluster(cap_w=8000.0, interval_s=1000.0)
    cluster.submit(Jobspec(app="gemm", nnodes=4, user="alice"))
    cluster.submit(Jobspec(app="gemm", nnodes=4, user="mei"))
    cluster.run_for(2.0)  # before the first accounting tick: base weights
    root = cluster.manager.cluster
    books = root.job_level.jobs
    assert len(books) == 2
    coord = cluster.tenancy
    by_project = {
        coord.project_of_job(jobid): state.job_limit_w
        for jobid, state in books.items()
    }
    astro, ml = by_project["astro"], by_project["ml"]
    assert astro is not None and ml is not None
    # W = 1.0·4 + 0.25·4 = 5 ⇒ astro gets 8000·(1/5)·4, ml a quarter.
    assert abs(astro - 6400.0) <= REL_EPS * 6400.0
    assert abs(ml - 1600.0) <= REL_EPS * 6400.0
    total = astro + ml
    assert abs(total - 8000.0) <= REL_EPS * 8000.0


def test_usage_decay_discounts_effective_weight():
    """Running jobs charge their project; the accounting tick folds the
    decayed usage into a strictly lower effective weight."""
    cluster = _capped_cluster(interval_s=5.0)
    coord = cluster.tenancy
    base = coord.project_weights()["astro"]
    cluster.submit(Jobspec(app="gemm", nnodes=4, user="alice"))
    cluster.run_for(30.0)
    assert coord.accounting_ticks > 0
    eff = coord.project_weights()["astro"]
    assert 0.0 < eff < base
    assert coord.ledger.decayed("astro", cluster.sim.now) > 0.0
    # The idle project is never charged and keeps its base weight.
    assert coord.project_weights()["ml"] == 1.0


def test_admission_queue_drains_fifo():
    """Queued submissions release in FIFO order as capacity frees, and
    every admitted job reaches the job manager's books."""
    cluster = build_demo_cluster(seed=0)
    coord = cluster.tenancy
    for user, app, nnodes, submit_t in DEMO_PLAN:
        spec = Jobspec(app=app, nnodes=nnodes, user=user)
        if submit_t <= 0.0:
            cluster.submit(spec)
        else:
            cluster.submit_at(spec, submit_t)
    jm = cluster.instance.jobmanager
    while not (coord.drained() and jm.all_complete()) and cluster.sim.now < 5000.0:
        cluster.run_for(5.0)
    assert coord.drained()
    assert jm.all_complete()
    # All three decision kinds appear in the oversubscribed demo.
    assert coord.counts["admit"] > 0
    assert coord.counts["queue"] > 0
    assert coord.counts["reject"] > 0
    # FIFO: release order matches queue order, keyed by (user, nnodes).
    queued = [
        (r.user, r.nnodes) for r in coord.decisions
        if r.decision.action == "queue"
    ]
    released = [(r.user, r.nnodes) for r in coord.decisions if r.released]
    assert released == queued[: len(released)]
    # Every admitted decision landed a job in the books.
    admitted_ids = {
        r.jobid for r in coord.decisions
        if r.decision.action == "admit" and r.jobid is not None
    }
    assert admitted_ids == set(jm.jobs)


def test_anonymous_submission_accounts_to_unaffiliated():
    # budget_w=None admits everything but still logs every decision.
    cluster = _capped_cluster(admission=AdmissionConfig(budget_w=None))
    cluster.submit(Jobspec(app="gemm", nnodes=2))
    cluster.run_for(10.0)
    coord = cluster.tenancy
    rows = {row["project"]: row for row in coord.accounting_rows()}
    assert rows[UNAFFILIATED]["admitted_total"] == 1
    assert coord.project_of_job(next(iter(cluster.instance.jobmanager.jobs))) \
        == UNAFFILIATED


def test_same_seed_byte_identical_accounting_csv(tmp_path):
    """ISSUE 10 acceptance: replaying the oversubscribed demo with the
    same seed produces a byte-identical accounting CSV and report."""
    p1, p2 = tmp_path / "a.csv", tmp_path / "b.csv"
    sink: list = []
    run_demo(seed=0, csv_path=str(p1), out=sink.append)
    run_demo(seed=0, csv_path=str(p2), out=sink.append)
    assert p1.read_bytes() == p2.read_bytes()
    assert demo_lines(0) == demo_lines(0)
    header = p1.read_text().splitlines()[0]
    assert header.startswith("project,")


def test_accounting_csv_matches_rows():
    cluster = _capped_cluster()
    cluster.submit(Jobspec(app="gemm", nnodes=4, user="alice"))
    cluster.run_for(20.0)
    coord = cluster.tenancy
    csv_text = coord.accounting_csv()
    lines = csv_text.strip().splitlines()
    assert len(lines) == 1 + len(coord.accounting_rows())
    digest = coord.digest_summary()
    assert digest["submissions_total"] == coord.submissions_total
