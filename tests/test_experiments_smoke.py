"""Smoke tests for the experiment drivers (reduced scopes, fast)."""

import pytest

from repro.experiments import calibration as cal
from repro.experiments.fig1_timeline import run_fig1
from repro.experiments.fig2_scaling import run_fig2
from repro.experiments.fig3_overhead import run_fig3
from repro.experiments.fig4_variability import run_fig4
from repro.experiments.section5_failures import run_failure_injection
from repro.experiments.converged_queue import run_converged_once
from repro.experiments.table3_static import run_static_cap
from repro.experiments.table4_policies import SCENARIOS, run_policy_scenario


def test_fig1_driver_shapes():
    res = run_fig1("laghos", work_scale=10)
    assert set(res.series) == {"node", "cpu", "gpu"}
    ts = [t for t, _ in res.series["node"]]
    assert ts == sorted(ts)


def test_fig2_reduced_sweep():
    res = run_fig2(platforms=("lassen",), apps=("laghos",))
    assert len(res.cells) == 6  # six node counts
    assert all(c.platform == "lassen" for c in res.cells)
    with pytest.raises(KeyError):
        res.cell("laghos", "tioga", 4)


def test_fig3_reduced_matrix():
    res = run_fig3(
        platforms=("tioga",),
        apps=("lammps",),
        node_counts={"tioga": (1, 2)},
        seed=9,
    )
    assert len(res.cells) == 2
    # Tioga's tiny overhead: measured within noise of ~0.
    for cell in res.cells.values():
        assert abs(cell.overhead_pct) < 2.0


def test_fig4_reuses_fig3_data():
    f3 = run_fig3(
        platforms=("tioga",), apps=("lammps",), node_counts={"tioga": (1,)}, seed=9
    )
    f4 = run_fig4(f3)
    assert set(f4.cells) == set(f3.cells)


def test_scenarios_cover_paper_rows():
    assert set(SCENARIOS) == set(cal.TABLE4)


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        run_policy_scenario("greedy")


def test_static_cap_driver_single_row():
    row = run_static_cap(1200.0, seed=2)
    assert row.derived_gpu_cap_w == pytest.approx(100.0, abs=1.0)
    assert row.max_cluster_kw < 6.5


def test_failure_injection_zero_rate_clean():
    res = run_failure_injection(0.0, seed=2)
    assert res.nvml_failures == 0
    assert res.violation_fraction < 0.02


def test_converged_queue_small():
    run = run_converged_once("proportional", seed=3, n_jobs=10)
    assert run.n_jobs == 10
    assert run.makespan_s > 0
    assert run.avg_wait_s >= 0


def test_scalability_single_point():
    from repro.experiments.scalability import measure_scale_point

    cell = measure_scale_point(16, "fanout", window_s=20.0)
    assert cell.samples_returned == 16 * 11  # t=0..20 at 2 s
    assert cell.query_latency_s > 0
    assert cell.payload_mb > 0


def test_scalability_tree_matches_fanout_sample_counts():
    from repro.experiments.scalability import measure_scale_point

    a = measure_scale_point(16, "fanout", window_s=20.0)
    b = measure_scale_point(16, "tree", window_s=20.0)
    assert a.samples_returned == b.samples_returned
    assert b.root_messages < a.root_messages


def test_budget_point_unconstrained():
    from repro.experiments.budget_sweep import run_budget_point

    p = run_budget_point(None, seed=2)
    assert p.budget_w is None
    assert p.gemm_runtime_s == pytest.approx(548.0, rel=0.03)


def test_workflow_campaign_stage_ordering():
    from repro.experiments.workflow_campaign import run_workflow_once

    run = run_workflow_once("proportional", seed=12)
    assert (
        run.stage_starts["preprocess"]
        < run.stage_starts["fanout"]
        < run.stage_starts["reduce"]
    )
    assert run.total_energy_kj > 0
