"""Stateful property test: the power manager under random job traffic.

Drives a proportionally-shared cluster through random submissions and
time advances, and checks structural invariants after every step: caps
stay within device ranges, node limits within [0, peak], tenant
bookkeeping matches the job manager, and the share history is sane.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec, JobState
from repro.manager.cluster_manager import ManagerConfig

N_NODES = 6
BUDGET_W = 7200.0


class PowerManagerMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = PowerManagedCluster(
            platform="lassen",
            n_nodes=N_NODES,
            seed=77,
            trace=False,
            manager_config=ManagerConfig(
                global_cap_w=BUDGET_W,
                policy="proportional",
                static_node_cap_w=1950.0,
            ),
        )

    @rule(
        nnodes=st.integers(1, N_NODES),
        app=st.sampled_from(["laghos", "quicksilver", "gemm"]),
        scale=st.floats(0.2, 1.5),
    )
    def submit(self, nnodes, app, scale):
        if app == "gemm":
            scale = min(scale, 0.4)  # keep runs short
        self.cluster.submit(
            Jobspec(app=app, nnodes=nnodes, params={"work_scale": scale})
        )

    @rule(dt=st.floats(1.0, 30.0))
    def advance(self, dt):
        self.cluster.run_for(dt)

    # ------------------------------------------------------------------
    @invariant()
    def gpu_caps_within_device_range(self):
        for node in self.cluster.nodes:
            for gpu in node.gpu_domains:
                cap = gpu.get_cap("nvml")
                if cap is not None:
                    assert 100.0 <= cap <= 300.0

    @invariant()
    def node_limits_sane(self):
        mgr = self.cluster.manager
        for nm in mgr.node_managers:
            if nm.node_limit_w is not None:
                assert 0.0 <= nm.node_limit_w <= mgr.config.node_peak_w + 1e-6

    @invariant()
    def share_matches_active_population(self):
        mgr = self.cluster.manager
        share = mgr.cluster.per_node_share_w()
        active_nodes = mgr.cluster.job_level.active_node_count()
        if active_nodes == 0:
            assert share is None
        else:
            expected = min(
                mgr.config.node_peak_w, BUDGET_W / active_nodes
            )
            assert share == expected

    @invariant()
    def tenants_match_job_manager(self):
        """Eventually-consistent: every node manager's tenant is either
        unset, or a job the job manager knows about (possibly already
        finished — the departed RPC may still be in flight)."""
        jm = self.cluster.instance.jobmanager
        for nm in self.cluster.manager.node_managers:
            if nm.current_jobid is not None:
                assert nm.current_jobid in jm.jobs

    @invariant()
    def share_log_is_time_ordered(self):
        log = self.cluster.manager.share_log
        times = [t for (t, _, _) in log]
        assert times == sorted(times)


TestPowerManagerStateful = PowerManagerMachine.TestCase
TestPowerManagerStateful.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
