"""Unit tests for broker modules and the KVS."""

import pytest

from repro.flux.broker import Broker
from repro.flux.kvs import KVSModule
from repro.flux.message import FluxRPCError
from repro.flux.module import Module
from repro.flux.overlay import TBON
from repro.simkernel import Simulator


def make_broker_pair():
    sim = Simulator()
    overlay = TBON(size=2)
    registry = {}
    b0 = Broker(sim, 0, overlay, registry=registry)
    b1 = Broker(sim, 1, overlay, registry=registry)
    return sim, b0, b1


class PingModule(Module):
    name = "ping"

    def __init__(self, broker):
        super().__init__(broker)
        self.tick_count = 0

    def on_load(self):
        self.register_service("ping.echo", lambda b, m: b.respond(m, m.payload))
        self.add_timer(1.0, self._tick)

    def _tick(self, timer):
        self.tick_count += 1


def test_module_load_registers_services():
    sim, b0, b1 = make_broker_pair()
    b1.load_module(PingModule(b1))
    fut = b0.rpc(1, "ping.echo", {"v": 5})
    sim.run(until=1.0)
    assert fut.value == {"v": 5}


def test_module_timers_run_until_unload():
    sim, b0, b1 = make_broker_pair()
    mod = PingModule(b1)
    b1.load_module(mod)
    sim.run(until=5.0)
    assert mod.tick_count == 5
    b1.unload_module("ping")
    sim.run(until=10.0)
    assert mod.tick_count == 5  # timer stopped


def test_unload_removes_services():
    sim, b0, b1 = make_broker_pair()
    b1.load_module(PingModule(b1))
    b1.unload_module("ping")
    fut = b0.rpc(1, "ping.echo", {})
    sim.run(until=1.0)
    with pytest.raises(FluxRPCError):
        _ = fut.value


def test_double_load_rejected():
    _, _, b1 = make_broker_pair()
    b1.load_module(PingModule(b1))
    with pytest.raises(ValueError):
        b1.load_module(PingModule(b1))


def test_unload_unknown_module_rejected():
    _, _, b1 = make_broker_pair()
    with pytest.raises(KeyError):
        b1.unload_module("ghost")


# ---------------------------------------------------------------------------
# KVS
# ---------------------------------------------------------------------------

def test_kvs_local_put_get():
    sim, b0, _ = make_broker_pair()
    kvs = KVSModule(b0)
    b0.load_module(kvs)
    kvs.put("jobs.1", {"state": "running"})
    assert kvs.get("jobs.1") == {"state": "running"}
    assert kvs.get("missing", default="d") == "d"
    assert kvs.keys() == ["jobs.1"]


def test_kvs_rpc_put_then_get():
    sim, b0, b1 = make_broker_pair()
    b0.load_module(KVSModule(b0))
    put = b1.rpc(0, "kvs.put", {"key": "a", "value": 42})
    sim.run(until=1.0)
    assert put.value == {"key": "a"}
    get = b1.rpc(0, "kvs.get", {"key": "a"})
    sim.run(until=2.0)
    assert get.value == {"key": "a", "value": 42}


def test_kvs_get_missing_key_errors():
    sim, b0, b1 = make_broker_pair()
    b0.load_module(KVSModule(b0))
    fut = b1.rpc(0, "kvs.get", {"key": "nope"})
    sim.run(until=1.0)
    with pytest.raises(FluxRPCError) as exc:
        _ = fut.value
    assert exc.value.errnum == 2


def test_kvs_put_without_key_errors():
    sim, b0, b1 = make_broker_pair()
    b0.load_module(KVSModule(b0))
    fut = b1.rpc(0, "kvs.put", {"value": 1})
    sim.run(until=1.0)
    with pytest.raises(FluxRPCError):
        _ = fut.value


def test_kvs_must_run_on_rank0():
    _, _, b1 = make_broker_pair()
    with pytest.raises(ValueError):
        KVSModule(b1)
