"""Cluster snapshot/restore round trips and policy continuation state.

Covers the artifact layer end to end — snapshot → JSON → wipe →
restore leaves management state bit-identical — plus the safety
wrapper's recovery contract: damper last-actuation memory and exit
counters survive a restore (the recovery-path bug a naive restore that
drops the policy section reintroduces).
"""

from __future__ import annotations

import json

import pytest

from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec
from repro.lifecycle.snapshot import (
    SCHEMA_VERSION,
    SnapshotError,
    diff_snapshots,
    load_snapshot,
    restore_cluster,
    save_snapshot,
    snapshot_cluster,
    wipe_cluster_state,
)
from repro.manager.cluster_manager import ManagerConfig
from repro.manager.policies.safety import PolicySafetyWrapper


def _managed_cluster(policy: str, seed: int = 3, n_nodes: int = 4):
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=n_nodes,
        seed=seed,
        manager_config=ManagerConfig(
            global_cap_w=1200.0 * n_nodes,
            policy=policy,
            static_node_cap_w=1950.0,
        ),
    )
    cluster.submit(Jobspec(app="gemm", nnodes=n_nodes, params={"work_scale": 6.0}))
    return cluster


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def test_snapshot_json_round_trips_and_is_self_consistent():
    cluster = _managed_cluster("pi")
    cluster.run_for(30.0)
    snap = snapshot_cluster(cluster)
    assert snap["schema_version"] == SCHEMA_VERSION
    assert snap["kind"] == "cluster"
    # Everything in the artifact is plain JSON.
    rehydrated = json.loads(json.dumps(snap, sort_keys=True))
    assert diff_snapshots(snap, rehydrated) == []
    # Taking it twice at the same instant is deterministic.
    assert diff_snapshots(snap, snapshot_cluster(cluster)) == []


def test_wipe_then_restore_is_identity():
    cluster = _managed_cluster("pi")
    cluster.run_for(30.0)
    before = snapshot_cluster(cluster)
    root = cluster.manager.cluster
    assert root.job_level.jobs  # the run is mid-flight

    wipe_cluster_state(cluster)
    assert root.job_level.jobs == {}
    assert root.share_log == []
    nm = cluster.manager.node_managers[1]
    assert nm.node_limit_w is None
    assert len(cluster.monitor.node_agents[1].buffer) == 0

    restore_cluster(cluster, json.loads(json.dumps(before)))
    assert diff_snapshots(before, snapshot_cluster(cluster)) == []


def test_restore_rejects_incompatible_artifacts():
    cluster = _managed_cluster("pi")
    cluster.run_for(10.0)
    snap = snapshot_cluster(cluster)

    wrong_version = dict(snap, schema_version=SCHEMA_VERSION + 1)
    with pytest.raises(SnapshotError, match="schema version"):
        restore_cluster(cluster, wrong_version)

    wrong_kind = dict(snap, kind="site")
    with pytest.raises(SnapshotError, match="kind"):
        restore_cluster(cluster, wrong_kind)

    wrong_policy = json.loads(json.dumps(snap))
    wrong_policy["manager"]["config"]["policy"] = "ecoshift"
    with pytest.raises(SnapshotError, match="policy"):
        restore_cluster(cluster, wrong_policy)


def test_save_load_round_trip(tmp_path):
    cluster = _managed_cluster("proportional")
    cluster.run_for(20.0)
    snap = snapshot_cluster(cluster)
    path = tmp_path / "snap.json"
    save_snapshot(snap, path)
    assert diff_snapshots(snap, load_snapshot(path)) == []


def test_diff_reports_dotted_paths():
    a = {"x": {"y": 1, "z": [1, 2]}, "w": "s"}
    b = {"x": {"y": 2, "z": [1, 2]}, "q": "t"}
    diffs = diff_snapshots(a, b)
    assert any(d.startswith("x.y:") for d in diffs)
    assert any("only in first" in d for d in diffs)
    assert any("only in second" in d for d in diffs)
    assert diff_snapshots(a, a) == []


def test_dead_ranks_are_skipped():
    from repro.faults import FaultEvent, FaultPlan

    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=3,
        manager_config=ManagerConfig(global_cap_w=4800.0, policy="proportional"),
        fault_plan=FaultPlan([FaultEvent(t=10.0, kind="crash", rank=2)]),
    )
    cluster.submit(Jobspec(app="gemm", nnodes=4, params={"work_scale": 6.0}))
    cluster.run_for(20.0)
    snap = snapshot_cluster(cluster)
    assert "2" not in snap["node_managers"]
    assert "2" not in snap["agents"]
    assert "1" in snap["node_managers"]
    # Restoring onto the same topology (rank 2 still dead) is a no-op
    # for the dead rank and exact for the survivors.
    restore_cluster(cluster, snap)
    assert diff_snapshots(snap, snapshot_cluster(cluster)) == []


# ----------------------------------------------------------------------
# Safety-wrapper continuation state (recovery-path fix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["pi", "ecoshift", "checkpoint"])
def test_wrapper_damper_memory_and_counters_survive_restore(policy):
    cluster = _managed_cluster(policy, seed=7)
    cluster.run_for(40.0)
    nm = cluster.manager.node_managers[1]
    wrapper = nm.policy
    assert isinstance(wrapper, PolicySafetyWrapper)
    intents_before = dict(wrapper._intents)
    counters_before = (
        wrapper.damperexits, wrapper.slowdownexits, dict(wrapper.clamps),
    )
    assert intents_before, "the zoo policy should have actuated by t=40"

    snap = snapshot_cluster(cluster)
    wipe_cluster_state(cluster)
    assert wrapper._intents == {}
    assert wrapper.damperexits == 0

    restore_cluster(cluster, json.loads(json.dumps(snap)))
    assert wrapper._intents == intents_before
    assert (
        wrapper.damperexits, wrapper.slowdownexits, dict(wrapper.clamps),
    ) == counters_before


@pytest.mark.parametrize("policy", ["pi", "ecoshift", "checkpoint"])
def test_restore_then_step_matches_uninterrupted_run(policy):
    """The pinned satellite regression: restore-then-step equivalence.

    Two identical seeded clusters run side by side; one is crashed
    (snapshot → wipe → restore) mid-job. From there on, every control
    decision — wrapper exit counters, assignment log, installed caps —
    must match the uninterrupted twin. A naive restore that drops the
    wrapper section (modelled below) fails this: the damper loses its
    last-actuation memory and the exit counters reset, so the twins'
    describe() output splits.
    """
    base = _managed_cluster(policy, seed=11)
    crashed = _managed_cluster(policy, seed=11)
    base.run_for(40.0)
    crashed.run_for(40.0)

    snap = snapshot_cluster(crashed)
    wipe_cluster_state(crashed)
    restore_cluster(crashed, json.loads(json.dumps(snap)))

    base.run_until_complete(timeout_s=1_000_000)
    crashed.run_until_complete(timeout_s=1_000_000)

    for rank in range(len(base.manager.node_managers)):
        b = base.manager.node_managers[rank]
        c = crashed.manager.node_managers[rank]
        assert b.policy.describe() == c.policy.describe()
        assert b._last_gpu_caps == c._last_gpu_caps
        assert b.node_limit_w == c.node_limit_w
    assert (
        base.manager.cluster.job_level.assignment_log
        == crashed.manager.cluster.job_level.assignment_log
    )


def test_naive_restore_without_policy_state_loses_damper_memory():
    """Demonstrates the pre-fix failure the wrapper snapshot prevents.

    Stripping the policy section from the artifact (what a restore
    predating the fix carried) leaves the restored wrapper amnesiac:
    empty damper memory and zeroed exit counters — the double-count /
    spurious-first-step behaviour the satellite pins against.
    """
    cluster = _managed_cluster("pi", seed=7)
    cluster.run_for(40.0)
    nm = cluster.manager.node_managers[1]
    wrapper = nm.policy
    assert wrapper._intents

    snap = json.loads(json.dumps(snapshot_cluster(cluster)))
    for nm_state in snap["node_managers"].values():
        nm_state["policy"]["state"] = {}
    wipe_cluster_state(cluster)
    restore_cluster(cluster, snap)
    assert wrapper._intents == {}
    assert wrapper.damperexits == 0
