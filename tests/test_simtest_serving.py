"""Simtest ``serving`` campaign mode + the ``serving_view`` invariant.

A generated scenario can now carry a :class:`ServingMix` (p≈0.2, drawn
off the ``simtest/serving`` substream): the harness then stands up a
:class:`PowerService` over the scenario's cluster, replays a seeded
read-only client mix at every check tick, and the ``serving_view``
checker cross-checks API job views against the job-manager books and
the power manager's share split.

The backwards-compatibility pins matter most here: scenarios *without*
a mix serialize without a ``serving`` key (historical digests stay
valid), and attaching a campaign to a run changes nothing physical —
same makespan, same job metrics.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.simtest.harness import SimtestContext, run_scenario
from repro.simtest.invariants import ServingViewChecker, default_checkers
from repro.simtest.scenario import (
    GeneratorConfig,
    Scenario,
    ServingMix,
    generate_scenario,
)


def _serving_seed(limit=40):
    for seed in range(1, limit):
        if generate_scenario(seed).serving is not None:
            return seed
    raise AssertionError("no serving scenario in the first seeds")


# ---------------------------------------------------------------------------
# Scenario plumbing
# ---------------------------------------------------------------------------


def test_serving_mix_roundtrips_through_dict():
    mix = ServingMix(clients=12, requests_per_tick=5, page_limit=3)
    assert ServingMix.from_dict(mix.to_dict()) == mix


def test_scenario_dict_omits_serving_when_absent():
    scenario = generate_scenario(2)
    assert scenario.serving is None
    d = scenario.to_dict()
    assert "serving" not in d  # historical digest preservation
    assert Scenario.from_dict(d).serving is None


def test_scenario_dict_roundtrips_serving():
    seed = _serving_seed()
    scenario = generate_scenario(seed)
    d = scenario.to_dict()
    assert "serving" in d
    assert Scenario.from_dict(d).serving == scenario.serving
    assert "serving" in scenario.describe()


def test_generator_is_deterministic_and_mixes():
    seeds = range(1, 40)
    first = [generate_scenario(s).serving for s in seeds]
    second = [generate_scenario(s).serving for s in seeds]
    assert first == second
    with_mix = [m for m in first if m is not None]
    assert with_mix and len(with_mix) < len(first)
    for mix in with_mix:
        assert 4 <= mix.clients <= 32
        assert 2 <= mix.requests_per_tick <= 8
        assert 2 <= mix.page_limit <= 5


def test_p_serving_zero_disables_the_campaign():
    cfg = GeneratorConfig(p_serving=0.0)
    assert all(generate_scenario(s, cfg).serving is None
               for s in range(1, 15))


def test_serving_draw_does_not_perturb_the_rest_of_the_scenario():
    """The ``simtest/serving`` substream is independent: toggling the
    campaign probability must not change topology/jobs/faults."""
    seed = _serving_seed()
    with_mix = generate_scenario(seed)
    without = generate_scenario(seed, GeneratorConfig(p_serving=0.0))
    a, b = with_mix.to_dict(), without.to_dict()
    a.pop("serving")
    assert a == b


# ---------------------------------------------------------------------------
# The campaign under the harness
# ---------------------------------------------------------------------------


def test_campaign_runs_clean_and_replays():
    seed = _serving_seed()
    first = run_scenario(generate_scenario(seed), checkers=default_checkers())
    assert first.ok, first.summary()
    second = run_scenario(generate_scenario(seed), checkers=default_checkers())
    assert first.digest == second.digest


def test_campaign_does_not_change_the_physics():
    """Same scenario, with and without the campaign attached: identical
    makespan and job metrics — the API reads are free."""
    seed = _serving_seed()
    scenario = generate_scenario(seed)
    plain = replace(scenario, serving=None)
    with_campaign = run_scenario(scenario, checkers=default_checkers())
    without = run_scenario(plain, checkers=default_checkers())
    assert with_campaign.ok and without.ok
    assert with_campaign.makespan_s == without.makespan_s
    assert with_campaign.events_processed == without.events_processed


def test_harness_attaches_service_and_counts_requests():
    seed = _serving_seed()
    scenario = generate_scenario(seed)
    captured = {}

    class Spy(ServingViewChecker):
        def check(self, ctx):
            captured["service"] = getattr(ctx, "service", None)
            captured["requests"] = getattr(ctx, "serving_requests", 0)
            return super().check(ctx)

    result = run_scenario(scenario, checkers=default_checkers() + [Spy()])
    assert result.ok, result.summary()
    assert captured["service"] is not None
    assert captured["requests"] > 0


# ---------------------------------------------------------------------------
# The serving_view checker
# ---------------------------------------------------------------------------


def _checked_context(seed=31):
    """A live cluster with a service attached, mid-run."""
    from repro.cluster import PowerManagedCluster
    from repro.flux.jobspec import Jobspec
    from repro.manager.cluster_manager import ManagerConfig
    from repro.serving import ClusterRegistry, PowerService

    cluster = PowerManagedCluster(
        platform="lassen", n_nodes=4, seed=seed,
        manager_config=ManagerConfig(global_cap_w=5_000.0,
                                     policy="proportional",
                                     static_node_cap_w=1950.0),
    )
    for _ in range(3):
        cluster.submit(Jobspec(app="gemm", nnodes=2,
                               params={"work_scale": 0.5}))
    cluster.run_for(6.0)
    scenario = replace(
        generate_scenario(1),
        serving=ServingMix(clients=4, requests_per_tick=2, page_limit=2),
    )
    ctx = SimtestContext(cluster, scenario)
    ctx.service = PowerService(
        ClusterRegistry.from_cluster(cluster, name="default"))
    return ctx


def test_serving_view_checker_passes_on_a_consistent_world():
    ctx = _checked_context()
    assert ServingViewChecker().check(ctx) == []


def test_serving_view_checker_is_noop_without_a_service():
    ctx = _checked_context()
    ctx.service = None
    assert ServingViewChecker().check(ctx) == []


def test_serving_view_checker_flags_share_divergence(monkeypatch):
    """Plant a lie between the API view and the manager's books."""
    from repro.serving.registry import ClusterBackend

    ctx = _checked_context()
    monkeypatch.setattr(ClusterBackend, "job_power_state",
                        lambda self, jobid: None)
    violations = ServingViewChecker().check(ctx)
    assert violations
    assert all(v.invariant == "serving_view" for v in violations)
    assert any("manager shares" in v.message for v in violations)


def test_serving_view_checker_flags_listing_divergence(monkeypatch):
    """Drop a job from the API listing: the id-set check must fire."""
    from repro.serving.service import PowerService

    ctx = _checked_context()
    real = PowerService.handle

    def lossy(self, method, path, params=None, body=None):
        resp = real(self, method, path, params, body)
        if path.endswith("/jobs") and resp.status == 200 and resp.body["jobs"]:
            resp.body["jobs"] = resp.body["jobs"][:-1]
            resp.body["next_offset"] = None
        return resp

    monkeypatch.setattr(PowerService, "handle", lossy)
    violations = ServingViewChecker().check(ctx)
    assert any("disagrees with job-manager books" in v.message
               for v in violations)
