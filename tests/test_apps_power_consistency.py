"""Cross-checks: analytic power predictions versus simulated runs.

``AppProfile.mean_node_demand_w`` predicts the unconstrained average
node power analytically (idle + phase-weighted dynamic demand). These
tests run each application for real and require the simulation to agree
— guarding against drift between the demand model and the executor.
"""

import pytest

from repro.apps.registry import get_profile
from repro.apps.run import AppRun
from repro.flux.jobspec import JobRecord, Jobspec
from repro.hardware.platforms.lassen import make_lassen_node
from repro.hardware.platforms.tioga import make_tioga_node
from repro.simkernel import Simulator

APPS = ["lammps", "gemm", "quicksilver", "laghos", "nqueens", "kripke", "sw4lite"]


def simulate_avg_power(app: str, platform: str, n_nodes: int = 2, work_scale=10.0):
    """Average node power over a long (many-period) unconstrained run."""
    maker = make_lassen_node if platform == "lassen" else make_tioga_node
    sim = Simulator()
    nodes = [maker(f"n{i}") for i in range(n_nodes)]
    record = JobRecord(jobid=1, spec=Jobspec(app=app, nnodes=n_nodes))
    run = AppRun(
        sim, record, nodes, get_profile(app), work_scale=work_scale
    )
    sim.run(until=500_000.0)
    assert run.finished
    return run.avg_node_power_w


@pytest.mark.parametrize("app", APPS)
def test_lassen_simulation_matches_analytic_mean(app):
    profile = get_profile(app)
    predicted = profile.mean_node_demand_w(
        "lassen", 2, node_idle_w=400.0, n_sockets=2, n_gpus=4
    )
    measured = simulate_avg_power(app, "lassen")
    # Phases quantised by the 1 s step introduce a little smear.
    assert measured == pytest.approx(predicted, rel=0.06)


@pytest.mark.parametrize("app", ["lammps", "laghos", "kripke"])
def test_tioga_simulation_matches_analytic_mean(app):
    profile = get_profile(app)
    # Tioga's analytic prediction: full node (incl. unmeasured domains).
    predicted = profile.mean_node_demand_w(
        "tioga", 2, node_idle_w=505.0, n_sockets=1, n_gpus=8
    )
    measured = simulate_avg_power(app, "tioga")
    assert measured == pytest.approx(predicted, rel=0.08)


def test_energy_scales_linearly_with_work():
    e1 = None
    sim_avgs = []
    for scale in (1.0, 2.0):
        maker = make_lassen_node
        sim = Simulator()
        nodes = [maker("n0")]
        record = JobRecord(jobid=1, spec=Jobspec(app="gemm", nnodes=1))
        run = AppRun(sim, record, nodes, get_profile("gemm"), work_scale=scale)
        sim.run(until=100_000.0)
        sim_avgs.append(run.avg_node_energy_j)
    assert sim_avgs[1] == pytest.approx(2.0 * sim_avgs[0], rel=0.02)
