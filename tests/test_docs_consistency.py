"""Documentation consistency checks.

Two guarantees:

* docs/observability.md is the complete metric catalog — every metric
  the code can emit (found statically in registry calls, and
  dynamically by running a managed workload) must appear there;
* no doc references a file that does not exist (dead-link check over
  docs/*.md and README.md).
"""

import re
from pathlib import Path

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
OBSERVABILITY_DOC = REPO / "docs" / "observability.md"

# A metric registration is a .counter("...") / .gauge("...") /
# .histogram("...") call; the name literal may sit on the next line.
METRIC_CALL_RE = re.compile(
    r"\.(?:counter|gauge|histogram)\(\s*\n?\s*\"([a-z0-9_]+)\"", re.MULTILINE
)


def emitted_metric_names():
    names = set()
    for path in SRC.rglob("*.py"):
        names.update(METRIC_CALL_RE.findall(path.read_text()))
    return names


def test_static_scan_finds_the_instrumentation():
    # Guard against the regex rotting: the scan must keep seeing the
    # known hot-path metrics.
    names = emitted_metric_names()
    assert "flux_rpc_requests_total" in names
    assert "monitor_samples_total" in names
    assert "fpp_control_ticks_total" in names
    assert "policy_guard_clamps_total" in names
    assert "policy_checkpoint_windows_total" in names
    assert len(names) >= 30


def test_every_emitted_metric_is_documented():
    doc = OBSERVABILITY_DOC.read_text()
    undocumented = {n for n in emitted_metric_names() if f"`{n}`" not in doc}
    assert not undocumented, (
        f"metrics emitted by src/ but missing from docs/observability.md: "
        f"{sorted(undocumented)}"
    )


def test_every_runtime_metric_is_documented():
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=3,
        manager_config=ManagerConfig(
            global_cap_w=4800.0, policy="fpp", static_node_cap_w=1950.0
        ),
    )
    cluster.submit(Jobspec(app="gemm", nnodes=4))
    cluster.run_until_complete()
    doc = OBSERVABILITY_DOC.read_text()
    missing = {
        n for n in cluster.telemetry_hub.metrics.names() if f"`{n}`" not in doc
    }
    assert not missing, f"runtime metrics missing from docs: {sorted(missing)}"


def test_every_policy_zoo_runtime_metric_is_documented():
    # The zoo policies emit their own `policy_*` family (guard clamps,
    # damper/slowdown exits, control updates, checkpoint windows); a
    # checkpointing HACC run under the wrapped checkpoint policy lights
    # up all of them at once.
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=3,
        manager_config=ManagerConfig(
            global_cap_w=4800.0, policy="checkpoint", static_node_cap_w=1950.0
        ),
    )
    cluster.submit(Jobspec(app="hacc", nnodes=4, params={"work_scale": 1.5}))
    cluster.run_until_complete()
    emitted = cluster.telemetry_hub.metrics.names()
    assert any(n.startswith("policy_") for n in emitted)
    doc = OBSERVABILITY_DOC.read_text()
    missing = {n for n in emitted if f"`{n}`" not in doc}
    assert not missing, f"runtime metrics missing from docs: {sorted(missing)}"


def test_every_lifecycle_runtime_metric_is_documented():
    # A rank crash + revival and an operator maintenance round-trip
    # drive every `lifecycle_*` edge the managed stack emits.
    from repro.faults import FaultEvent, FaultPlan

    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=3,
        manager_config=ManagerConfig(
            global_cap_w=4800.0, policy="proportional", static_node_cap_w=1950.0
        ),
        fault_plan=FaultPlan(
            [FaultEvent(t=5.0, kind="crash", rank=2, duration_s=10.0)]
        ),
    )
    cluster.submit(Jobspec(app="gemm", nnodes=4, params={"work_scale": 2.0}))
    cluster.run_for(20.0)
    root = cluster.manager.cluster
    root.begin_maintenance(3)
    root.end_maintenance(3)
    cluster.run_until_complete()
    emitted = cluster.telemetry_hub.metrics.names()
    assert "lifecycle_transitions_total" in emitted
    assert "lifecycle_entities" in emitted
    doc = OBSERVABILITY_DOC.read_text()
    missing = {n for n in emitted if f"`{n}`" not in doc}
    assert not missing, f"runtime metrics missing from docs: {sorted(missing)}"


def test_every_serving_runtime_metric_is_documented():
    # A short loadtest plus one failing request lights up the whole
    # `serving_*` family (request/op counters, the error counter, the
    # latency histogram, snapshot cache refreshes).
    from repro.serving import (
        ClusterRegistry,
        LoadProfile,
        PowerService,
        SimDriver,
        run_loadtest,
    )

    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=3,
        manager_config=ManagerConfig(
            global_cap_w=4800.0, policy="proportional", static_node_cap_w=1950.0
        ),
    )
    registry = ClusterRegistry.from_cluster(cluster, name="default")
    service = PowerService(registry)
    run_loadtest(
        1,
        LoadProfile(clients=5, requests_per_client=2, warmup_jobs=1,
                    advance_every=5),
        service,
        SimDriver(registry),
    )
    service.handle("GET", "/v1/clusters/nowhere")
    emitted = cluster.telemetry_hub.metrics.names()
    for name in (
        "serving_requests_total",
        "serving_errors_total",
        "serving_request_latency_s",
        "serving_snapshot_refreshes_total",
    ):
        assert name in emitted, name
    doc = OBSERVABILITY_DOC.read_text()
    missing = {n for n in emitted if f"`{n}`" not in doc}
    assert not missing, f"runtime metrics missing from docs: {sorted(missing)}"


# ----------------------------------------------------------------------
# Dead links
# ----------------------------------------------------------------------
MD_LINK_RE = re.compile(r"\]\(([^)#]+?)(?:#[^)]*)?\)")
# Bare file mentions in prose/backticks: docs/foo.md, EXPERIMENTS.md,
# examples/bar.py, src/repro/... — the repo's dominant reference style.
BARE_REF_RE = re.compile(
    r"\b((?:docs|examples|src|tests|benchmarks)/[\w./-]+\.(?:md|py)|[A-Z]+\.md)\b"
)


def doc_files():
    return sorted((REPO / "docs").glob("*.md")) + [REPO / "README.md"]


@pytest.mark.parametrize("doc", doc_files(), ids=lambda p: p.name)
def test_no_dead_file_references(doc):
    text = doc.read_text()
    refs = set()
    for m in MD_LINK_RE.finditer(text):
        target = m.group(1).strip()
        if "://" in target or target.startswith("mailto:"):
            continue
        refs.add(target)
    refs.update(BARE_REF_RE.findall(text))
    dead = [
        ref
        for ref in sorted(refs)
        if not (REPO / ref).exists() and not (doc.parent / ref).exists()
    ]
    assert not dead, f"{doc.name} references missing files: {dead}"
