"""Smoke test: ``repro bench --quick`` writes a schema-valid artifact.

Runs the real CLI entry point end to end (reduced sizes) and validates
the ``BENCH_<name>.json`` it writes against the ``repro-bench/1``
schema — the same validation the committed baseline/after artifacts at
the repo root pass. The full-size suite is exercised by the ``bench``
marked benchmarks, which tier-1 excludes.
"""

from __future__ import annotations

import json

from repro.bench import load_report
from repro.cli import main


def test_bench_quick_writes_schema_valid_artifact(tmp_path, capsys):
    rc = main(
        ["bench", "--quick", "--name", "smoke", "--out", str(tmp_path)]
    )
    assert rc == 0
    path = tmp_path / "BENCH_smoke.json"
    data = load_report(str(path))  # load_report validates the schema
    assert data["quick"] is True
    assert data["name"] == "smoke"
    assert data["repeats"] == 1
    names = {r["benchmark"] for r in data["results"]}
    # Every suite member reports at least one result.
    assert {
        "engine_prescheduled",
        "engine_periodic",
        "engine_cancel_churn",
        "scalability_fanout",
        "scalability_tree",
        "scalability_sweep",
        "table4_policy",
        "sweep_10k",
        "sweep_100k",
    } <= names
    sweeps = {
        r["benchmark"]: r for r in data["results"]
        if r["benchmark"].startswith("sweep_")
    }
    # The exascale sweeps run columnar on this tree and record it.
    assert all(r["params"]["columnar"] is True for r in sweeps.values())
    assert all(r["metric"] == "node_samples_per_s" for r in sweeps.values())
    # The artifact is plain JSON (round-trips through json module).
    assert json.loads(path.read_text())["schema"] == "repro-bench/1"
    out = capsys.readouterr().out
    assert "benchmark" in out  # table header printed to stdout


def test_bench_only_filter_rejects_unknown(tmp_path, capsys):
    rc = main(
        ["bench", "--quick", "--only", "nosuchbench", "--out", str(tmp_path)]
    )
    assert rc == 2


def test_bench_repeats_recorded(tmp_path):
    rc = main(
        [
            "bench", "--quick", "--only", "engine_prescheduled",
            "--repeats", "2", "--name", "rep", "--out", str(tmp_path),
        ]
    )
    assert rc == 0
    data = load_report(str(tmp_path / "BENCH_rep.json"))
    assert data["repeats"] == 2
