"""Unit tests for job failure handling (fault injection)."""

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.flux.instance import FluxInstance
from repro.flux.jobspec import JobState


@pytest.fixture
def inst():
    return FluxInstance(platform="lassen", n_nodes=4, seed=24)


def test_fail_at_marks_job_failed(inst):
    rec = inst.submit(
        Jobspec(app="laghos", nnodes=2, params={"fail_at_s": 5.0})
    )
    inst.run_until_complete()
    assert rec.state is JobState.FAILED
    assert rec.t_end < 12.0  # crashed well before the 12.55 s runtime
    assert inst.app_runs[rec.jobid].failed
    assert not inst.app_runs[rec.jobid].finished


def test_failed_job_releases_nodes(inst):
    inst.submit(Jobspec(app="laghos", nnodes=4, params={"fail_at_s": 3.0}))
    b = inst.submit(Jobspec(app="laghos", nnodes=4))
    inst.run_until_complete()
    assert b.state is JobState.COMPLETED


def test_failure_publishes_event(inst):
    topics = []
    inst.brokers[1].subscribe("job-state.", lambda m: topics.append(m.topic))
    inst.submit(Jobspec(app="laghos", nnodes=1, params={"fail_at_s": 2.0}))
    inst.run_until_complete()
    inst.run_for(1.0)
    assert "job-state.failed" in topics
    assert "job-state.completed" not in topics


def test_failed_dependency_cancels_dependents(inst):
    a = inst.submit(Jobspec(app="laghos", nnodes=2, params={"fail_at_s": 4.0}))
    b = inst.submit(Jobspec(app="laghos", nnodes=2), depends_on=[a.jobid])
    inst.run_until_complete()
    assert a.state is JobState.FAILED
    assert b.state is JobState.CANCELLED


def test_failure_clears_demand(inst):
    rec = inst.submit(Jobspec(app="gemm", nnodes=2, params={"fail_at_s": 10.0}))
    inst.run_until_complete()
    for r in rec.ranks:
        node = inst.nodes[r]
        assert node.total_power_w() == pytest.approx(node.idle_power_w())


def test_failure_releases_power_share():
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=24,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=4800.0, policy="proportional", static_node_cap_w=1950.0
        ),
    )
    doomed = cluster.submit(
        Jobspec(app="gemm", nnodes=2, params={"work_scale": 1.0, "fail_at_s": 20.0})
    )
    survivor = cluster.submit(
        Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.5})
    )
    cluster.run_until_complete(timeout_s=1_000_000)
    assert doomed.state is JobState.FAILED
    # After the crash, the survivor's share rose to 4800/2 = 2400.
    shares = [s for (_, _, s) in cluster.manager.share_log if s is not None]
    assert any(abs(s - 2400.0) < 1 for s in shares)


def test_failed_energy_accounting_still_valid(inst):
    rec = inst.submit(Jobspec(app="gemm", nnodes=1, params={"fail_at_s": 30.0}))
    inst.run_until_complete()
    run = inst.app_runs[rec.jobid]
    # Energy was consumed up to the crash point.
    assert run.avg_node_energy_j > 0
    assert run.t_end is not None
