"""Seeded federated run for the byte-identity golden test (ISSUE 5).

Same contract as ``tests/golden_scenarios.py``: the fixtures under
``tests/golden/`` pin the federation campaign's cross-cluster timeline
CSV and the Prometheus export of the site's telemetry byte for byte.
Any engine, manager or federation change that shifts a rebalance, a
share value or a metric must show up as a diff here. Regenerate (only
when an *intentional* behaviour change lands) with::

    PYTHONPATH=src:tests python tests/golden_federation.py --write

The scenario is the scripted two-cluster campaign from
``repro.experiments.federation_campaign`` (seed 1): a 6-node Lassen-like
cluster with a 4 kW share floor and a 4-node Tioga-like cluster with a
14 kW ceiling under a 20 kW site budget, a whole-cluster outage at
t=30 → 55, and a site retune to 16 kW at t=70.
"""

from __future__ import annotations

import os
from typing import Tuple

from repro.experiments.federation_campaign import run_federation_campaign

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")
NAME = "federation_campaign"


def run_golden() -> Tuple[str, str]:
    """Run the campaign; return ``(timeline_csv, prometheus_text)``."""
    result = run_federation_campaign(seed=1)
    return result.timeline_csv(), result.prometheus


def fixture_paths() -> Tuple[str, str]:
    return (
        os.path.join(GOLDEN_DIR, f"{NAME}.csv"),
        os.path.join(GOLDEN_DIR, f"{NAME}.prom"),
    )


def write_fixtures() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    csv_blob, prom = run_golden()
    csv_path, prom_path = fixture_paths()
    with open(csv_path, "w") as fh:
        fh.write(csv_blob)
    with open(prom_path, "w") as fh:
        fh.write(prom)
    print(f"wrote {csv_path} ({len(csv_blob)} B), {prom_path} ({len(prom)} B)")


if __name__ == "__main__":
    import sys

    if "--write" not in sys.argv:
        raise SystemExit("refusing to overwrite goldens without --write")
    write_fixtures()
