"""Unit tests for brokers: RPC, services, events."""

import pytest

from repro.flux.broker import Broker
from repro.flux.message import FluxRPCError, Message, MessageType
from repro.flux.overlay import TBON
from repro.simkernel import Process, Simulator


def make_brokers(n=4, fanout=2):
    sim = Simulator()
    overlay = TBON(size=n, fanout=fanout)
    registry = {}
    brokers = [Broker(sim, r, overlay, registry=registry) for r in range(n)]
    return sim, brokers


def test_rpc_roundtrip_with_payload():
    sim, brokers = make_brokers()

    def handler(broker, msg):
        broker.respond(msg, {"doubled": msg.payload["x"] * 2})

    brokers[3].register_service("test.double", handler)
    fut = brokers[1].rpc(3, "test.double", {"x": 21})
    sim.run()
    assert fut.triggered
    assert fut.value == {"doubled": 42}


def test_rpc_takes_simulated_time_over_the_tree():
    sim, brokers = make_brokers(n=8)
    times = []

    def handler(broker, msg):
        broker.respond(msg, {})

    brokers[7].register_service("t", handler)

    def waiter():
        yield brokers[0].rpc(7, "t")
        times.append(sim.now)

    Process(sim, waiter())
    sim.run()
    assert times and times[0] > 0.0  # hop latency accumulated


def test_rpc_to_self_works():
    sim, brokers = make_brokers()
    brokers[0].register_service("local", lambda b, m: b.respond(m, {"ok": True}))
    fut = brokers[0].rpc(0, "local")
    sim.run()
    assert fut.value == {"ok": True}


def test_rpc_error_response_raises_flux_error():
    sim, brokers = make_brokers()
    brokers[2].register_service(
        "fail", lambda b, m: b.respond(m, errnum=1, errmsg="nope")
    )
    fut = brokers[0].rpc(2, "fail")
    sim.run()
    with pytest.raises(FluxRPCError) as exc:
        _ = fut.value
    assert exc.value.errnum == 1
    assert "nope" in str(exc.value)


def test_rpc_to_missing_service_returns_errnum_38():
    sim, brokers = make_brokers()
    fut = brokers[0].rpc(1, "no.such.service")
    sim.run()
    with pytest.raises(FluxRPCError) as exc:
        _ = fut.value
    assert exc.value.errnum == 38


def test_duplicate_service_registration_rejected():
    _, brokers = make_brokers()
    brokers[0].register_service("svc", lambda b, m: None)
    with pytest.raises(ValueError):
        brokers[0].register_service("svc", lambda b, m: None)


def test_concurrent_rpcs_matched_by_matchtag():
    sim, brokers = make_brokers()

    def handler(broker, msg):
        broker.respond(msg, {"echo": msg.payload["v"]})

    brokers[1].register_service("echo", handler)
    futs = [brokers[0].rpc(1, "echo", {"v": i}) for i in range(10)]
    sim.run()
    assert [f.value["echo"] for f in futs] == list(range(10))


def test_event_broadcast_reaches_all_subscribers():
    sim, brokers = make_brokers(n=8)
    got = {r: [] for r in range(8)}
    for r, b in enumerate(brokers):
        b.subscribe("job-state.", lambda msg, r=r: got[r].append(msg.topic))
    brokers[5].publish("job-state.running", {"jobid": 1})
    sim.run()
    assert all(g == ["job-state.running"] for g in got.values())


def test_event_prefix_matching():
    sim, brokers = make_brokers()
    got = []
    brokers[1].subscribe("alpha.", lambda m: got.append(m.topic))
    brokers[0].publish("alpha.one")
    brokers[0].publish("beta.two")
    sim.run()
    assert got == ["alpha.one"]


def test_events_sequenced_in_publish_order_from_same_rank():
    sim, brokers = make_brokers(n=4)
    got = []
    brokers[3].subscribe("e.", lambda m: got.append((m.topic, m.seq)))
    for i in range(5):
        brokers[2].publish(f"e.{i}")
    sim.run()
    assert [t for t, _ in got] == [f"e.{i}" for i in range(5)]
    seqs = [s for _, s in got]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == 5


def test_unsubscribe_stops_delivery():
    sim, brokers = make_brokers()
    got = []
    cb = lambda m: got.append(m.topic)  # noqa: E731
    brokers[1].subscribe("x.", cb)
    brokers[0].publish("x.1")
    sim.run()
    brokers[1].unsubscribe("x.", cb)
    brokers[0].publish("x.2")
    sim.run()
    assert got == ["x.1"]


def test_message_response_construction():
    req = Message(
        msg_type=MessageType.REQUEST,
        topic="a.b",
        payload={"k": 1},
        src_rank=2,
        dst_rank=5,
        matchtag=99,
    )
    resp = req.make_response({"r": 2}, errnum=0)
    assert resp.msg_type is MessageType.RESPONSE
    assert resp.dst_rank == 2 and resp.src_rank == 5
    assert resp.matchtag == 99


def test_response_to_non_request_rejected():
    ev = Message(msg_type=MessageType.EVENT, topic="x")
    with pytest.raises(ValueError):
        ev.make_response()


def test_matchtags_unique():
    tags = {Message.new_matchtag() for _ in range(1000)}
    assert len(tags) == 1000


def test_message_counters():
    sim, brokers = make_brokers()
    brokers[1].register_service("svc", lambda b, m: b.respond(m, {}))
    brokers[0].rpc(1, "svc")
    sim.run()
    assert brokers[0].messages_sent >= 1
    assert brokers[1].messages_delivered >= 1
