"""Regression pins for BatchSampler group management (ISSUE 8).

A node agent enrolled mid-run (broker restart reload, lifecycle
``enroll``) used to spawn a fresh singleton ``(interval, now)`` group —
its own periodic engine event forever — even when an existing group's
grid landed on exactly the same instants. The fix
(:meth:`BatchSampler._aligned_group`) joins the existing group whenever
the nominal tick grids are bitwise identical. These tests pin both
alignment branches and the no-alignment fallback.
"""

from __future__ import annotations

from repro.flux.instance import FluxInstance
from repro.monitor.module import attach_monitor
from repro.monitor.sampler import sampler_of


def _instance(n_nodes: int = 4):
    inst = FluxInstance(platform="lassen", n_nodes=n_nodes, seed=3)
    monitor = attach_monitor(inst, sample_interval_s=2.0)
    return inst, monitor


def test_mid_run_enrolment_joins_aligned_group_after_tick():
    """Reload at a grid instant whose tick already fired: same group."""
    inst, monitor = _instance()
    sampler = sampler_of(inst.sim)
    inst.run_for(6.0)  # grid ticks at 0, 2, 4, 6 have fired
    assert len(sampler._groups) == 1
    (group,) = sampler._groups.values()
    assert group.last_tick_t == 6.0

    agent = monitor.reload_agent(2)
    assert len(sampler._groups) == 1, "reload must not spawn a singleton group"
    assert agent in group.agents
    # The catch-up sample (the legacy timer would also have fired at
    # this instant) plus the subsequent grid ticks, all on the grid.
    inst.run_for(4.0)
    times = [t for t, _sample in agent.buffer.snapshot()]
    assert times == [6.0, 8.0, 10.0]


def test_mid_run_enrolment_joins_group_with_pending_tick():
    """Reload at a grid instant *before* the tick fires: same group,
    and the imminent group tick covers the newcomer (no catch-up)."""
    inst, monitor = _instance()
    sampler = sampler_of(inst.sim)
    inst.run_for(3.0)
    reloaded = []
    # Scheduled now (seq < the group event's re-arm at t=4), so this
    # runs at t=6.0 ahead of the group tick: the aligned group is found
    # via its pending event time, not last_tick_t.
    inst.sim.schedule(3.0, lambda: reloaded.append(monitor.reload_agent(2)))
    inst.run_for(7.0)
    assert len(sampler._groups) == 1
    (group,) = sampler._groups.values()
    (agent,) = reloaded
    assert agent in group.agents
    times = [t for t, _sample in agent.buffer.snapshot()]
    assert times == [6.0, 8.0, 10.0]


def test_off_grid_enrolment_still_gets_its_own_group():
    """An agent restarted mid-interval keeps its own grid (own group):
    grouping stays exact, never approximate."""
    inst, monitor = _instance()
    sampler = sampler_of(inst.sim)
    inst.run_for(5.0)  # between the 4.0 and 6.0 ticks
    agent = monitor.reload_agent(1)
    assert len(sampler._groups) == 2
    inst.run_for(4.2)
    times = [t for t, _sample in agent.buffer.snapshot()]
    assert times == [5.0, 7.0, 9.0]


def test_emptied_group_cancels_event_and_is_reaped():
    """Unregistering the last member cancels the group's engine event."""
    inst, monitor = _instance(n_nodes=2)
    sampler = sampler_of(inst.sim)
    inst.run_for(5.0)
    monitor.reload_agent(0)  # off-grid: new group at (2.0, 5.0) ...
    monitor.reload_agent(1)  # ... which the second reload joins; the
    # original (2.0, 0.0) group empties out and is reaped.
    assert len(sampler._groups) == 1
    for agent in monitor.node_agents:
        sampler.unregister(agent)
    assert not sampler._groups
