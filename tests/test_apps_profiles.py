"""Calibration tests: the five profiles against the paper's numbers."""

import pytest

from repro.apps.registry import (
    get_profile,
    list_apps,
    register_profile,
    unregister_profile,
)
from repro.apps.base import AppProfile, PlatformDemand


PAPER_APPS = ["gemm", "laghos", "lammps", "nqueens", "quicksilver"]
BUILTIN_APPS = PAPER_APPS + ["kripke", "sw4lite", "hacc"]


def test_registry_lists_all_five_apps():
    assert set(PAPER_APPS) <= set(list_apps())


def test_registry_holds_exactly_the_builtins():
    # Canary for order independence: a test that registers a custom
    # profile and leaks it makes this fail under REPRO_TEST_SHUFFLE.
    assert list_apps() == sorted(BUILTIN_APPS)


def test_registry_unknown_app():
    with pytest.raises(KeyError):
        get_profile("hpl")


def test_registry_caches_profiles():
    assert get_profile("gemm") is get_profile("gemm")


def test_register_custom_profile():
    def factory():
        return AppProfile(
            name="custom",
            scaling="weak",
            launcher="mpi",
            base_runtime_s=10.0,
            ref_nodes=1,
            gpu_frac=0.5,
            cpu_frac=0.3,
            beta_gpu=0.8,
            gamma_gpu=1.5,
            demand={"lassen": PlatformDemand(10.0, 5.0, 20.0)},
        )

    register_profile("custom", factory)
    try:
        assert get_profile("custom").name == "custom"
    finally:
        unregister_profile("custom")
    assert "custom" not in list_apps()


# ---------------------------------------------------------------------------
# Table II runtime calibration (unconstrained, no jitter)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "app,platform,nodes,expected",
    [
        ("lammps", "lassen", 4, 77.17),
        ("lammps", "lassen", 8, 46.33),
        ("lammps", "tioga", 4, 51.00),
        ("laghos", "lassen", 4, 12.55),
        ("laghos", "tioga", 4, 26.71),
        ("quicksilver", "tioga", 4, 102.03),
    ],
)
def test_runtime_calibration(app, platform, nodes, expected):
    p = get_profile(app)
    assert p.runtime_s(platform, nodes) == pytest.approx(expected, rel=0.05)


def test_quicksilver_tioga_anomaly_factor():
    """The HIP variant is ~8x slower (Section IV-A)."""
    p = get_profile("quicksilver")
    ratio = p.runtime_s("tioga", 4) / p.runtime_s("lassen", 4)
    assert 7.0 < ratio < 9.0


# ---------------------------------------------------------------------------
# Table II / Fig 2 power calibration
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "app,nodes,expected",
    [
        ("lammps", 4, 1283.74),
        ("lammps", 8, 1155.08),
        ("laghos", 4, 472.91),
        ("quicksilver", 4, 546.99),
    ],
)
def test_lassen_mean_power_calibration(app, nodes, expected):
    p = get_profile(app)
    mean = p.mean_node_demand_w("lassen", nodes, node_idle_w=400.0, n_sockets=2, n_gpus=4)
    assert mean == pytest.approx(expected, rel=0.12)


def test_lammps_power_declines_with_strong_scaling():
    p = get_profile("lammps")
    p1 = p.mean_node_demand_w("lassen", 1, 400.0, 2, 4)
    p32 = p.mean_node_demand_w("lassen", 32, 400.0, 2, 4)
    assert p32 < p1


def test_weak_apps_power_flat_with_scale():
    for app in ("laghos", "quicksilver", "gemm"):
        p = get_profile(app)
        assert p.mean_node_demand_w("lassen", 1, 400.0, 2, 4) == pytest.approx(
            p.mean_node_demand_w("lassen", 32, 400.0, 2, 4)
        )


# ---------------------------------------------------------------------------
# Qualitative shapes from Section II-D / Fig 1
# ---------------------------------------------------------------------------

def test_quicksilver_is_the_periodic_app():
    assert get_profile("quicksilver").phases.period_s > 0
    assert get_profile("quicksilver").phases.gpu_depth > 0.9  # deep swings


def test_lammps_and_nqueens_are_flat():
    assert get_profile("lammps").phases.flat
    assert get_profile("nqueens").phases.flat


def test_laghos_phases_are_minor():
    ph = get_profile("laghos").phases
    assert 0 < ph.gpu_depth <= 0.4


def test_nqueens_is_cpu_only_non_mpi():
    p = get_profile("nqueens")
    assert p.launcher == "non-mpi"
    assert p.gpu_frac == 0.0
    assert p.demand["lassen"].gpu_dyn_w == 0.0


def test_gemm_is_gpu_bound():
    p = get_profile("gemm")
    assert p.gpu_frac >= 0.9


def test_all_profiles_have_all_three_platforms():
    for app in PAPER_APPS:
        p = get_profile(app)
        for platform in ("lassen", "tioga", "generic"):
            assert p.platform_demand(platform) is not None


def test_inputs_documented():
    for app in PAPER_APPS:
        assert get_profile(app).inputs
