"""Property-based tests (Hypothesis) for the two pure hot-path kernels.

* :class:`repro.monitor.buffer.CircularBuffer` — the bisect-over-ring
  ``range()`` must agree with a naive list reference on arbitrary
  nondecreasing timestamp streams and query windows, through any number
  of wraparounds; :func:`~repro.monitor.buffer.downsample_evenly` must
  bound the output, keep order, and always retain the newest sample.
* :func:`repro.manager.policies.proportional.per_node_share` /
  :func:`~repro.manager.policies.proportional.split_budget` — the
  paper's ``P_n = P_G/(N_k+N_i)`` arithmetic: shares are never
  negative, never exceed peak, and the split sums to exactly
  ``min(budget, total × peak)``.

Deterministic by construction: explicit ``derandomize=True`` settings
profile, so a tier-1 run never depends on Hypothesis' entropy.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.manager.policies.proportional import per_node_share, split_budget
from repro.monitor.buffer import CircularBuffer, downsample_evenly

settings.register_profile("repro", derandomize=True, max_examples=200)
settings.load_profile("repro")

# Timestamps arrive nondecreasing (one periodic sampler per node);
# build them as cumulative non-negative deltas.
_deltas = st.lists(
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    min_size=0,
    max_size=120,
)
_capacities = st.integers(min_value=1, max_value=40)
_windows = st.tuples(
    st.floats(min_value=-10.0, max_value=600.0, allow_nan=False),
    st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)


def _timestamps(deltas):
    out, t = [], 0.0
    for d in deltas:
        t += d
        out.append(t)
    return out


class NaiveBuffer:
    """The obvious O(n) reference the ring must agree with."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.entries = []
        self.total_appended = 0

    def append(self, ts, sample):
        self.entries.append((ts, sample))
        if len(self.entries) > self.capacity:
            self.entries.pop(0)
        self.total_appended += 1

    def range(self, t_start, t_end):
        samples = [s for ts, s in self.entries if t_start <= ts <= t_end]
        dropped = self.total_appended - len(self.entries)
        oldest = self.entries[0][0] if self.entries else None
        complete = self.total_appended == 0 or (
            oldest is not None and (oldest <= t_start or dropped == 0)
        )
        return samples, complete


@given(deltas=_deltas, capacity=_capacities, window=_windows)
def test_ring_range_matches_naive_reference(deltas, capacity, window):
    ring = CircularBuffer(capacity=capacity)
    naive = NaiveBuffer(capacity=capacity)
    for i, ts in enumerate(_timestamps(deltas)):
        ring.append(ts, {"i": i})
        naive.append(ts, {"i": i})
    t_start, width = window
    got_samples, got_complete = ring.range(t_start, t_start + width)
    want_samples, want_complete = naive.range(t_start, t_start + width)
    assert got_samples == want_samples
    assert got_complete == want_complete


@given(deltas=_deltas, capacity=_capacities)
def test_ring_accounting_through_wraparound(deltas, capacity):
    ring = CircularBuffer(capacity=capacity)
    stamps = _timestamps(deltas)
    for i, ts in enumerate(stamps):
        ring.append(ts, {"i": i})
    assert len(ring) == min(len(stamps), capacity)
    assert ring.total_appended == len(stamps)
    assert ring.dropped == len(stamps) - len(ring)
    retained = ring.snapshot()
    # Snapshot is the newest `len` entries, oldest first, in arrival order.
    assert [s["i"] for _, s in retained] == list(
        range(len(stamps) - len(ring), len(stamps))
    )
    assert all(a[0] <= b[0] for a, b in zip(retained, retained[1:]))


@given(
    n=st.integers(min_value=0, max_value=500),
    max_samples=st.integers(min_value=1, max_value=60),
)
def test_downsample_bounds_order_and_newest_sample(n, max_samples):
    samples = list(range(n))
    picked = downsample_evenly(samples, max_samples)
    assert len(picked) <= max_samples
    assert picked == sorted(picked)  # order preserved, no duplicates
    assert len(set(picked)) == len(picked)
    assert set(picked) <= set(samples)
    if samples:
        assert picked[-1] == samples[-1]  # newest sample always retained
        if max_samples > 1:
            assert picked[0] == samples[0]
    if n <= max_samples:
        assert picked == samples  # short windows pass through untouched


@given(
    budget=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    nodes=st.integers(min_value=1, max_value=792),
    peak=st.floats(min_value=1.0, max_value=5000.0, allow_nan=False),
)
def test_per_node_share_bounds(budget, nodes, peak):
    share = per_node_share(budget, nodes, peak)
    assert share >= 0.0
    assert share <= peak
    # Either everyone gets peak, or the budget is exactly consumed.
    if share < peak:
        assert math.isclose(share * nodes, budget, rel_tol=1e-12, abs_tol=1e-9)


@given(
    budget=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    widths=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=40),
    peak=st.floats(min_value=1.0, max_value=5000.0, allow_nan=False),
)
def test_split_budget_conserves_power(budget, widths, peak):
    job_nodes = {jobid: n for jobid, n in enumerate(widths)}
    shares = split_budget(budget, job_nodes, peak)
    assert set(shares) == set(job_nodes)
    assert all(v >= 0.0 for v in shares.values())
    total_nodes = sum(widths)
    expected_total = min(budget, total_nodes * peak)
    assert math.isclose(
        sum(shares.values()), expected_total, rel_tol=1e-9, abs_tol=1e-6
    )
    # Equal per-node split: a job's share is proportional to its width.
    share = per_node_share(budget, total_nodes, peak)
    for jobid, n in job_nodes.items():
        assert math.isclose(
            shares[jobid], share * n, rel_tol=1e-12, abs_tol=1e-9
        )


def test_split_budget_empty_is_empty():
    assert split_budget(1000.0, {}, 3050.0) == {}
