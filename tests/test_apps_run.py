"""Unit tests for AppRun: execution, capping response, accounting."""

import pytest

from repro.apps.registry import get_profile
from repro.apps.run import AppRun
from repro.flux.jobspec import JobRecord, Jobspec
from repro.hardware.platforms.lassen import make_lassen_node
from repro.hardware.platforms.tioga import make_tioga_node
from repro.simkernel import Simulator


def make_run(app="gemm", n_nodes=1, platform="lassen", sim=None, **kwargs):
    sim = sim or Simulator()
    maker = make_lassen_node if platform == "lassen" else make_tioga_node
    nodes = [maker(f"n{i}") for i in range(n_nodes)]
    record = JobRecord(jobid=1, spec=Jobspec(app=app, nnodes=n_nodes))
    run = AppRun(sim, record, nodes, get_profile(app), **kwargs)
    return sim, nodes, run


def test_unconstrained_runtime_matches_profile():
    sim, _, run = make_run("gemm")
    sim.run(until=1000.0)
    assert run.finished
    assert run.runtime_s == pytest.approx(274.0, abs=1.5)


def test_work_scale_doubles_runtime():
    sim, _, run = make_run("gemm", work_scale=2.0)
    sim.run(until=2000.0)
    assert run.runtime_s == pytest.approx(548.0, abs=2.0)


def test_jitter_factor_scales_runtime():
    sim, _, run = make_run("laghos", jitter_factor=1.5)
    sim.run(until=500.0)
    assert run.runtime_s == pytest.approx(12.55 * 1.5, abs=1.5)


def test_gpu_cap_slows_gemm():
    sim, nodes, run = make_run("gemm")
    nodes[0].nvml.set_all(100.0)
    sim.run(until=5000.0)
    assert run.runtime_s > 274.0 * 1.7  # deep cap hurts a lot


def test_gpu_cap_barely_affects_quicksilver():
    sim, nodes, run = make_run("quicksilver", work_scale=10.0)
    nodes[0].nvml.set_all(100.0)
    sim.run(until=5000.0)
    assert run.runtime_s < 130.0 * 1.10  # the cap-insensitive app


def test_slowest_node_paces_the_job():
    """Bulk-synchronous: capping one node slows the whole job."""
    sim, nodes, run = make_run("gemm", n_nodes=3)
    nodes[2].nvml.set_all(100.0)
    sim.run(until=5000.0)
    assert run.runtime_s > 274.0 * 1.7


def test_demand_cleared_after_completion():
    sim, nodes, run = make_run("gemm")
    sim.run(until=1000.0)
    assert nodes[0].total_power_w() == pytest.approx(400.0)


def test_energy_accounting_consistent():
    sim, _, run = make_run("laghos", n_nodes=2)
    sim.run(until=100.0)
    assert run.finished
    # Energy/node over runtime must equal avg power.
    assert run.avg_node_power_w == pytest.approx(
        run.avg_node_energy_j / run.runtime_s
    )
    # Laghos averages near 470 W on Lassen.
    assert run.avg_node_power_w == pytest.approx(470.0, rel=0.05)


def test_max_node_power_at_least_avg():
    sim, _, run = make_run("quicksilver", work_scale=5.0)
    sim.run(until=500.0)
    assert run.max_node_power_w >= run.avg_node_power_w


def test_phases_stretch_under_caps():
    """Wall-clock phase period grows when the app is throttled.

    GEMM's iteration envelope is 12 s of *progress*; a deep 120 W GPU
    cap slows the high phase, so the wall period must exceed 12 s. This
    is the physical effect FPP's period detector keys on.
    """
    profile = get_profile("gemm")

    def measure_period(cap):
        sim = Simulator()
        node = make_lassen_node("n0")
        if cap:
            node.nvml.set_all(cap)
        record = JobRecord(jobid=1, spec=Jobspec(app="gemm", nnodes=1))
        AppRun(sim, record, [node], profile, work_scale=2.0)
        highs = []

        def probe():
            g = node.gpu_domains[0].actual_w
            highs.append(g > 100.0)

        from repro.simkernel import PeriodicTimer

        PeriodicTimer(sim, 0.5, lambda t: probe())
        sim.run(until=150.0)
        edges = [i for i in range(1, len(highs)) if highs[i] and not highs[i - 1]]
        if len(edges) < 3:
            return None
        return (edges[-1] - edges[0]) / (len(edges) - 1) * 0.5

    base = measure_period(None)
    capped = measure_period(120.0)
    assert base is not None and capped is not None
    assert base == pytest.approx(12.0, abs=1.0)
    assert capped > base + 1.0


def test_overhead_fn_slows_execution():
    sim, _, run = make_run("laghos", overhead_fn=lambda node: 0.10)
    sim.run(until=200.0)
    assert run.runtime_s == pytest.approx(12.55 / 0.9, abs=1.5)


def test_mixed_platform_job_rejected():
    sim = Simulator()
    nodes = [make_lassen_node("a"), make_tioga_node("b")]
    record = JobRecord(jobid=1, spec=Jobspec(app="gemm", nnodes=2))
    with pytest.raises(ValueError):
        AppRun(sim, record, nodes, get_profile("gemm"))


def test_empty_node_list_rejected():
    sim = Simulator()
    record = JobRecord(jobid=1, spec=Jobspec(app="gemm", nnodes=1))
    with pytest.raises(ValueError):
        AppRun(sim, record, [], get_profile("gemm"))


def test_on_done_callback_invoked_once():
    calls = []
    sim, _, run = make_run("laghos", on_done=calls.append)
    sim.run(until=100.0)
    assert calls == [1]


def test_tioga_run_uses_oam_domains():
    sim, nodes, run = make_run("lammps", platform="tioga")
    sim.run(until=10.0)  # mid-run
    oam = nodes[0].gpu_domains[0]
    assert oam.demand_w > oam.spec.idle_w  # 2 GCDs of demand per OAM
    sim.run(until=5000.0)
    assert run.finished
