"""Unit tests for job dependencies (workflow DAGs)."""

import pytest

from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec, JobState


@pytest.fixture
def inst():
    return FluxInstance(platform="lassen", n_nodes=4, seed=8)


def test_dependent_waits_for_dependency(inst):
    a = inst.submit(Jobspec(app="laghos", nnodes=2))
    b = inst.submit(Jobspec(app="laghos", nnodes=2), depends_on=[a.jobid])
    inst.run_until_complete()
    assert b.t_start >= a.t_end


def test_dependent_does_not_consume_nodes_while_waiting(inst):
    a = inst.submit(Jobspec(app="laghos", nnodes=2))
    inst.submit(Jobspec(app="laghos", nnodes=4), depends_on=[a.jobid])
    # While a runs, 2 nodes stay free even though b (4 nodes) is queued.
    inst.run_for(5.0)
    assert inst.scheduler.free_count == 2
    inst.run_until_complete()


def test_diamond_dag(inst):
    a = inst.submit(Jobspec(app="laghos", nnodes=1))
    b = inst.submit(Jobspec(app="laghos", nnodes=1), depends_on=[a.jobid])
    c = inst.submit(Jobspec(app="laghos", nnodes=1), depends_on=[a.jobid])
    d = inst.submit(Jobspec(app="laghos", nnodes=2), depends_on=[b.jobid, c.jobid])
    inst.run_until_complete()
    assert b.t_start >= a.t_end and c.t_start >= a.t_end
    assert d.t_start >= max(b.t_end, c.t_end)
    # b and c were independent: they ran concurrently.
    assert b.t_start == pytest.approx(c.t_start, abs=0.1)


def test_waiting_job_does_not_block_independents(inst):
    a = inst.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.2}))
    b = inst.submit(Jobspec(app="laghos", nnodes=2), depends_on=[a.jobid])
    c = inst.submit(Jobspec(app="laghos", nnodes=2))  # independent
    inst.run_until_complete()
    # c started immediately despite b sitting ahead of it in the queue.
    assert c.t_start == 0.0
    assert b.t_start >= a.t_end


def test_unknown_dependency_rejected(inst):
    with pytest.raises(ValueError):
        inst.submit(Jobspec(app="laghos", nnodes=1), depends_on=[99])


def test_cancelled_dependency_cancels_dependents(inst):
    blocker = inst.submit(Jobspec(app="gemm", nnodes=4, params={"work_scale": 0.2}))
    a = inst.submit(Jobspec(app="laghos", nnodes=2))
    b = inst.submit(Jobspec(app="laghos", nnodes=2), depends_on=[a.jobid])
    c = inst.submit(Jobspec(app="laghos", nnodes=2), depends_on=[b.jobid])
    inst.jobmanager.cancel(a.jobid)
    inst.run_until_complete()
    assert blocker.state is JobState.COMPLETED
    assert b.state is JobState.CANCELLED
    assert c.state is JobState.CANCELLED


def test_dependency_via_rpc(inst):
    a = inst.submit(Jobspec(app="laghos", nnodes=1))
    fut = inst.brokers[1].rpc(
        0,
        "job-manager.submit",
        {"app": "laghos", "nnodes": 1, "depends_on": [a.jobid]},
    )
    inst.run_for(0.1)
    jobid = fut.value["jobid"]
    inst.run_until_complete()
    assert inst.jobmanager.jobs[jobid].t_start >= a.t_end


def test_rpc_submit_bad_dependency_errors(inst):
    from repro.flux.message import FluxRPCError

    fut = inst.brokers[1].rpc(
        0, "job-manager.submit", {"app": "laghos", "nnodes": 1, "depends_on": [42]}
    )
    inst.run_for(0.1)
    with pytest.raises(FluxRPCError):
        _ = fut.value


def test_workflow_chain_makespan(inst):
    """A 3-stage chain's makespan is the sum of stage runtimes."""
    prev = None
    for _ in range(3):
        deps = [prev.jobid] if prev else None
        prev = inst.submit(Jobspec(app="laghos", nnodes=2), depends_on=deps)
    inst.run_until_complete()
    assert inst.jobmanager.makespan_s() == pytest.approx(3 * 12.55, abs=3.0)
