"""Unit tests for the monitor's node agents and root agent."""

import pytest

from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec
from repro.monitor.module import attach_monitor
from repro.monitor.node_agent import NodeAgentModule
from repro.monitor.root_agent import GET_JOB_POWER_TOPIC


def test_node_agents_sample_on_the_grid(lassen4):
    mon = attach_monitor(lassen4, sample_interval_s=2.0)
    lassen4.run_for(10.0)
    agent = mon.agent_for_rank(0)
    # t=0 plus 5 ticks.
    assert agent.samples_taken == 6
    assert len(agent.buffer) == 6


def test_sampling_interval_configurable(lassen4):
    mon = attach_monitor(lassen4, sample_interval_s=0.5)
    lassen4.run_for(10.0)
    assert mon.agent_for_rank(1).samples_taken == 21


def test_node_agent_is_stateless_about_jobs(lassen4):
    """Samples accumulate with no job running at all."""
    mon = attach_monitor(lassen4)
    lassen4.run_for(20.0)
    assert mon.agent_for_rank(3).samples_taken > 0


def test_query_service_returns_window(lassen4):
    attach_monitor(lassen4)
    lassen4.run_for(20.0)
    fut = lassen4.brokers[0].rpc(2, "power-monitor.query", {"t_start": 4.0, "t_end": 8.0})
    lassen4.run_for(1.0)
    payload = fut.value
    assert payload["hostname"] == "lassen002"
    assert payload["complete"]
    ts = [s["timestamp"] for s in payload["samples"]]
    assert ts == [4.0, 6.0, 8.0]


def test_query_service_validates_args(lassen4):
    from repro.flux.message import FluxRPCError

    attach_monitor(lassen4)
    fut = lassen4.brokers[0].rpc(1, "power-monitor.query", {"t_start": 5.0})
    lassen4.run_for(1.0)
    with pytest.raises(FluxRPCError):
        _ = fut.value


def test_status_service(lassen4):
    attach_monitor(lassen4, buffer_capacity=50)
    lassen4.run_for(10.0)
    fut = lassen4.brokers[0].rpc(1, "power-monitor.status", {})
    lassen4.run_for(1.0)
    st = fut.value
    assert st["buffer_capacity"] == 50
    assert st["buffer_len"] == 6
    assert st["dropped"] == 0
    assert st["sample_interval_s"] == 2.0


def test_overhead_fraction_by_platform(lassen4, tioga2):
    mon_l = attach_monitor(lassen4)
    mon_t = attach_monitor(tioga2)
    assert mon_l.agent_for_rank(0).node_overhead_fraction == pytest.approx(0.0035)
    assert mon_t.agent_for_rank(0).node_overhead_fraction == pytest.approx(0.0004)


def test_root_agent_fanout_collects_all_ranks(lassen4):
    attach_monitor(lassen4)
    lassen4.run_for(10.0)
    fut = lassen4.brokers[0].rpc(
        0, GET_JOB_POWER_TOPIC, {"ranks": [0, 1, 2, 3], "t_start": 0.0, "t_end": 10.0}
    )
    lassen4.run_for(1.0)
    nodes = fut.value["nodes"]
    assert sorted(n["hostname"] for n in nodes) == [
        "lassen000",
        "lassen001",
        "lassen002",
        "lassen003",
    ]
    assert all(len(n["samples"]) == 6 for n in nodes)


def test_root_agent_rejects_empty_ranks(lassen4):
    from repro.flux.message import FluxRPCError

    attach_monitor(lassen4)
    fut = lassen4.brokers[0].rpc(
        0, GET_JOB_POWER_TOPIC, {"ranks": [], "t_start": 0.0, "t_end": 1.0}
    )
    lassen4.run_for(1.0)
    with pytest.raises(FluxRPCError):
        _ = fut.value


def test_tree_strategy_matches_fanout():
    """Hierarchical aggregation returns the same data as flat fan-out."""

    def collect(strategy):
        inst = FluxInstance(platform="lassen", n_nodes=8, seed=9)
        attach_monitor(inst, strategy=strategy)
        inst.run_for(10.0)
        fut = inst.brokers[0].rpc(
            0,
            GET_JOB_POWER_TOPIC,
            {"ranks": list(range(8)), "t_start": 0.0, "t_end": 10.0},
        )
        inst.run_for(1.0)
        nodes = sorted(fut.value["nodes"], key=lambda n: n["hostname"])
        return [(n["hostname"], len(n["samples"]), n["complete"]) for n in nodes]

    assert collect("fanout") == collect("tree")


def test_detach_unloads_agents(lassen4):
    mon = attach_monitor(lassen4)
    assert NodeAgentModule.name in lassen4.brokers[0].modules
    mon.detach()
    assert NodeAgentModule.name not in lassen4.brokers[0].modules
    # Sampling stopped.
    before = mon.agent_for_rank(0).samples_taken
    lassen4.run_for(10.0)
    assert mon.agent_for_rank(0).samples_taken == before


def test_invalid_strategy_rejected(lassen4):
    with pytest.raises(ValueError):
        attach_monitor(lassen4, strategy="gossip")
