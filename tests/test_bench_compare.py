"""``repro bench --compare``: regression gating between two artifacts.

Covers the comparison semantics the perf gate rides on: direction
inference from metric names, threshold gating in both directions, the
lenient-loader warnings (missing ``created_unix``, mismatched
``repeats``, platform drift) that older artifacts must trigger instead
of crashes, the quick-mismatch rule that un-gates duration metrics,
and the CLI exit codes verify.sh's ``bench`` stage depends on.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import compare_reports, load_report_lenient, parse_max_regress
from repro.cli import main


def _report(name, results, *, quick=False, created=1_700_000_000,
            repeats=1, platform=None):
    return {
        "schema": "repro-bench/1",
        "name": name,
        "quick": quick,
        "created_unix": created,
        "repeats": repeats,
        "platform": platform or {"python": "3.11.7", "machine": "x86_64",
                                 "numpy": "2.4.6"},
        "results": results,
    }


def _entry(benchmark, metric, value, wall_s=1.0):
    return {"benchmark": benchmark, "metric": metric, "value": value,
            "wall_s": wall_s, "params": {}}


# ---------------------------------------------------------------------------
# parse_max_regress
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "text,expect",
    [("10%", 0.10), ("5 %".replace(" ", ""), 0.05), ("0.1", 0.1), ("0", 0.0)],
)
def test_parse_max_regress_accepts_percent_and_fraction(text, expect):
    assert parse_max_regress(text) == pytest.approx(expect)


@pytest.mark.parametrize("text", ["ten percent", "-5%", "-0.1", "%"])
def test_parse_max_regress_rejects_garbage(text):
    with pytest.raises(ValueError):
        parse_max_regress(text)


# ---------------------------------------------------------------------------
# Gating directions
# ---------------------------------------------------------------------------


def test_throughput_drop_past_threshold_fails():
    base = _report("base", [_entry("sweep", "node_samples_per_s", 1000.0)])
    new = _report("new", [_entry("sweep", "node_samples_per_s", 800.0)])
    result = compare_reports(base, new, 0.10)
    assert not result.ok
    (bad,) = result.regressions()
    assert bad.regress == pytest.approx(0.20)
    assert "FAIL" in result.summary()


def test_throughput_gain_passes_and_reports_speedup():
    base = _report("base", [_entry("sweep", "node_samples_per_s", 1000.0)])
    new = _report("new", [_entry("sweep", "node_samples_per_s", 14_300.0)])
    result = compare_reports(base, new, 0.10)
    assert result.ok
    (delta,) = result.deltas
    assert delta.speedup == pytest.approx(14.3)


def test_duration_increase_past_threshold_fails():
    base = _report("base", [_entry("sweep", "wall_s", 1.0)])
    new = _report("new", [_entry("sweep", "wall_s", 1.3)])
    result = compare_reports(base, new, 0.10)
    assert not result.ok
    (bad,) = result.regressions()
    assert bad.regress == pytest.approx(0.30)


def test_unknown_metric_shown_but_never_gated():
    base = _report("base", [_entry("sweep", "peak_rss_bytes", 10.0)])
    new = _report("new", [_entry("sweep", "peak_rss_bytes", 1e9)])
    result = compare_reports(base, new, 0.0)
    assert result.ok
    assert result.deltas[0].regress is None
    assert "(not gated)" in "\n".join(result.table_rows())


def test_quick_mismatch_ungates_durations_but_not_throughputs():
    base = _report(
        "base",
        [_entry("sweep", "wall_s", 1.0),
         _entry("sweep", "node_samples_per_s", 1000.0)],
        quick=False,
    )
    new = _report(
        "new",
        [_entry("sweep", "wall_s", 50.0),  # bigger size: meaningless diff
         _entry("sweep", "node_samples_per_s", 100.0)],  # real regression
        quick=True,
    )
    result = compare_reports(base, new, 0.10)
    assert any("quick flags differ" in w for w in result.warnings)
    by_metric = {d.metric: d for d in result.deltas}
    assert by_metric["wall_s"].regress is None
    assert by_metric["node_samples_per_s"].regress == pytest.approx(0.90)
    assert not result.ok


def test_disjoint_benchmarks_reported_not_crashed():
    base = _report("base", [_entry("old_bench", "wall_s", 1.0)])
    new = _report("new", [_entry("new_bench", "wall_s", 1.0)])
    result = compare_reports(base, new, 0.10)
    assert result.ok  # nothing comparable, nothing gated
    assert result.only_base == ["old_bench (wall_s)"]
    assert result.only_new == ["new_bench (wall_s)"]


# ---------------------------------------------------------------------------
# Metadata warnings (the satellite fix: warn, don't crash)
# ---------------------------------------------------------------------------


def test_missing_created_unix_warns_instead_of_crashing():
    base = _report("base", [_entry("b", "wall_s", 1.0)], created=0)
    new = _report("new", [_entry("b", "wall_s", 1.0)])
    del base["created_unix"]
    result = compare_reports(base, new, 0.10)
    assert result.ok
    assert any("created_unix" in w for w in result.warnings)


def test_reversed_timestamps_warn():
    base = _report("base", [_entry("b", "wall_s", 1.0)], created=2_000)
    new = _report("new", [_entry("b", "wall_s", 1.0)], created=1_000)
    result = compare_reports(base, new, 0.10)
    assert any("predates" in w for w in result.warnings)


def test_mismatched_repeats_warn():
    base = _report("base", [_entry("b", "wall_s", 1.0)], repeats=5)
    new = _report("new", [_entry("b", "wall_s", 1.0)], repeats=3)
    result = compare_reports(base, new, 0.10)
    assert result.ok
    assert any("best-of-5" in w and "best-of-3" in w for w in result.warnings)


def test_string_created_unix_warns_instead_of_crashing():
    # Hand-edited artifacts in the wild carry ISO strings here; the old
    # loader warned and then crashed comparing str > int for ordering.
    base = _report("base", [_entry("b", "wall_s", 1.0)], created="2024-01-01")
    new = _report("new", [_entry("b", "wall_s", 1.0)])
    result = compare_reports(base, new, 0.10)
    assert result.ok
    assert any("no usable" in w and "created_unix" in w for w in result.warnings)
    assert not any("predates" in w for w in result.warnings)


def test_bool_created_unix_is_not_a_timestamp():
    # True passes isinstance(int) and True > 0 — it must still warn.
    base = _report("base", [_entry("b", "wall_s", 1.0)], created=True)
    new = _report("new", [_entry("b", "wall_s", 1.0)])
    result = compare_reports(base, new, 0.10)
    assert result.ok
    assert any("no usable" in w and "created_unix" in w for w in result.warnings)


def test_float_vs_int_repeats_do_not_warn():
    # A JSON round trip through another tool may float-ify repeats;
    # 3 vs 3.0 is the same best-of policy, not a mismatch.
    base = _report("base", [_entry("b", "wall_s", 1.0)], repeats=3)
    new = _report("new", [_entry("b", "wall_s", 1.0)], repeats=3.0)
    result = compare_reports(base, new, 0.10)
    assert not any("repeats differ" in w for w in result.warnings)


def test_non_numeric_repeats_warn_without_crashing():
    base = _report("base", [_entry("b", "wall_s", 1.0)], repeats="five")
    new = _report("new", [_entry("b", "wall_s", 1.0)], repeats=5)
    result = compare_reports(base, new, 0.10)
    assert result.ok
    assert any("repeats differ" in w for w in result.warnings)


def test_platform_drift_warns_including_numpy():
    base = _report("base", [_entry("b", "wall_s", 1.0)])
    new = _report(
        "new", [_entry("b", "wall_s", 1.0)],
        platform={"python": "3.11.7", "machine": "x86_64", "numpy": None},
    )
    result = compare_reports(base, new, 0.10)
    assert any("platform.numpy" in w for w in result.warnings)


# ---------------------------------------------------------------------------
# Lenient loader + CLI exit codes
# ---------------------------------------------------------------------------


def _write(tmp_path, name, report):
    path = tmp_path / name
    path.write_text(json.dumps(report))
    return str(path)


def test_lenient_loader_rejects_wrong_schema_and_empty_results(tmp_path):
    bad_schema = _write(tmp_path, "a.json",
                        {"schema": "repro-bench/999", "results": [{}]})
    with pytest.raises(ValueError):
        load_report_lenient(bad_schema)
    empty = _write(tmp_path, "b.json",
                   {"schema": "repro-bench/1", "results": []})
    with pytest.raises(ValueError):
        load_report_lenient(empty)


def test_cli_compare_exit_codes(tmp_path, capsys):
    base = _write(
        tmp_path, "base.json",
        _report("base", [_entry("sweep", "node_samples_per_s", 1000.0)],
                created=0),
    )
    good = _write(
        tmp_path, "good.json",
        _report("good", [_entry("sweep", "node_samples_per_s", 1500.0)]),
    )
    bad = _write(
        tmp_path, "bad.json",
        _report("bad", [_entry("sweep", "node_samples_per_s", 500.0)]),
    )

    assert main(["bench", "--compare", base, good, "--max-regress", "10%"]) == 0
    out = capsys.readouterr()
    assert "OK" in out.out
    assert "created_unix" in out.err  # warning surfaced, not fatal

    assert main(["bench", "--compare", base, bad, "--max-regress", "10%"]) == 1
    assert "FAIL" in capsys.readouterr().out

    assert main(["bench", "--compare", base, str(tmp_path / "nope.json")]) == 2
    assert main(["bench", "--compare", base, good, "--max-regress", "oops"]) == 2
