"""Failure propagation through composite waitables (AllOf/AnyOf)."""

import pytest

from repro.simkernel import AllOf, AnyOf, Process, SimEvent, Simulator, Timeout


def test_allof_propagates_first_failure():
    sim = Simulator()
    good = SimEvent(sim)
    bad = SimEvent(sim)
    caught = []

    def gen():
        try:
            yield AllOf(sim, [good, bad])
        except ValueError as exc:
            caught.append((sim.now, str(exc)))

    Process(sim, gen())
    sim.schedule(1.0, bad.fail, ValueError("boom"))
    sim.schedule(5.0, good.succeed, "late")
    sim.run()
    assert caught and caught[0][1] == "boom"
    assert caught[0][0] == pytest.approx(1.0)  # did not wait for 'good'


def test_allof_success_after_failure_is_ignored():
    sim = Simulator()
    a = SimEvent(sim)
    b = SimEvent(sim)
    outcomes = []

    def gen():
        try:
            res = yield AllOf(sim, [a, b])
            outcomes.append(("ok", res))
        except RuntimeError:
            outcomes.append(("err", None))

    Process(sim, gen())
    sim.schedule(1.0, a.fail, RuntimeError("x"))
    sim.schedule(2.0, b.succeed, 42)
    sim.run()
    assert outcomes == [("err", None)]


def test_anyof_failure_wins_race():
    sim = Simulator()
    slow_ok = Timeout(10.0, "fine")
    bad = SimEvent(sim)
    caught = []

    def gen():
        try:
            yield AnyOf(sim, [slow_ok, bad])
        except KeyError as exc:
            caught.append(sim.now)

    Process(sim, gen())
    sim.schedule(1.0, bad.fail, KeyError("nope"))
    sim.run()
    assert caught == [pytest.approx(1.0)]


def test_anyof_success_beats_later_failure():
    sim = Simulator()
    fast = Timeout(1.0, "winner")
    bad = SimEvent(sim)
    got = []

    def gen():
        idx, res = yield AnyOf(sim, [fast, bad])
        got.append((idx, res))

    Process(sim, gen())
    sim.schedule(5.0, bad.fail, ValueError("late loser"))
    sim.run()
    assert got == [(0, "winner")]


def test_allof_of_rpcs_surfaces_service_errors():
    """The shape the monitor's root agent depends on."""
    from repro.flux.broker import Broker
    from repro.flux.message import FluxRPCError
    from repro.flux.overlay import TBON

    sim = Simulator()
    registry = {}
    brokers = [Broker(sim, r, TBON(size=3), registry=registry) for r in range(3)]
    brokers[1].register_service("ok", lambda b, m: b.respond(m, {"v": 1}))
    # rank 2 has no service: errnum 38.
    caught = []

    def gen():
        futs = [brokers[0].rpc(1, "ok"), brokers[0].rpc(2, "ok")]
        try:
            yield AllOf(sim, futs)
        except FluxRPCError as exc:
            caught.append(exc.errnum)

    Process(sim, gen())
    sim.run()
    assert caught == [38]
