"""Unit tests for the discrete-event engine."""

import pytest

from repro.simkernel import Simulator
from repro.simkernel.engine import SimulationError


def test_initial_time_defaults_to_zero():
    assert Simulator().now == 0.0


def test_initial_time_configurable():
    assert Simulator(start_time=5.0).now == 5.0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.0]
    assert sim.now == 3.0


def test_callbacks_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_priority_breaks_ties_before_sequence():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "low", priority=1)
    sim.schedule(1.0, seen.append, "high", priority=0)
    sim.run()
    assert seen == ["high", "low"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_nonfinite_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    seen = []
    ev = sim.schedule(1.0, seen.append, "x")
    ev.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_run_until_stops_before_future_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(10.0, seen.append, "b")
    sim.run(until=5.0)
    assert seen == ["a"]
    assert sim.now == 5.0  # clock advanced to the horizon


def test_run_until_resumes_later():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, seen.append, "b")
    sim.run(until=5.0)
    sim.run()
    assert seen == ["b"]


def test_callback_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.schedule(1.0, lambda: seen.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == 2.0


def test_zero_delay_events_run_at_same_time_after_pending():
    sim = Simulator()
    seen = []

    def first():
        sim.schedule(0.0, seen.append, "later")
        seen.append("first")

    sim.schedule(1.0, first)
    sim.schedule(1.0, seen.append, "second")
    sim.run()
    assert seen == ["first", "second", "later"]


def test_max_events_guard_trips_on_runaway():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_step_returns_false_on_empty_heap():
    assert Simulator().step() is False


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    ev = sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.pending() == 1


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_args_passed_to_callback():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, 2)
    sim.run()
    assert seen == [(1, 2)]
