"""Unit tests for the discrete-event engine."""

import pytest

from repro.simkernel import Simulator
from repro.simkernel.engine import SimulationError


def test_initial_time_defaults_to_zero():
    assert Simulator().now == 0.0


def test_initial_time_configurable():
    assert Simulator(start_time=5.0).now == 5.0


def test_schedule_and_run_advances_clock():
    sim = Simulator()
    seen = []
    sim.schedule(3.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.0]
    assert sim.now == 3.0


def test_callbacks_run_in_time_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, seen.append, "b")
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(3.0, seen.append, "c")
    sim.run()
    assert seen == ["a", "b", "c"]


def test_same_time_events_run_in_schedule_order():
    sim = Simulator()
    seen = []
    for i in range(10):
        sim.schedule(1.0, seen.append, i)
    sim.run()
    assert seen == list(range(10))


def test_priority_breaks_ties_before_sequence():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "low", priority=1)
    sim.schedule(1.0, seen.append, "high", priority=0)
    sim.run()
    assert seen == ["high", "low"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_nonfinite_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("inf"), lambda: None)


def test_schedule_at_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    seen = []
    ev = sim.schedule(1.0, seen.append, "x")
    ev.cancel()
    sim.run()
    assert seen == []


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_run_until_stops_before_future_events():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, seen.append, "a")
    sim.schedule(10.0, seen.append, "b")
    sim.run(until=5.0)
    assert seen == ["a"]
    assert sim.now == 5.0  # clock advanced to the horizon


def test_run_until_resumes_later():
    sim = Simulator()
    seen = []
    sim.schedule(10.0, seen.append, "b")
    sim.run(until=5.0)
    sim.run()
    assert seen == ["b"]


def test_callback_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append("first")
        sim.schedule(1.0, lambda: seen.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == ["first", "second"]
    assert sim.now == 2.0


def test_zero_delay_events_run_at_same_time_after_pending():
    sim = Simulator()
    seen = []

    def first():
        sim.schedule(0.0, seen.append, "later")
        seen.append("first")

    sim.schedule(1.0, first)
    sim.schedule(1.0, seen.append, "second")
    sim.run()
    assert seen == ["first", "second", "later"]


def test_max_events_guard_trips_on_runaway():
    sim = Simulator()

    def loop():
        sim.schedule(0.0, loop)

    sim.schedule(0.0, loop)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_step_returns_false_on_empty_heap():
    assert Simulator().step() is False


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_pending_excludes_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    ev = sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.pending() == 1


def test_run_is_not_reentrant():
    sim = Simulator()

    def reenter():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, reenter)
    sim.run()


def test_args_passed_to_callback():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda a, b: seen.append((a, b)), 1, 2)
    sim.run()
    assert seen == [(1, 2)]


# ----------------------------------------------------------------------
# ISSUE 3: hot-path engine (O(1) pending, compaction, schedule_periodic,
# exact max_events)
# ----------------------------------------------------------------------
def test_max_events_raises_after_exactly_n():
    """The guard must refuse to execute event N+1, not event N+2."""
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.run(max_events=4)
    assert sim.events_processed == 4  # exactly N ran before the raise


def test_max_events_allows_exactly_n_events():
    """A heap holding exactly N events drains cleanly under max_events=N."""
    sim = Simulator()
    seen = []
    for i in range(5):
        sim.schedule(1.0, seen.append, i)
    sim.run(max_events=5)
    assert seen == list(range(5))


def test_pending_counter_tracks_schedule_cancel_and_fire():
    sim = Simulator()
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending() == 10
    events[0].cancel()
    events[0].cancel()  # double-cancel must not double-decrement
    assert sim.pending() == 9
    sim.run(until=5.0)  # fires events at t=2..5 (t=1 was cancelled)
    assert sim.pending() == 5
    sim.run()
    assert sim.pending() == 0


def test_cancel_after_fire_does_not_corrupt_pending():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    ev.cancel()  # already fired; must be a no-op for the counter
    assert sim.pending() == 1
    sim.run()
    assert sim.pending() == 0


def test_heap_stays_bounded_under_cancel_churn():
    """Regression for the cancelled-event heap leak: dead entries used to
    stay on the heap forever; compaction must keep it bounded."""
    sim = Simulator()
    keep = sim.schedule(1e9, lambda: None)  # one live far-future event
    for _ in range(50):
        handles = [sim.schedule(1e8, lambda: None) for _ in range(1000)]
        for handle in handles:
            handle.cancel()
    assert sim.pending() == 1
    # 50k cancelled entries were pushed; the heap must not retain them.
    assert len(sim._heap) < 2500
    keep.cancel()


def test_compaction_preserves_execution_order():
    sim = Simulator()
    seen = []
    handles = []
    for i in range(500):
        handles.append(sim.schedule((i * 13 % 101) / 10.0, seen.append, i))
    for handle in handles[::2]:
        handle.cancel()  # cancel enough to trigger compaction
    sim.run()
    expected = [i for i in range(500) if i % 2 == 1]
    expected.sort(key=lambda i: ((i * 13 % 101) / 10.0, i))
    assert seen == expected


def test_schedule_periodic_fires_on_nominal_grid():
    sim = Simulator()
    seen = []
    ev = sim.schedule_periodic(2.0, lambda: seen.append(sim.now))
    sim.run(until=10.0)
    assert seen == [2.0, 4.0, 6.0, 8.0, 10.0]
    ev.cancel()
    sim.run(until=20.0)
    assert seen == [2.0, 4.0, 6.0, 8.0, 10.0]
    assert sim.pending() == 0


def test_schedule_periodic_start_delay_and_first_time():
    sim = Simulator()
    seen = []
    ev = sim.schedule_periodic(2.0, lambda: seen.append(sim.now), start_delay=0.5)
    sim.run(until=5.0)
    assert seen == [0.5, 2.5, 4.5]
    ev.cancel()
    seen.clear()
    ev = sim.schedule_periodic(2.0, lambda: seen.append(sim.now), first_time=6.0)
    sim.run(until=10.0)
    assert seen == [6.0, 8.0, 10.0]
    ev.cancel()


def test_schedule_periodic_matches_oneshot_rescheduling_order():
    """The reused-event fast path must interleave with other same-time
    events exactly like a re-scheduling one-shot timer would."""

    def trace(use_periodic):
        sim = Simulator()
        seen = []

        if use_periodic:
            handle = sim.schedule_periodic(1.0, lambda: seen.append(("p", sim.now)))
        else:
            def fire():
                nonlocal pending
                pending = sim.schedule(1.0, fire)  # re-arm before the work
                seen.append(("p", sim.now))

            pending = sim.schedule(1.0, fire)
            handle = None
        # A competing same-time event scheduled later each tick.
        def rival():
            seen.append(("r", sim.now))
        for t in range(1, 6):
            sim.schedule_at(float(t), rival)
        sim.run(until=5.0)
        if handle is not None:
            handle.cancel()
        return seen

    assert trace(True) == trace(False)


def test_schedule_periodic_rejects_bad_period():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_periodic(0.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_periodic(float("nan"), lambda: None)
