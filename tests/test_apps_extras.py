"""Unit tests for the Section V applications (SW4lite, Kripke)."""

import pytest

from repro.apps.extras import (
    KRIPKE_TIOGA_FAIL_AT_S,
    kripke_jobspec_params,
)
from repro.apps.registry import get_profile, list_apps
from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec, JobState


def test_extras_registered():
    assert "sw4lite" in list_apps()
    assert "kripke" in list_apps()


def test_sw4lite_runs_on_lassen():
    inst = FluxInstance(platform="lassen", n_nodes=2, seed=27)
    rec = inst.submit(Jobspec(app="sw4lite", nnodes=2))
    inst.run_until_complete(timeout_s=100_000)
    assert rec.state is JobState.COMPLETED
    assert rec.runtime_s == pytest.approx(90.0, rel=0.05)


def test_sw4lite_has_no_hip_variant():
    """No Tioga demand entry: launch fails like a missing build."""
    p = get_profile("sw4lite")
    with pytest.raises(KeyError):
        p.platform_demand("tioga")
    inst = FluxInstance(platform="tioga", n_nodes=2, seed=27)
    inst.submit(Jobspec(app="sw4lite", nnodes=2))
    with pytest.raises(KeyError):
        inst.run_until_complete(timeout_s=100_000)


def test_kripke_runs_on_lassen():
    inst = FluxInstance(platform="lassen", n_nodes=2, seed=27)
    rec = inst.submit(Jobspec(app="kripke", nnodes=2))
    inst.run_until_complete(timeout_s=100_000)
    assert rec.state is JobState.COMPLETED


def test_kripke_fails_on_tioga():
    """Section V: 'Kripke execution failed on the Tioga system'."""
    inst = FluxInstance(platform="tioga", n_nodes=2, seed=27)
    params = kripke_jobspec_params("tioga")
    rec = inst.submit(Jobspec(app="kripke", nnodes=2, params=params))
    inst.run_until_complete(timeout_s=100_000)
    assert rec.state is JobState.FAILED
    assert rec.t_end <= KRIPKE_TIOGA_FAIL_AT_S + 5.0


def test_kripke_params_untouched_on_lassen():
    params = kripke_jobspec_params("lassen", work_scale=2.0)
    assert params == {"work_scale": 2.0}
    assert "fail_at_s" not in params
