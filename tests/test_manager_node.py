"""Unit tests for the node-level manager."""

import pytest

from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec
from repro.manager.module import attach_manager
from repro.manager.cluster_manager import ManagerConfig
from repro.manager.node_manager import (
    JOB_DEPARTED_TOPIC,
    SET_LIMIT_TOPIC,
    NodeManagerModule,
)
from repro.manager.policies import ProportionalPolicy, StaticPolicy


def manager_on(instance, policy="proportional", static_cap=None):
    return attach_manager(
        instance,
        ManagerConfig(
            global_cap_w=9600.0, policy=policy, static_node_cap_w=static_cap
        ),
    )


def test_static_node_cap_installed_at_load(lassen4):
    manager_on(lassen4, policy="static", static_cap=1950.0)
    for node in lassen4.nodes:
        assert node.opal.node_cap_w == 1950.0
        assert node.gpu_domains[0].get_cap("opal") == pytest.approx(253.0, abs=1.0)


def test_set_limit_service_enforces_gpu_caps(lassen4):
    mgr = manager_on(lassen4)
    fut = lassen4.brokers[0].rpc(2, SET_LIMIT_TOPIC, {"limit_w": 1200.0, "jobid": 7})
    lassen4.run_for(1.0)
    assert fut.value["limit_w"] == 1200.0
    nm = mgr.node_manager_for_rank(2)
    assert nm.node_limit_w == 1200.0
    assert nm.current_jobid == 7
    caps = [g.get_cap("nvml") for g in lassen4.nodes[2].gpu_domains]
    assert all(c is not None for c in caps)
    assert len(set(caps)) == 1  # uniform split


def test_set_limit_validates_payload(lassen4):
    from repro.flux.message import FluxRPCError

    manager_on(lassen4)
    fut = lassen4.brokers[0].rpc(1, SET_LIMIT_TOPIC, {"limit_w": -5.0})
    lassen4.run_for(1.0)
    with pytest.raises(FluxRPCError):
        _ = fut.value


def test_gpu_budget_respects_cap_range(lassen4):
    mgr = manager_on(lassen4)
    nm = mgr.node_manager_for_rank(0)
    # Very low node limit: budget/4 < 100 W floor -> clamped to 100.
    assert nm.derive_gpu_share(500.0) == 100.0
    # Very high limit: clamped to the 300 W device max.
    assert nm.derive_gpu_share(3000.0) == 300.0


def test_non_gpu_estimate_refines_with_measurements(lassen4):
    mgr = manager_on(lassen4)
    nm = mgr.node_manager_for_rank(0)
    initial = nm.non_gpu_power_w()
    lassen4.nodes[0].apply_demand({"cpu0": 250.0, "cpu1": 250.0, "memory0": 150.0})
    lassen4.run_for(30.0)  # several tracker samples
    refined = nm.non_gpu_power_w()
    assert refined > initial
    # Converges towards actual non-GPU power: 500 cpu + 150 mem + 90 uncore.
    assert refined == pytest.approx(740.0, rel=0.05)


def test_job_departed_resets_state(lassen4):
    mgr = manager_on(lassen4)
    lassen4.brokers[0].rpc(1, SET_LIMIT_TOPIC, {"limit_w": 1000.0, "jobid": 3})
    lassen4.run_for(1.0)
    lassen4.brokers[0].rpc(1, JOB_DEPARTED_TOPIC, {"jobid": 3})
    lassen4.run_for(1.0)
    nm = mgr.node_manager_for_rank(1)
    assert nm.current_jobid is None
    assert nm.node_limit_w is None
    assert all(g.get_cap("nvml") is None for g in lassen4.nodes[1].gpu_domains)


def test_new_jobid_resets_policy(lassen4):
    mgr = manager_on(lassen4, policy="fpp")
    lassen4.brokers[0].rpc(0, SET_LIMIT_TOPIC, {"limit_w": 1200.0, "jobid": 1})
    lassen4.run_for(1.0)
    nm = mgr.node_manager_for_rank(0)
    nm.policy.controllers[0].converged = True
    lassen4.brokers[0].rpc(0, SET_LIMIT_TOPIC, {"limit_w": 1400.0, "jobid": 2})
    lassen4.run_for(1.0)
    assert not nm.policy.controllers[0].converged  # fresh controllers


def test_status_service(lassen4):
    manager_on(lassen4)
    fut = lassen4.brokers[0].rpc(3, "power-manager.status", {})
    lassen4.run_for(1.0)
    st = fut.value
    assert st["rank"] == 3
    assert st["policy"]["policy"] == "proportional"


def test_tioga_cap_failures_counted(tioga2):
    """Capping is refused on Tioga; the manager records the failures."""
    mgr = attach_manager(
        tioga2,
        ManagerConfig(global_cap_w=5000.0, policy="proportional"),
    )
    nm = mgr.node_manager_for_rank(0)
    nm.set_gpu_cap(0, 300.0)
    assert nm.cap_request_failures >= 1


def test_set_gpu_cap_skips_redundant_requests(lassen4):
    mgr = manager_on(lassen4)
    nm = mgr.node_manager_for_rank(0)
    nm.set_gpu_cap(0, 200.0)
    before = lassen4.nodes[0].nvml.requests
    nm.set_gpu_cap(0, 200.0)  # same value: no driver call
    assert lassen4.nodes[0].nvml.requests == before


def test_static_policy_never_touches_dials(lassen4):
    mgr = manager_on(lassen4, policy="static", static_cap=1950.0)
    nm = mgr.node_manager_for_rank(0)
    nm.policy.on_node_limit(1200.0)
    assert all(g.get_cap("nvml") is None for g in lassen4.nodes[0].gpu_domains)


def test_proportional_policy_clears_caps_when_unconstrained(lassen4):
    mgr = manager_on(lassen4)
    nm = mgr.node_manager_for_rank(0)
    nm.enforce_limit_via_gpus(1200.0)
    assert lassen4.nodes[0].gpu_domains[0].get_cap("nvml") is not None
    nm.policy.on_node_limit(None)
    assert lassen4.nodes[0].gpu_domains[0].get_cap("nvml") is None
