"""Unit tests for the cluster-level manager and job-level manager."""

import pytest

from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig
from repro.manager.module import attach_manager


def test_unconstrained_cluster_never_caps(lassen4):
    mgr = attach_manager(lassen4, ManagerConfig(global_cap_w=None, policy="proportional"))
    rec = lassen4.submit(Jobspec(app="gemm", nnodes=4))
    lassen4.run_for(30.0)
    assert mgr.cluster.per_node_share_w() is None
    nm = mgr.node_manager_for_rank(0)
    assert nm.node_limit_w is None
    lassen4.run_until_complete()


def test_share_is_budget_over_active_nodes(lassen4):
    mgr = attach_manager(
        lassen4, ManagerConfig(global_cap_w=4800.0, policy="proportional")
    )
    lassen4.submit(Jobspec(app="gemm", nnodes=2))
    lassen4.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 20}))
    lassen4.run_for(10.0)
    # 4 active nodes, 4800 W budget -> 1200 W each.
    assert mgr.cluster.per_node_share_w() == pytest.approx(1200.0)
    for rank in range(4):
        assert mgr.node_manager_for_rank(rank).node_limit_w == pytest.approx(1200.0)
    lassen4.run_until_complete(timeout_s=100000)


def test_budget_allows_peak_when_underutilised(lassen4):
    mgr = attach_manager(
        lassen4, ManagerConfig(global_cap_w=9600.0, node_peak_w=3050.0, policy="proportional")
    )
    lassen4.submit(Jobspec(app="laghos", nnodes=2))  # 2*3050 < 9600
    lassen4.run_for(5.0)
    assert mgr.cluster.per_node_share_w() == pytest.approx(3050.0)
    lassen4.run_until_complete()


def test_share_reclaimed_on_job_exit(lassen4):
    mgr = attach_manager(
        lassen4, ManagerConfig(global_cap_w=4800.0, policy="proportional")
    )
    lassen4.submit(Jobspec(app="gemm", nnodes=2))  # long
    lassen4.submit(Jobspec(app="laghos", nnodes=2))  # short (~12.6 s)
    lassen4.run_for(60.0)
    # laghos gone: gemm's 2 nodes share the whole 4800 -> 2400 each.
    assert mgr.cluster.per_node_share_w() == pytest.approx(2400.0)
    lassen4.run_until_complete(timeout_s=100000)


def test_share_log_records_transitions(lassen4):
    mgr = attach_manager(
        lassen4, ManagerConfig(global_cap_w=4800.0, policy="proportional")
    )
    lassen4.submit(Jobspec(app="gemm", nnodes=2))
    lassen4.submit(Jobspec(app="laghos", nnodes=2))
    lassen4.run_until_complete(timeout_s=100000)
    shares = [s for (_, _, s) in mgr.share_log if s is not None]
    assert 1200.0 in [pytest.approx(v) for v in shares] or any(
        abs(v - 1200.0) < 1 for v in shares
    )
    assert any(abs(v - 2400.0) < 1 for v in shares)


def test_job_level_manager_splits_equally(lassen4):
    mgr = attach_manager(
        lassen4, ManagerConfig(global_cap_w=4800.0, policy="proportional")
    )
    rec = lassen4.submit(Jobspec(app="gemm", nnodes=4))
    lassen4.run_for(5.0)
    jl = mgr.cluster.job_level
    state = jl.state_of(rec.jobid)
    assert state.job_limit_w == pytest.approx(4800.0)
    assert state.node_limit_w == pytest.approx(1200.0)
    lassen4.run_until_complete(timeout_s=100000)


def test_job_level_assign_unknown_job_raises(lassen4):
    mgr = attach_manager(
        lassen4, ManagerConfig(global_cap_w=4800.0, policy="proportional")
    )
    with pytest.raises(KeyError):
        mgr.cluster.job_level.assign(99, 1000.0)


def test_static_mode_pushes_no_shares(lassen4):
    mgr = attach_manager(
        lassen4,
        ManagerConfig(global_cap_w=9600.0, policy="static", static_node_cap_w=1200.0),
    )
    lassen4.submit(Jobspec(app="laghos", nnodes=4))
    lassen4.run_until_complete()
    assert mgr.share_log == []
    assert mgr.node_manager_for_rank(0).node_limit_w is None


def test_cluster_manager_describe(lassen4):
    mgr = attach_manager(
        lassen4, ManagerConfig(global_cap_w=4800.0, policy="proportional")
    )
    lassen4.submit(Jobspec(app="gemm", nnodes=4))
    lassen4.run_for(5.0)
    d = mgr.cluster.describe()
    assert d["active_nodes"] == 4
    assert d["policy"] == "proportional"
    lassen4.run_until_complete(timeout_s=100000)


def test_unknown_policy_rejected(lassen4):
    with pytest.raises(ValueError):
        attach_manager(lassen4, ManagerConfig(policy="greedy"))


def test_custom_policy_factory(lassen4):
    from repro.manager.policies import StaticPolicy

    class MyPolicy(StaticPolicy):
        name = "mine"

    mgr = attach_manager(
        lassen4,
        ManagerConfig(global_cap_w=9600.0, policy="static"),
        policy_factory=MyPolicy,
    )
    assert mgr.node_manager_for_rank(0).policy.name == "mine"


def test_detach_unloads_everything(lassen4):
    mgr = attach_manager(
        lassen4, ManagerConfig(global_cap_w=9600.0, policy="proportional")
    )
    mgr.detach()
    assert "power-manager" not in lassen4.brokers[0].modules
    assert "power-manager-root" not in lassen4.brokers[0].modules
