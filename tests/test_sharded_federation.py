"""Sharded federation (one engine per cluster) vs the single-engine site.

The acceptance contract: for the same :class:`SiteConfig`, seed and
workload, a sharded run's ``site_digest()`` — the stable combination of
per-shard digests plus the site rebalance timeline — is byte-identical
to the classic :class:`FederatedSite`'s, for both the inline and the
``multiprocessing`` backends, including scheduled retunes and (inline)
whole-cluster outage/recovery campaigns.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultPlan
from repro.faults.plan import FaultEvent
from repro.federation import (
    ClusterSpec,
    FederatedSite,
    ShardedFederatedSite,
    SiteConfig,
    create_site,
)
from repro.flux.jobspec import Jobspec

HORIZON_S = 130.0


def _config(sharded: bool = False) -> SiteConfig:
    return SiteConfig(
        site_budget_w=40000.0,
        rebalance_epoch_s=10.0,
        sharded=sharded,
        clusters=(
            ClusterSpec(name="alpha", platform="lassen", n_nodes=6,
                        node_peak_w=3050.0),
            ClusterSpec(name="beta", platform="tioga", n_nodes=4,
                        node_peak_w=3200.0, min_share_w=2000.0),
        ),
    )


def _submit_workload(site) -> None:
    site.submit("alpha", Jobspec(app="gemm", nnodes=4))
    site.submit_at("alpha", Jobspec(app="lammps", nnodes=2), 13.0)
    site.submit("beta", Jobspec(app="gemm", nnodes=3))
    site.schedule_retune(25.0, 36000.0)


def _run(site):
    _submit_workload(site)
    site.run_for(HORIZON_S)
    return site


#: Crashes every crashable rank of a 3-node cluster (ranks 1 and 2) at
#: off-grid instants, then restores them — a whole-cluster outage and
#: recovery as seen by the site tier.
OUTAGE_PLAN = FaultPlan(events=[
    FaultEvent(t=17.3, kind="crash", rank=1),
    FaultEvent(t=17.9, kind="crash", rank=2),
    FaultEvent(t=44.1, kind="restart", rank=1),
    FaultEvent(t=46.7, kind="restart", rank=2),
])


def test_inline_backend_matches_unsharded_digest():
    plain = _run(FederatedSite(_config(), seed=42))
    sharded = _run(ShardedFederatedSite(_config(), seed=42))
    assert sharded.site_digest() == plain.site_digest()
    assert sharded.budget_log == plain.budget_log
    reasons = [r for _, r, _, _ in sharded.budget_log]
    assert reasons[0] == "initial"
    assert "retune" in reasons and "epoch" in reasons


def test_process_backend_matches_unsharded_digest():
    plain = _run(FederatedSite(_config(), seed=42))
    sharded = ShardedFederatedSite(_config(), seed=42, backend="process")
    try:
        _run(sharded)
        assert sharded.site_digest() == plain.site_digest()
        assert sharded.budget_log == plain.budget_log
    finally:
        sharded.close()


def test_inline_backend_matches_under_cluster_outage():
    def faulted_config():
        return SiteConfig(
            site_budget_w=40000.0,
            rebalance_epoch_s=10.0,
            clusters=(
                ClusterSpec(name="alpha", platform="lassen", n_nodes=4,
                            node_peak_w=3050.0),
                ClusterSpec(name="beta", platform="lassen", n_nodes=3,
                            node_peak_w=3050.0),
            ),
        )

    def run(cls):
        site = cls(faulted_config(), seed=7, fault_plans={"beta": OUTAGE_PLAN})
        site.submit("alpha", Jobspec(app="gemm", nnodes=3))
        site.submit("beta", Jobspec(app="gemm", nnodes=2))
        site.submit_at("beta", Jobspec(app="lammps", nnodes=2), 55.0)
        site.run_for(140.0)
        return site

    plain = run(FederatedSite)
    sharded = run(ShardedFederatedSite)
    assert sharded.site_digest() == plain.site_digest()
    reasons = [r for _, r, _, _ in sharded.budget_log]
    assert "outage" in reasons and "recovery" in reasons
    assert sharded.budget_log == plain.budget_log


def test_run_until_complete_matches_unsharded():
    def run(cls):
        site = cls(_config(), seed=3)
        site.submit("alpha", Jobspec(app="gemm", nnodes=2))
        site.submit("beta", Jobspec(app="quicksilver", nnodes=2))
        site.run_until_complete(timeout_s=100000.0)
        return site

    plain = run(FederatedSite)
    sharded = run(ShardedFederatedSite)
    assert sharded.now == plain.sim.now
    assert sharded.site_digest() == plain.site_digest()
    assert sharded.all_complete() and plain.all_complete()


def test_shard_digests_are_the_combination_inputs():
    sharded = _run(ShardedFederatedSite(_config(), seed=42))
    per_shard = sharded.shard_digests()
    assert sorted(per_shard) == ["alpha", "beta"]
    from repro.federation import combine_site_digest

    assert (
        combine_site_digest(sharded.now, sharded.budget_log, per_shard)
        == sharded.site_digest()
    )


def test_workload_changes_the_digest():
    # With jitter and sensor noise off, the run is seed-independent by
    # design; the digest must still separate different workloads.
    a = _run(ShardedFederatedSite(_config(), seed=1))
    b = ShardedFederatedSite(_config(), seed=1)
    b.submit("alpha", Jobspec(app="gemm", nnodes=5))
    b.run_for(HORIZON_S)
    assert a.site_digest() != b.site_digest()


def test_create_site_honours_sharded_flag():
    assert isinstance(create_site(_config(sharded=False), seed=1), FederatedSite)
    site = create_site(_config(sharded=True), seed=1)
    assert isinstance(site, ShardedFederatedSite)
    assert site.describe()["sharded"] is True


def test_process_backend_rejects_fault_plans():
    with pytest.raises(ValueError, match="inline backend"):
        ShardedFederatedSite(
            _config(), seed=0,
            fault_plans={"alpha": OUTAGE_PLAN},
            backend="process",
        )


def test_process_backend_rejects_late_submissions():
    site = ShardedFederatedSite(_config(), seed=0, backend="process")
    try:
        site.submit("alpha", Jobspec(app="gemm", nnodes=2))
        site.run_for(5.0)
        with pytest.raises(RuntimeError, match="declared up front"):
            site.submit("alpha", Jobspec(app="gemm", nnodes=1))
    finally:
        site.close()


def test_columnar_sharded_site_matches_scalar_digest():
    """Columnar monitor state inside each shard leaves the digest fixed."""
    scalar = _run(ShardedFederatedSite(_config(), seed=9))
    columnar = _run(ShardedFederatedSite(_config(), seed=9, columnar=True))
    assert columnar.site_digest() == scalar.site_digest()
