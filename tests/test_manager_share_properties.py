"""Property tests for proportional-share arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.flux.instance import FluxInstance
from repro.manager.cluster_manager import ClusterLevelManager, ManagerConfig


def manager_with(config, n_nodes=16):
    inst = FluxInstance(platform="lassen", n_nodes=n_nodes, seed=1)
    mgr = ClusterLevelManager(inst.brokers[0], config)
    inst.brokers[0].load_module(mgr)
    return inst, mgr


@given(
    budget=st.floats(1000.0, 50_000.0),
    job_sizes=st.lists(st.integers(1, 4), min_size=0, max_size=4),
)
def test_allocations_never_exceed_budget(budget, job_sizes):
    """sum(share * nodes) <= budget for every job population."""
    inst, mgr = manager_with(
        ManagerConfig(global_cap_w=budget, policy="proportional")
    )
    for i, n in enumerate(job_sizes):
        mgr.job_level.job_started(i + 1, list(range(sum(job_sizes[:i]), sum(job_sizes[:i]) + n)))
    share = mgr.per_node_share_w()
    total_nodes = sum(job_sizes)
    if total_nodes == 0:
        assert share is None
    else:
        assert share is not None
        assert share * total_nodes <= budget + 1e-6 or share == mgr.config.node_peak_w
        # When the peak is granted, the budget must actually cover it.
        if share == mgr.config.node_peak_w:
            assert total_nodes * mgr.config.node_peak_w <= budget


@given(
    budget=st.floats(2000.0, 50_000.0),
    idle_w=st.floats(100.0, 600.0),
    busy=st.integers(1, 16),
)
def test_idle_accounting_never_negative(budget, idle_w, busy):
    inst, mgr = manager_with(
        ManagerConfig(
            global_cap_w=budget,
            policy="proportional",
            account_idle_nodes=True,
            idle_node_w=idle_w,
        )
    )
    mgr.job_level.job_started(1, list(range(busy)))
    share = mgr.per_node_share_w()
    assert share is not None
    assert share >= 0.0
    idle = 16 - busy
    covered = share * busy + idle * idle_w
    assert covered <= max(budget, idle * idle_w) + 1e-6


@given(sizes=st.lists(st.integers(1, 3), min_size=2, max_size=5))
def test_share_is_uniform_across_jobs(sizes):
    """Every job gets the same per-node share (the paper's fairness)."""
    inst, mgr = manager_with(
        ManagerConfig(global_cap_w=5000.0, policy="proportional")
    )
    start = 0
    for i, n in enumerate(sizes):
        if start + n > 16:
            break
        mgr.job_level.job_started(i + 1, list(range(start, start + n)))
        start += n
    share = mgr.per_node_share_w()
    for state in mgr.job_level.jobs.values():
        mgr.job_level.assign(state.jobid, None if share is None else share * len(state.ranks))
        if share is not None:
            assert state.node_limit_w == pytest.approx(share)
