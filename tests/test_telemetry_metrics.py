"""Unit tests for repro.telemetry.metrics."""

import json

import pytest

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    MetricsRegistry,
)


@pytest.fixture
def reg():
    t = {"now": 0.0}
    return MetricsRegistry(clock=lambda: t["now"])


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------
def test_counter_increments(reg):
    c = reg.counter("requests_total")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5


def test_counter_rejects_negative(reg):
    c = reg.counter("requests_total")
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_set_inc_dec(reg):
    g = reg.gauge("occupancy")
    g.set(10.0)
    g.inc(2.0)
    g.dec(5.0)
    assert g.value == 7.0


# ----------------------------------------------------------------------
# Labeled-series identity
# ----------------------------------------------------------------------
def test_same_labels_return_same_series(reg):
    a = reg.counter("rpc_total", labels={"topic": "x"})
    b = reg.counter("rpc_total", labels={"topic": "x"})
    assert a is b
    a.inc()
    assert b.value == 1.0


def test_label_order_is_irrelevant(reg):
    a = reg.counter("m", labels={"a": "1", "b": "2"})
    b = reg.counter("m", labels={"b": "2", "a": "1"})
    assert a is b


def test_distinct_labels_are_distinct_series(reg):
    a = reg.counter("rpc_total", labels={"topic": "x"})
    b = reg.counter("rpc_total", labels={"topic": "y"})
    assert a is not b
    a.inc()
    assert b.value == 0.0
    assert len(reg.series_for("rpc_total")) == 2


def test_type_conflict_raises(reg):
    reg.counter("m")
    with pytest.raises(ValueError):
        reg.gauge("m")


# ----------------------------------------------------------------------
# Histogram bucketing
# ----------------------------------------------------------------------
def test_histogram_bucketing(reg):
    h = reg.histogram("lat", buckets=(1.0, 2.0, 5.0))
    for v in (0.5, 1.5, 1.5, 3.0, 10.0):
        h.observe(v)
    # Cumulative, Prometheus-style: le=1 -> 1, le=2 -> 3, le=5 -> 4, +Inf -> 5.
    cum = dict(h.cumulative_buckets())
    assert cum[1.0] == 1
    assert cum[2.0] == 3
    assert cum[5.0] == 4
    assert cum[float("inf")] == 5
    assert h.count == 5
    assert h.sum == pytest.approx(16.5)
    assert h.mean == pytest.approx(3.3)


def test_histogram_boundary_is_inclusive(reg):
    h = reg.histogram("lat", buckets=(1.0, 2.0))
    h.observe(1.0)
    cum = dict(h.cumulative_buckets())
    assert cum[1.0] == 1


def test_histogram_quantile_upper_bound(reg):
    h = reg.histogram("lat", buckets=(1.0, 2.0, 5.0))
    for v in (0.5, 0.6, 0.7, 4.0):
        h.observe(v)
    assert h.quantile(0.5) == 1.0   # 3 of 4 in the first bucket
    assert h.quantile(0.99) == 5.0
    assert reg.histogram("empty").quantile(0.5) is None


def test_default_latency_buckets_are_sorted():
    assert list(DEFAULT_LATENCY_BUCKETS_S) == sorted(DEFAULT_LATENCY_BUCKETS_S)


# ----------------------------------------------------------------------
# Snapshot / reset
# ----------------------------------------------------------------------
def test_snapshot_and_reset(reg):
    reg.counter("a_total").inc(3)
    reg.gauge("b", labels={"rank": "1"}).set(7.0)
    reg.histogram("h").observe(0.01)
    snap = reg.snapshot()
    assert set(snap["metrics"]) == {"a_total", "b", "h"}
    assert snap["metrics"]["a_total"]["type"] == "counter"

    reg.reset()
    assert reg.counter("a_total").value == 0.0
    assert reg.histogram("h").count == 0
    # Registrations (names and series) survive a reset.
    assert set(reg.names()) == {"a_total", "b", "h"}


def test_disabled_registry_is_noop(reg):
    reg.enabled = False
    reg.counter("a_total").inc()
    reg.gauge("g").set(5.0)
    reg.histogram("h").observe(1.0)
    assert reg.counter("a_total").value == 0.0
    assert reg.gauge("g").value == 0.0
    assert reg.histogram("h").count == 0


# ----------------------------------------------------------------------
# Export formats
# ----------------------------------------------------------------------
def test_prometheus_round_trip(reg):
    reg.counter("rpc_total", labels={"topic": "kvs.get"}).inc(4)
    reg.gauge("share_w").set(1200.0)
    reg.histogram("lat", buckets=(0.001, 0.01)).observe(0.005)
    text = reg.to_prometheus()
    assert "# TYPE rpc_total counter" in text
    assert 'rpc_total{topic="kvs.get"} 4.0' in text
    parsed = MetricsRegistry.parse_prometheus(text)
    assert parsed['rpc_total{topic="kvs.get"}'] == 4.0
    assert parsed["share_w"] == 1200.0
    assert parsed['lat_bucket{le="0.01"}'] == 1.0
    assert parsed["lat_count"] == 1.0


def test_json_round_trip(reg):
    reg.counter("a_total").inc(2)
    doc = MetricsRegistry.from_json(reg.to_json())
    assert doc == reg.snapshot()
    assert json.loads(reg.to_json(indent=2))["metrics"]["a_total"]


def test_render_is_deterministic(reg):
    reg.counter("b_total", labels={"z": "2"}).inc()
    reg.counter("b_total", labels={"a": "1"}).inc()
    reg.counter("a_total").inc()
    assert reg.render() == reg.render()
    # Sorted by name, then label key.
    out = reg.render()
    assert out.index("a_total") < out.index("b_total")
