"""The deterministic simulation-testing subsystem (repro.simtest).

Four layers of coverage:

* generator — same seed, same scenario; JSON round-trip is lossless;
  generated scenarios respect the configured bounds;
* harness — a smoke batch of fuzzed seeds runs with zero violations
  and the digest is byte-replayable (same seed twice → same digest);
* shrinker — pass mechanics against a synthetic oracle, plus the
  **plant-a-bug self-check**: an off-by-one deliberately monkeypatched
  into the job-level equal split must be caught by the invariant layer
  and shrunk to a ≤ 4-node / ≤ 2-job reproducer that re-triggers when
  replayed from its JSON artifact;
* CLI — ``repro simtest`` batch / single-seed / artifact-replay modes.

The deep batches live behind the ``simtest`` marker (deselected from
tier-1 by default duration; run with ``-m simtest``).
"""

import json
import os
from dataclasses import replace

import pytest

from repro.cli import main
from repro.manager.job_level import JobPowerState
from repro.simtest import (
    GeneratorConfig,
    Scenario,
    default_checkers,
    generate_scenario,
    load_reproducer,
    run_batch,
    run_scenario,
    shrink_scenario,
    write_reproducer,
)
from repro.simtest.shrink import make_oracle
from repro.simtest.invariants import Violation

SMOKE_SEEDS = range(3)


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
def test_generator_is_deterministic():
    a = generate_scenario(7)
    b = generate_scenario(7)
    assert a == b
    assert a.to_dict() == b.to_dict()


def test_generator_seeds_differ():
    scenarios = {generate_scenario(s).describe() for s in range(10)}
    assert len(scenarios) > 5  # seeds explore the space, not one corner


def test_generator_respects_bounds():
    cfg = GeneratorConfig(min_nodes=4, max_nodes=8, min_jobs=1, max_jobs=2)
    for seed in range(20):
        s = generate_scenario(seed, cfg)
        assert 4 <= s.n_nodes <= 8
        assert 1 <= len(s.jobs) <= 2
        assert s.platform in cfg.platforms
        for job in s.jobs:
            assert 1 <= job.nnodes <= s.n_nodes
            assert job.submit_t >= 0.0
        for ev in s.fault_events:
            assert 1 <= ev.rank < s.n_nodes  # rank 0 never crashes


def test_scenario_json_roundtrip():
    for seed in range(10):
        s = generate_scenario(seed)
        blob = json.dumps(s.to_dict(), sort_keys=True)
        restored = Scenario.from_dict(json.loads(blob))
        assert restored == s


def test_columnar_flag_roundtrips_and_shows_in_describe():
    s = Scenario(seed=0, columnar=True)
    assert "columnar" in s.describe()
    assert Scenario.from_dict(json.loads(json.dumps(s.to_dict()))) == s
    plain = Scenario(seed=0)
    assert "columnar" not in plain.describe()
    # Reproducer artifacts written before the columnar field default off.
    legacy = dict(plain.to_dict())
    legacy.pop("columnar")
    assert Scenario.from_dict(legacy).columnar is False


def test_generator_sometimes_enables_columnar():
    flags = {generate_scenario(seed).columnar for seed in range(30)}
    assert flags == {True, False}


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def test_smoke_batch_has_no_violations():
    report = run_batch(SMOKE_SEEDS, shrink=False)
    assert report.ok, report.summary()
    assert len(report.results) == len(SMOKE_SEEDS)
    assert all(r.digest for r in report.results)


def test_same_seed_same_digest():
    first = run_scenario(generate_scenario(1), checkers=default_checkers())
    second = run_scenario(generate_scenario(1), checkers=default_checkers())
    assert first.digest == second.digest
    assert first.ok


def test_different_seeds_different_digests():
    a = run_scenario(generate_scenario(0), checkers=default_checkers())
    b = run_scenario(generate_scenario(1), checkers=default_checkers())
    assert a.digest != b.digest


def test_harness_counts_ticks_and_events():
    result = run_scenario(generate_scenario(1), checkers=default_checkers())
    assert result.n_ticks > 0
    assert result.events_processed > 0
    assert result.makespan_s is not None and result.makespan_s > 0


@pytest.mark.simtest
@pytest.mark.skipif(
    not os.environ.get("REPRO_SIMTEST_DEEP"),
    reason="deep fuzz batch (~25 s); set REPRO_SIMTEST_DEEP=1 or use tools/verify.sh",
)
def test_deep_batch_has_no_violations():
    report = run_batch(range(50), shrink=False)
    assert report.ok, report.summary()


# ----------------------------------------------------------------------
# Shrinker mechanics (synthetic oracle: no cluster runs, pure logic)
# ----------------------------------------------------------------------
def _always_fails(scenario):
    return Violation(invariant="synthetic", t=0.0, message="always")


def _fails_if_big(scenario):
    if scenario.n_nodes > 4 or len(scenario.jobs) > 1:
        return Violation(invariant="synthetic", t=0.0, message="big")
    return None


def test_shrink_reaches_floor_with_trivial_oracle():
    scenario = generate_scenario(0, GeneratorConfig(min_jobs=3, max_jobs=5))
    seed_violation = _always_fails(scenario)
    report = shrink_scenario(scenario, seed_violation, oracle=_always_fails)
    assert len(report.minimal.jobs) == 1
    assert report.minimal.n_nodes == 2
    assert not report.minimal.fault_events
    assert report.runs > 0


def test_shrink_stops_at_oracle_boundary():
    scenario = generate_scenario(0, GeneratorConfig(min_jobs=3, max_jobs=5))
    report = shrink_scenario(scenario, _fails_if_big(scenario), oracle=_fails_if_big)
    # The oracle passes (stops failing) once the scenario is small, so
    # the shrinker must keep the last still-failing candidate.
    assert _fails_if_big(report.minimal) is not None


def test_shrink_respects_run_budget():
    scenario = generate_scenario(0, GeneratorConfig(min_jobs=3, max_jobs=5))
    report = shrink_scenario(
        scenario, _always_fails(scenario), oracle=_always_fails, max_runs=3
    )
    assert report.runs <= 3


def test_clamp_keeps_scenario_valid():
    from repro.simtest.shrink import _clamp_to_cluster

    scenario = generate_scenario(4)  # tioga, 21 nodes, 3 crashes
    small = _clamp_to_cluster(scenario, 4)
    assert small.n_nodes == 4
    assert all(j.nnodes <= 4 for j in small.jobs)
    assert all(ev.rank < 4 for ev in small.fault_events)
    small.fault_plan().validate(small.n_nodes)  # must stay injectable


# ----------------------------------------------------------------------
# Plant-a-bug self-check: the subsystem must catch a seeded regression
# ----------------------------------------------------------------------
@pytest.fixture
def planted_split_bug(monkeypatch):
    """Off-by-one in the equal split: divide by n-1 instead of n."""

    def buggy(self):
        if self.job_limit_w is None:
            return None
        return self.job_limit_w / max(1, len(self.ranks) - 1)

    monkeypatch.setattr(JobPowerState, "node_limit_w", property(buggy))


def _first_share_split_failure(max_seed=30):
    for seed in range(max_seed):
        scenario = generate_scenario(seed)
        result = run_scenario(
            scenario, checkers=default_checkers(), stop_on_first=True
        )
        hits = [v for v in result.violations if v.invariant == "share_split"]
        if hits:
            return scenario, hits[0], result
    raise AssertionError("planted bug never detected — invariant layer broken")


def test_planted_bug_is_caught_shrunk_and_replayable(planted_split_bug, tmp_path):
    scenario, violation, result = _first_share_split_failure()
    assert "node share x ranks" in violation.message

    report = shrink_scenario(scenario, violation, max_runs=120)
    assert report.minimal.n_nodes <= 4
    assert len(report.minimal.jobs) <= 2

    path = tmp_path / "reproducer.json"
    write_reproducer(str(path), report, result)
    payload = json.loads(path.read_text())
    assert payload["invariant"] == "share_split"
    assert payload["scenario"] == report.minimal.to_dict()

    replayed = run_scenario(
        load_reproducer(str(path)), checkers=default_checkers(),
        stop_on_first=True,
    )
    assert any(v.invariant == "share_split" for v in replayed.violations)


def test_planted_bug_reproducer_is_clean_on_fixed_code(tmp_path):
    """The minimal reproducer from the planted bug passes on real code."""
    scenario = replace(
        generate_scenario(0),
        jobs=generate_scenario(0).jobs[:1],
    )
    result = run_scenario(scenario, checkers=default_checkers())
    assert result.ok, result.summary()


def test_make_oracle_matches_only_target_invariant(planted_split_bug):
    scenario, violation, _ = _first_share_split_failure()
    assert make_oracle("share_split")(scenario) is not None
    assert make_oracle("no_such_invariant")(scenario) is None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_simtest_batch(capsys):
    assert main(["simtest", "--seeds", "2", "--no-shrink"]) == 0
    out = capsys.readouterr().out
    assert "2 scenario(s), 2 ok, 0 violating" in out


def test_cli_simtest_single_seed(capsys):
    assert main(["simtest", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("OK   seed=1 ")
    digest = out.split("digest=")[1].split()[0]
    assert len(digest) == 12


def test_cli_simtest_expect_digest(capsys):
    main(["simtest", "--seed", "2"])
    # The summary truncates; recompute the full digest for the check.
    full = run_scenario(generate_scenario(2), checkers=default_checkers()).digest
    capsys.readouterr()
    assert main(["simtest", "--seed", "2", "--expect-digest", full]) == 0
    assert main(["simtest", "--seed", "2", "--expect-digest", "0" * 64]) == 2


def test_cli_simtest_replays_artifact(planted_split_bug, tmp_path, capsys):
    scenario, violation, result = _first_share_split_failure()
    report = shrink_scenario(scenario, violation, max_runs=60)
    path = tmp_path / "bug.json"
    write_reproducer(str(path), report, result)
    rc = main(["simtest", "--replay", str(path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "share_split" in out


def test_cli_simtest_batch_writes_artifacts(planted_split_bug, tmp_path, capsys):
    # With the planted bug, a small batch must fail, shrink, and leave
    # a reproducer artifact behind.
    rc = main(
        ["simtest", "--seeds", "1", "--artifacts", str(tmp_path)]
    )
    capsys.readouterr()
    assert rc == 1
    artifacts = list(tmp_path.glob("simtest-seed*.json"))
    assert artifacts, "no reproducer artifact written"
    payload = json.loads(artifacts[0].read_text())
    assert payload["simtest_reproducer"] == 1
