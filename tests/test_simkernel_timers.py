"""Unit tests for periodic timers."""

import pytest

from repro.simkernel import PeriodicTimer, Simulator


def test_ticks_on_fixed_grid():
    sim = Simulator()
    ticks = []
    PeriodicTimer(sim, 2.0, lambda t: ticks.append(sim.now))
    sim.run(until=10.0)
    assert ticks == [2.0, 4.0, 6.0, 8.0, 10.0]


def test_start_delay_zero_ticks_immediately():
    sim = Simulator()
    ticks = []
    PeriodicTimer(sim, 2.0, lambda t: ticks.append(sim.now), start_delay=0.0)
    sim.run(until=4.0)
    assert ticks == [0.0, 2.0, 4.0]


def test_custom_start_delay():
    sim = Simulator()
    ticks = []
    PeriodicTimer(sim, 5.0, lambda t: ticks.append(sim.now), start_delay=1.0)
    sim.run(until=12.0)
    assert ticks == [1.0, 6.0, 11.0]


def test_stop_cancels_future_ticks():
    sim = Simulator()
    ticks = []
    timer = PeriodicTimer(sim, 1.0, lambda t: ticks.append(sim.now))
    sim.schedule(3.5, timer.stop)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0, 3.0]
    assert not timer.running


def test_stop_from_within_callback():
    sim = Simulator()
    ticks = []

    def cb(timer):
        ticks.append(sim.now)
        if len(ticks) == 2:
            timer.stop()

    PeriodicTimer(sim, 1.0, cb)
    sim.run(until=10.0)
    assert ticks == [1.0, 2.0]


def test_tick_counter():
    sim = Simulator()
    timer = PeriodicTimer(sim, 1.0, lambda t: None)
    sim.run(until=5.0)
    assert timer.ticks == 5


def test_invalid_period_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda t: None)
    with pytest.raises(ValueError):
        PeriodicTimer(sim, -1.0, lambda t: None)


def test_jitter_does_not_drift_nominal_grid():
    """Jittered ticks wobble, but the grid itself never drifts."""
    sim = Simulator()
    times = []
    jitters = iter([0.3, -0.2, 0.1, 0.0, 0.25, -0.1, 0.2, 0.0, 0.1, -0.3])
    PeriodicTimer(
        sim, 2.0, lambda t: times.append(sim.now), jitter_fn=lambda: next(jitters, 0.0)
    )
    sim.run(until=20.0)
    # Each tick within 0.5 of its nominal slot; count matches the grid.
    for i, t in enumerate(times, start=1):
        assert abs(t - 2.0 * i) < 0.5


def test_two_timers_interleave_deterministically():
    sim = Simulator()
    seen = []
    PeriodicTimer(sim, 2.0, lambda t: seen.append("a"))
    PeriodicTimer(sim, 2.0, lambda t: seen.append("b"))
    sim.run(until=4.0)
    assert seen == ["a", "b", "a", "b"]
