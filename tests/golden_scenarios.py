"""Shared seeded scenarios for the byte-identity golden tests.

The fixtures under ``tests/golden/`` were generated from the pre-ISSUE-3
hot path (dataclass event heap, per-node sample timers, unmemoised
payload sizing). The optimized engine must reproduce them byte for byte
— that is the determinism contract the perf work rides on. Regenerate
(only when an *intentional* behaviour change lands) with::

    PYTHONPATH=src:tests python tests/golden_scenarios.py --write

Each scenario is a 16-node Lassen cluster, seed 33, two jobs (gemm on 8
nodes, quicksilver on 4), proportional manager — run with each
aggregation strategy, with and without a crash/restart fault. The
restart lands exactly on the 2 s sampling grid (t=16.0) on purpose: it
pins the batched-tick catch-up edge case.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.cluster import PowerManagedCluster
from repro.faults import FaultEvent, FaultPlan
from repro.flux.jobspec import Jobspec
from repro.manager.cluster_manager import ManagerConfig

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

SCENARIOS: Dict[str, Dict[str, object]] = {
    "plain_fanout": {"strategy": "fanout", "faults": False},
    "plain_tree": {"strategy": "tree", "faults": False},
    "faults_fanout": {"strategy": "fanout", "faults": True},
    "faults_tree": {"strategy": "tree", "faults": True},
}


def run_scenario(
    strategy: str,
    faults: bool,
    batch_sampling: Optional[bool] = None,
    columnar: Optional[bool] = None,
) -> Tuple[str, str]:
    """Run one scenario; return ``(csv_blob, prometheus_text)``.

    ``batch_sampling=None`` uses the monitor's default sampling mode;
    True/False force the batched tick or the legacy per-node timers.
    ``columnar=True`` keeps per-rank samples in the columnar store
    (:mod:`repro.columnar`) — the exascale path, contractually
    byte-identical to the scalar one.
    """
    plan = None
    if faults:
        plan = FaultPlan(
            [
                FaultEvent(t=9.5, kind="crash", rank=5),
                FaultEvent(t=16.0, kind="restart", rank=5),
            ]
        )
    kwargs = {}
    if batch_sampling is not None:
        kwargs["monitor_batch_sampling"] = batch_sampling
    if columnar is not None:
        kwargs["monitor_columnar"] = columnar
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=16,
        seed=33,
        manager_config=ManagerConfig(
            global_cap_w=19_200.0, policy="proportional", static_node_cap_w=1950.0
        ),
        fault_plan=plan,
        monitor_strategy=strategy,
        **kwargs,
    )
    jobs = [
        cluster.submit(Jobspec(app="gemm", nnodes=8, params={"work_scale": 2.0})),
        cluster.submit(Jobspec(app="quicksilver", nnodes=4, params={"work_scale": 2.0})),
    ]
    cluster.run_until_complete(timeout_s=1_000_000)
    cluster.run_for(4.0)
    csv_blob = "".join(
        cluster.monitor.client.fetch(job.jobid, timeout_s=300.0).to_csv()
        for job in jobs
    )
    prom = cluster.telemetry_hub.metrics.to_prometheus()
    return csv_blob, prom


def fixture_paths(name: str) -> Tuple[str, str]:
    return (
        os.path.join(GOLDEN_DIR, f"{name}.csv"),
        os.path.join(GOLDEN_DIR, f"{name}.prom"),
    )


def write_fixtures() -> None:
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, spec in SCENARIOS.items():
        csv_blob, prom = run_scenario(spec["strategy"], spec["faults"])
        csv_path, prom_path = fixture_paths(name)
        with open(csv_path, "w") as fh:
            fh.write(csv_blob)
        with open(prom_path, "w") as fh:
            fh.write(prom)
        print(f"wrote {csv_path} ({len(csv_blob)} B), {prom_path} ({len(prom)} B)")


if __name__ == "__main__":
    import sys

    if "--write" not in sys.argv:
        raise SystemExit("refusing to overwrite goldens without --write")
    write_fixtures()
