"""Byte-identity golden test for the federation tier (ISSUE 5).

The fixtures in ``tests/golden/federation_campaign.{csv,prom}`` pin the
scripted two-cluster campaign — epoch rebalances, the whole-cluster
outage/recovery, the site retune, every ``federation_*`` metric — byte
for byte. See ``tests/golden_federation.py`` for the scenario and the
regeneration command.
"""

from __future__ import annotations

from tests.golden_federation import fixture_paths, run_golden


def test_federation_golden_byte_identity():
    csv_blob, prom = run_golden()
    csv_path, prom_path = fixture_paths()
    with open(csv_path) as fh:
        assert csv_blob == fh.read(), "timeline CSV diverged from golden"
    with open(prom_path) as fh:
        assert prom == fh.read(), "metrics export diverged from golden"
