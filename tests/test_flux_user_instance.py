"""Unit tests for nested (user-level) Flux instances."""

import pytest

from repro.flux import FluxInstance, Jobspec, JobState, spawn_user_instance
from repro.manager import ManagerConfig, attach_manager
from repro.monitor import attach_monitor


@pytest.fixture
def system():
    return FluxInstance(platform="lassen", n_nodes=8, seed=3)


def test_allocation_granted_and_nodes_mapped(system):
    ui = spawn_user_instance(system, nnodes=4, user="alice")
    assert ui.n_nodes == 4
    assert ui.allocation.state is JobState.RUNNING
    assert [n.hostname for n in ui.nodes] == [
        system.nodes[r].hostname for r in ui.allocation.ranks
    ]
    assert ui.sim is system.sim  # shared simulated time


def test_inner_jobs_run_on_allocated_nodes_only(system):
    ui = spawn_user_instance(system, nnodes=4)
    rec = ui.submit(Jobspec(app="laghos", nnodes=2))
    ui.run_until_complete(timeout_s=100000)
    inner_hosts = {ui.nodes[r].hostname for r in rec.ranks}
    alloc_hosts = {system.nodes[r].hostname for r in ui.allocation.ranks}
    assert inner_hosts <= alloc_hosts


def test_close_releases_parent_allocation(system):
    ui = spawn_user_instance(system, nnodes=4)
    rec = ui.submit(Jobspec(app="laghos", nnodes=4))
    ui.run_until_complete(timeout_s=100000)
    assert system.scheduler.free_count == 4
    ui.close()
    system.run_for(0.1)
    assert ui.allocation.state is JobState.COMPLETED
    assert system.scheduler.free_count == 8


def test_close_refused_with_active_inner_jobs(system):
    ui = spawn_user_instance(system, nnodes=2)
    ui.submit(Jobspec(app="gemm", nnodes=2))
    system.sim.run(until=system.sim.now + 5.0)
    with pytest.raises(RuntimeError):
        ui.close()
    ui.run_until_complete(timeout_s=100000)
    ui.close()


def test_close_is_idempotent(system):
    ui = spawn_user_instance(system, nnodes=2)
    ui.close()
    ui.close()


def test_submit_after_close_rejected(system):
    ui = spawn_user_instance(system, nnodes=2)
    ui.close()
    with pytest.raises(RuntimeError):
        ui.submit(Jobspec(app="laghos", nnodes=1))


def test_user_instance_can_load_own_power_modules(system):
    """The paper's user-level customisation: per-instance policies."""
    ui = spawn_user_instance(system, nnodes=4, user="bob")
    mon = attach_monitor(ui)
    mgr = attach_manager(
        ui, ManagerConfig(global_cap_w=4000.0, policy="proportional")
    )
    rec = ui.submit(Jobspec(app="gemm", nnodes=4, params={"work_scale": 0.3}))
    ui.run_until_complete(timeout_s=100000)
    ui.run_for(4.0)
    # Shares were computed within the user instance's own budget.
    assert any(abs(s - 1000.0) < 1 for (_, _, s) in mgr.share_log if s)
    data = mon.client.fetch(rec.jobid)
    assert data.complete


def test_two_user_instances_coexist(system):
    a = spawn_user_instance(system, nnodes=4, user="alice", seed=1)
    b = spawn_user_instance(system, nnodes=4, user="bob", seed=2)
    ra = a.submit(Jobspec(app="laghos", nnodes=4))
    rb = b.submit(Jobspec(app="quicksilver", nnodes=4))
    a.run_until_complete(timeout_s=100000)
    b.run_until_complete(timeout_s=100000)
    hosts_a = {a.nodes[r].hostname for r in ra.ranks}
    hosts_b = {b.nodes[r].hostname for r in rb.ranks}
    assert hosts_a.isdisjoint(hosts_b)


def test_allocation_times_out_when_cluster_full(system):
    system.submit(Jobspec(app="gemm", nnodes=8, params={"work_scale": 10}))
    with pytest.raises(TimeoutError):
        spawn_user_instance(system, nnodes=4, timeout_s=10.0)


def test_nested_pseudo_job_visible_in_system_kvs(system):
    ui = spawn_user_instance(system, nnodes=2)
    rec = system.kvs.get(f"jobs.{ui.allocation.jobid}")
    assert rec["app"] == "flux-instance"
    assert rec["state"] == "running"
    ui.close()


def test_finish_nested_unknown_job_raises(system):
    with pytest.raises(KeyError):
        system.finish_nested(99)
