"""Golden fixture for the serving-tier smoke loadtest.

``tests/golden/serving_smoke.json`` pins the full determinism contract
of the load harness: the byte-identity of a seeded trace
(``trace_sha256``), the byte-identity of every response the service
gives to that trace (``response_digest``), and the exact status/op
tallies of a clean run (zero errors by construction). Any unintentional
change to trace generation, RNG substream layout, routing, response
shaping or snapshot reads shows up here as a diff. Regenerate (only
when an *intentional* behaviour change lands) with::

    PYTHONPATH=src:tests python tests/golden_serving.py --write
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.cluster import PowerManagedCluster
from repro.manager.cluster_manager import ManagerConfig
from repro.serving import (
    ClusterRegistry,
    LoadProfile,
    PowerService,
    SimDriver,
    generate_trace,
    run_loadtest,
    trace_lines,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "serving_smoke.json"
)

#: The pinned campaign: small enough to run in a second, wide enough to
#: exercise every op in the default mix (100 requests).
SEED = 7
PROFILE = LoadProfile(
    clients=25,
    requests_per_client=4,
    warmup_jobs=3,
    advance_every=20,
    advance_dt_s=1.0,
)


def build_service():
    """The fixed world the golden campaign runs against."""
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=16,
        seed=1,
        manager_config=ManagerConfig(
            global_cap_w=20_000.0,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
    )
    registry = ClusterRegistry.from_cluster(cluster, name="default")
    return PowerService(registry), SimDriver(registry)


def run_smoke() -> Dict[str, Any]:
    """Run the pinned campaign on a fresh world; return the fixture dict."""
    service, driver = build_service()
    trace = generate_trace(SEED, PROFILE, n_nodes=16)
    result = run_loadtest(SEED, PROFILE, service, driver, trace=trace)
    return {
        "seed": SEED,
        "profile": {
            "clients": PROFILE.clients,
            "requests_per_client": PROFILE.requests_per_client,
            "warmup_jobs": PROFILE.warmup_jobs,
            "advance_every": PROFILE.advance_every,
            "advance_dt_s": PROFILE.advance_dt_s,
        },
        "n_requests": result.n_requests,
        "errors": result.errors,
        "status_counts": result.status_counts,
        "op_counts": result.op_counts,
        "trace_sha256": result.trace_sha256,
        "response_digest": result.response_digest,
        # A readable head of the trace, so a fixture diff shows *what*
        # changed, not just that a hash moved.
        "trace_head": trace_lines(trace)[:5],
    }


def write_fixture() -> None:
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    fixture = run_smoke()
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(fixture, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {GOLDEN_PATH} "
          f"(trace={fixture['trace_sha256'][:12]}, "
          f"responses={fixture['response_digest'][:12]})")


if __name__ == "__main__":
    import sys

    if "--write" not in sys.argv:
        raise SystemExit("refusing to overwrite goldens without --write")
    write_fixture()
