"""Unit tests for sensor suites."""

import numpy as np
import pytest

from repro.hardware.domains import DomainKind
from repro.hardware.platforms.lassen import make_lassen_node
from repro.hardware.platforms.tioga import make_tioga_node


def test_lassen_reading_reports_all_component_domains():
    node = make_lassen_node("n0")
    r = node.sensors.read(10.0)
    names = set(r.domains_w)
    assert {"cpu0", "cpu1", "memory0", "gpu0", "gpu1", "gpu2", "gpu3"} <= names
    assert "uncore0" not in names  # uncore only via node sensor


def test_lassen_node_reading_is_measured_and_includes_uncore():
    node = make_lassen_node("n0")
    r = node.sensors.read(10.0)
    assert r.node_measured
    assert r.node_w == pytest.approx(400.0)  # idle incl. 90 W uncore
    assert sum(r.domains_w.values()) == pytest.approx(310.0)  # without uncore


def test_tioga_node_reading_is_conservative_estimate():
    node = make_tioga_node("t0")
    r = node.sensors.read(10.0)
    assert not r.node_measured
    # cpu 60 + 4 oam x 90 = 420; memory and uncore invisible.
    assert r.node_w == pytest.approx(420.0)
    assert "memory0" not in r.domains_w


def test_tioga_reports_oam_not_per_gpu():
    node = make_tioga_node("t0")
    r = node.sensors.read(0.0)
    oam_keys = [k for k in r.domains_w if k.startswith("oam")]
    assert len(oam_keys) == 4


def test_timestamp_quantised_to_sensor_granularity():
    node = make_lassen_node("n0")  # OCC: 500 microseconds
    r = node.sensors.read(1.00037)
    assert r.timestamp == pytest.approx(1.0)
    r2 = node.sensors.read(1.0006)
    assert r2.timestamp == pytest.approx(1.0005)


def test_total_by_kind_aggregates():
    node = make_lassen_node("n0")
    node.domains["gpu0"].set_demand(300.0)
    r = node.sensors.read(0.0)
    assert r.total_by_kind(DomainKind.GPU) == pytest.approx(300.0 + 3 * 50.0)
    assert r.total_by_kind(DomainKind.CPU) == pytest.approx(80.0)


def test_sensor_noise_is_seeded_and_bounded():
    rng = np.random.default_rng(3)
    node = make_lassen_node("n0", rng=rng, sensor_noise_sigma_w=1.0)
    readings = [node.sensors.read(float(i)).node_w for i in range(50)]
    assert len(set(readings)) > 1  # noise present
    assert all(abs(v - 400.0) < 10.0 for v in readings)  # bounded

    rng2 = np.random.default_rng(3)
    node2 = make_lassen_node("n0", rng=rng2, sensor_noise_sigma_w=1.0)
    readings2 = [node2.sensors.read(float(i)).node_w for i in range(50)]
    assert readings == readings2  # deterministic given the seed


def test_noise_never_produces_negative_power():
    rng = np.random.default_rng(0)
    node = make_lassen_node("n0", rng=rng, sensor_noise_sigma_w=500.0)
    for i in range(100):
        r = node.sensors.read(float(i))
        assert r.node_w >= 0.0
        assert all(v >= 0.0 for v in r.domains_w.values())
