"""Unit tests for idle-node budget accounting (reproduction insight #1)."""

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.manager.module import attach_manager


def test_idle_reserve_reduces_shares(lassen4):
    mgr = attach_manager(
        lassen4,
        ManagerConfig(
            global_cap_w=3200.0,
            policy="proportional",
            account_idle_nodes=True,
            idle_node_w=400.0,
        ),
    )
    lassen4.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.5}))
    lassen4.run_for(10.0)
    # 2 busy + 2 idle: budget 3200 - 2*400 = 2400 over 2 nodes.
    assert mgr.cluster.per_node_share_w() == pytest.approx(1200.0)
    lassen4.run_until_complete(timeout_s=500_000)


def test_default_formula_matches_paper(lassen4):
    """Without the flag, shares follow the paper's formula exactly."""
    mgr = attach_manager(
        lassen4, ManagerConfig(global_cap_w=3200.0, policy="proportional")
    )
    lassen4.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.5}))
    lassen4.run_for(10.0)
    assert mgr.cluster.per_node_share_w() == pytest.approx(1600.0)
    lassen4.run_until_complete(timeout_s=500_000)


def test_full_allocation_is_unaffected(lassen4):
    mgr = attach_manager(
        lassen4,
        ManagerConfig(
            global_cap_w=3200.0, policy="proportional", account_idle_nodes=True
        ),
    )
    lassen4.submit(Jobspec(app="laghos", nnodes=4))
    lassen4.run_for(5.0)
    assert mgr.cluster.per_node_share_w() == pytest.approx(800.0)
    lassen4.run_until_complete(timeout_s=500_000)


def test_whole_cluster_power_bounded_with_accounting():
    """With the reserve, *total* cluster power stays under the budget."""
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=26,
        manager_config=ManagerConfig(
            global_cap_w=6400.0,
            policy="proportional",
            static_node_cap_w=1950.0,
            account_idle_nodes=True,
        ),
    )
    cluster.submit(Jobspec(app="gemm", nnodes=4, params={"work_scale": 0.75}))
    cluster.run_until_complete(timeout_s=1_000_000)
    series = cluster.trace.cluster_series()
    # Skip the first 60 s of estimator warm-up.
    steady = [p for t, p in series if t >= 60.0]
    assert max(steady) <= 6400.0 * 1.02


def test_budget_smaller_than_idle_reserve_clamps_to_zero(lassen4):
    mgr = attach_manager(
        lassen4,
        ManagerConfig(
            global_cap_w=700.0,
            policy="proportional",
            account_idle_nodes=True,
            idle_node_w=400.0,
        ),
    )
    lassen4.submit(Jobspec(app="laghos", nnodes=1))
    lassen4.run_for(2.0)
    # 3 idle nodes reserve 1200 > 700: the busy node's share floors at 0
    # (enforced caps clamp to device minimums; nothing crashes).
    assert mgr.cluster.per_node_share_w() == pytest.approx(0.0)
    lassen4.run_until_complete(timeout_s=500_000)
