"""Unit tests for the power-aware admission scheduler."""

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.manager.power_aware_sched import PowerAwareScheduler


def test_validation():
    with pytest.raises(ValueError):
        PowerAwareScheduler(4, global_cap_w=0.0)
    with pytest.raises(ValueError):
        PowerAwareScheduler(4, global_cap_w=1000.0, min_share_w=-1.0)


def test_projected_share_math():
    s = PowerAwareScheduler(8, global_cap_w=9600.0, node_peak_w=3050.0)
    assert s.projected_share_w(2) == pytest.approx(3050.0)  # 9600/2 capped
    s.allocate(6)
    assert s.projected_share_w(2) == pytest.approx(1200.0)  # 9600/8


def test_admits_when_share_above_floor():
    s = PowerAwareScheduler(8, global_cap_w=9600.0, min_share_w=1000.0)
    assert s.pick_next([1], {1: 8}) == 1  # 9600/8 = 1200 >= 1000


def test_holds_when_share_below_floor():
    s = PowerAwareScheduler(8, global_cap_w=6400.0, min_share_w=1100.0)
    s.allocate(4)  # two jobs running: share 1600
    # Admitting 4 more nodes -> 6400/8 = 800 < 1100: hold.
    assert s.pick_next([1], {1: 4}) is None
    assert s.held_jobs == 1


def test_never_starves_on_empty_cluster():
    # Even a job whose share can never reach the floor starts when the
    # cluster is otherwise empty.
    s = PowerAwareScheduler(8, global_cap_w=4000.0, min_share_w=2000.0)
    assert s.pick_next([1], {1: 8}) == 1  # 4000/8 = 500 < 2000, but empty


def test_admission_resumes_after_departures():
    s = PowerAwareScheduler(8, global_cap_w=6400.0, min_share_w=1100.0)
    first = s.allocate(4)
    assert s.pick_next([1], {1: 4}) is None
    s.release(first)
    assert s.pick_next([1], {1: 4}) == 1  # 6400/4 = 1600 now


def test_end_to_end_holds_then_runs():
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=16,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=3200.0, policy="proportional", static_node_cap_w=1950.0
        ),
        scheduler_factory=lambda size: PowerAwareScheduler(
            size, global_cap_w=3200.0, min_share_w=1100.0
        ),
    )
    a = cluster.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.3}))
    b = cluster.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.3}))
    cluster.run_until_complete(timeout_s=1_000_000)
    # 3200/4 = 800 < 1100: b waited for a rather than diluting shares.
    assert b.t_start >= a.t_end
    assert cluster.instance.scheduler.held_jobs > 0


def test_plain_fcfs_would_overlap():
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=16,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=3200.0, policy="proportional", static_node_cap_w=1950.0
        ),
    )
    a = cluster.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.3}))
    b = cluster.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.3}))
    cluster.run_until_complete(timeout_s=1_000_000)
    assert b.t_start == a.t_start  # the contrast case
