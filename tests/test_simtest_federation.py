"""Tests for the federated simtest tier (ISSUE 5 satellites).

Smoke coverage runs in tier-1; the 100-seed federated batch sits behind
``REPRO_SIMTEST_DEEP=1`` with the ``federation`` marker, mirroring the
single-cluster deep batch.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.simtest.federation import (
    ClusterScenario,
    FederatedGeneratorConfig,
    FederatedScenario,
    generate_federated_scenario,
    load_federated_reproducer,
    replay_federated_scenario,
    run_federated_batch,
    run_federated_scenario,
    run_federated_seed,
)
from repro.simtest.invariants import site_checkers

DEEP = os.environ.get("REPRO_SIMTEST_DEEP") == "1"


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
def test_generator_is_deterministic():
    assert generate_federated_scenario(5) == generate_federated_scenario(5)
    assert generate_federated_scenario(5) != generate_federated_scenario(6)


def test_generator_respects_bounds():
    cfg = FederatedGeneratorConfig()
    for seed in range(25):
        sc = generate_federated_scenario(seed, cfg)
        assert cfg.min_clusters <= len(sc.clusters) <= cfg.max_clusters
        names = [c.name for c in sc.clusters]
        assert len(set(names)) == len(names)
        total_floor = 0.0
        for c in sc.clusters:
            assert cfg.min_nodes <= c.n_nodes <= cfg.max_nodes
            assert c.platform in cfg.platforms
            assert c.policy in cfg.policies
            assert cfg.min_jobs <= len(c.jobs) <= cfg.max_jobs
            assert c.min_share_w >= 0.0
            if c.max_share_w is not None:
                assert c.max_share_w >= c.min_share_w
            total_floor += c.min_share_w
            # outages and rank faults are mutually exclusive by design
            assert not (c.outages and c.fault_events)
            for j in c.jobs:
                assert 1 <= j.nnodes <= c.n_nodes
        assert total_floor <= sc.site_budget_w
        for _t, w in sc.site_budget_schedule:
            assert w >= total_floor
        assert sc.rebalance_epoch_s in cfg.epochs_s


def test_generator_covers_outages_and_faults():
    kinds = {"outage": 0, "faults": 0, "retune": 0}
    for seed in range(40):
        sc = generate_federated_scenario(seed)
        if any(c.outages for c in sc.clusters):
            kinds["outage"] += 1
        if any(c.fault_events for c in sc.clusters):
            kinds["faults"] += 1
        if sc.site_budget_schedule:
            kinds["retune"] += 1
    assert all(v > 0 for v in kinds.values()), kinds


def test_scenario_json_roundtrip():
    for seed in range(10):
        sc = generate_federated_scenario(seed)
        blob = json.dumps(sc.to_dict(), sort_keys=True)
        assert FederatedScenario.from_dict(json.loads(blob)) == sc


def test_sharded_flag_roundtrips_and_shows_in_describe():
    sc = FederatedScenario(seed=0, site_budget_w=10_000.0, sharded=True)
    assert "sharded" in sc.describe()
    assert FederatedScenario.from_dict(json.loads(json.dumps(sc.to_dict()))) == sc
    legacy = dict(sc.to_dict())
    legacy.pop("sharded")
    assert FederatedScenario.from_dict(legacy).sharded is False


def test_generator_sharded_scenarios_are_small_and_fault_free():
    seen = False
    for seed in range(40):
        sc = generate_federated_scenario(seed)
        if not sc.sharded:
            continue
        seen = True
        assert sum(c.n_nodes for c in sc.clusters) <= 24
        assert not any(c.fault_events or c.outages for c in sc.clusters)
    assert seen, "no sharded scenario in 40 seeds"


def test_describe_mentions_every_cluster():
    sc = generate_federated_scenario(1)
    text = sc.describe()
    for c in sc.clusters:
        assert c.name in text
    assert f"seed={sc.seed}" in text


def test_outage_fault_plan_crashes_every_crashable_rank():
    sc = FederatedScenario(
        seed=0, site_budget_w=10_000.0,
        clusters=(
            ClusterScenario(name="c0", n_nodes=4, outages=((20.0, 10.0),)),
        ),
    )
    plan = sc.clusters[0].fault_plan()
    assert plan is not None
    assert sorted(ev.rank for ev in plan.events) == [1, 2, 3]
    assert all(ev.kind == "crash" and ev.duration_s == 10.0 for ev in plan.events)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def test_run_digest_is_replayable():
    a = run_federated_seed(1)
    b = run_federated_seed(1)
    assert a.digest == b.digest
    assert a.ok, a.summary()


def test_smoke_batch_is_clean():
    report = run_federated_batch(range(3))
    assert report.ok, report.summary()
    assert len(report.results) == 3
    assert all(r.digest for r in report.results)


def test_outage_scenario_reports_federation_counters():
    # seed 2 carries a whole-cluster outage (pinned by the generator
    # test above being deterministic); run it and check the digest
    # includes a rebalance count.
    found = None
    for seed in range(20):
        sc = generate_federated_scenario(seed)
        if any(c.outages for c in sc.clusters):
            found = sc
            break
    assert found is not None
    result = run_federated_scenario(found, checkers=site_checkers())
    assert result.ok, result.summary()
    assert result.n_rebalances > 0


def test_reproducer_artifact_roundtrip(tmp_path):
    sc = generate_federated_scenario(4)
    path = tmp_path / "repro.json"
    with open(path, "w") as fh:
        json.dump({"scenario": sc.to_dict(), "violations": []}, fh)
    loaded = load_federated_reproducer(str(path))
    assert loaded == sc
    result = replay_federated_scenario(loaded)
    assert result.digest == run_federated_scenario(sc).digest


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_federate_single_seed(capsys):
    rc = main(["federate", "--seed", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "OK" in out and "digest=" in out


def test_cli_federate_expect_digest(capsys):
    digest = run_federated_seed(1).digest
    assert main(["federate", "--seed", "1", "--expect-digest", digest]) == 0
    capsys.readouterr()
    # the printed 12-char prefix is accepted back verbatim
    assert main(["federate", "--seed", "1", "--expect-digest", digest[:12]]) == 0
    capsys.readouterr()
    assert main(["federate", "--seed", "1", "--expect-digest", "deadbeef"]) == 2
    capsys.readouterr()
    # short strings never prefix-match, even if they happen to be one
    assert main(["federate", "--seed", "1", "--expect-digest", digest[:8]]) == 2


def test_cli_federate_batch(capsys):
    rc = main(["federate", "--seeds", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "2 scenario(s)" in out


def test_cli_federate_demo(tmp_path, capsys):
    out_csv = tmp_path / "timeline.csv"
    rc = main(["federate", "--demo", "--output", str(out_csv)])
    assert rc == 0
    text = out_csv.read_text()
    assert text.startswith("t_s,reason,live,")
    assert "outage" in text and "recovery" in text and "retune" in text


# ----------------------------------------------------------------------
# Deep batch (REPRO_SIMTEST_DEEP=1)
# ----------------------------------------------------------------------
@pytest.mark.federation
@pytest.mark.simtest
@pytest.mark.slow
@pytest.mark.skipif(not DEEP, reason="set REPRO_SIMTEST_DEEP=1 for the deep batch")
def test_deep_federated_batch_100_seeds():
    """The ISSUE 5 acceptance batch: 100 federated seeds, 0 violations."""
    report = run_federated_batch(range(100))
    assert len(report.results) == 100
    assert report.ok, report.summary()
