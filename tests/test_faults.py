"""Fault injection and graceful degradation.

Covers the PR's tentpole guarantees:

* a crashed node degrades one telemetry row to ``partial`` instead of
  failing the whole job query;
* the cluster manager reclaims a dead node's share within one recompute;
* fanout and tree aggregation agree under injected failures (leaf and
  interior crashes);
* fault schedules are deterministic per seed and differ across seeds;
* a run with faults disabled is byte-identical to one without the
  fault layer engaged at all (the hard invariant).
"""

from __future__ import annotations

import hashlib

import pytest

from repro.cluster import PowerManagedCluster
from repro.faults import FaultEvent, FaultInjector, FaultPlan, LinkFaults
from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec
from repro.flux.module import RetryConfig
from repro.manager.cluster_manager import ManagerConfig
from repro.monitor.module import attach_monitor
from repro.monitor.root_agent import GET_JOB_POWER_TOPIC
from repro.simkernel import RandomStreams


def _counter_total(metrics, name: str) -> float:
    return sum(m.value for m in metrics.series_for(name))


def _fetch_nodes(inst, ranks, t0, t1, timeout=200.0):
    """Drive a get-job-power RPC to completion and return its node list."""
    fut = inst.brokers[0].rpc(
        0, GET_JOB_POWER_TOPIC, {"ranks": ranks, "t_start": t0, "t_end": t1}
    )
    deadline = inst.sim.now + timeout
    while not fut.triggered:
        assert inst.sim.step(), "simulation drained"
        assert inst.sim.now < deadline, "aggregation never completed"
    return fut.value["nodes"]


# ----------------------------------------------------------------------
# Plan validation and determinism
# ----------------------------------------------------------------------
def test_plan_validation_rejects_rank0_and_bad_values():
    with pytest.raises(ValueError):
        FaultPlan([FaultEvent(t=1.0, kind="crash", rank=0)]).validate(4)
    with pytest.raises(ValueError):
        FaultPlan([FaultEvent(t=1.0, kind="hang", rank=0)]).validate(4)
    with pytest.raises(ValueError):
        FaultPlan([FaultEvent(t=1.0, kind="melt", rank=1)]).validate(4)
    with pytest.raises(ValueError):
        FaultPlan([FaultEvent(t=-1.0, kind="crash", rank=1)]).validate(4)
    with pytest.raises(ValueError):
        FaultPlan([FaultEvent(t=1.0, kind="crash", rank=9)]).validate(4)
    with pytest.raises(ValueError):
        FaultPlan(link=LinkFaults(drop_prob=0.8, delay_prob=0.5)).validate(4)
    FaultPlan([FaultEvent(t=1.0, kind="restart", rank=0)]).validate(4)  # ok


def test_generated_plans_deterministic_per_seed():
    def gen(seed):
        rng = RandomStreams(seed=seed).get("faults/plan")
        return FaultPlan.generate(rng, n_ranks=16, n_crashes=2, n_hangs=2)

    a, b, c = gen(7), gen(7), gen(8)
    assert a.events == b.events  # same seed, same campaign
    assert a.events != c.events  # different seed, different campaign
    assert all(ev.rank != 0 for ev in a.events)
    assert all(20.0 <= ev.t <= 120.0 for ev in a.events)
    assert sum(1 for ev in a.events if ev.kind == "crash") == 2
    assert sum(1 for ev in a.events if ev.kind == "hang") == 2


def test_empty_plan_is_strict_noop():
    inst = FluxInstance(platform="lassen", n_nodes=2, seed=0)
    events_before = len(inst.sim._heap) if hasattr(inst.sim, "_heap") else None
    inj = FaultInjector(inst, FaultPlan.empty())
    assert not inj.enabled
    assert all(b.fault_hook is None for b in inst.brokers)
    if events_before is not None:
        assert len(inst.sim._heap) == events_before


# ----------------------------------------------------------------------
# Degraded aggregation under crashes
# ----------------------------------------------------------------------
@pytest.mark.chaos
def test_crashed_node_degrades_fetch_not_fails():
    """The acceptance scenario: crash mid-job, fetch returns partial."""
    plan = FaultPlan([FaultEvent(t=30.0, kind="crash", rank=7)])
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=5,
        manager_config=ManagerConfig(
            global_cap_w=9600.0, policy="proportional", static_node_cap_w=1950.0
        ),
        fault_plan=plan,
    )
    job = cluster.submit(Jobspec(app="gemm", nnodes=8, params={"work_scale": 3.0}))
    cluster.run_until_complete(timeout_s=1_000_000)
    data = cluster.monitor.client.fetch(job.jobid, timeout_s=120.0)

    dead_host = cluster.nodes[7].hostname
    assert data.node_complete[dead_host] is False
    assert dead_host in data.node_error
    assert data.samples_for(dead_host) == []
    # Survivors are intact and complete.
    for rank in range(7):
        host = cluster.nodes[rank].hostname
        assert data.node_complete[host] is True
        assert data.samples_for(host)
    # The CSV shows the dead node explicitly as a marker row.
    csv = data.to_csv()
    assert f"{job.jobid},{dead_host},,,,,,partial" in csv.splitlines()
    # Degradation is observable.
    metrics = cluster.telemetry_hub.metrics
    assert _counter_total(metrics, "rpc_timeouts_total") > 0
    assert _counter_total(metrics, "rpc_retries_total") > 0
    assert _counter_total(metrics, "monitor_degraded_aggregations_total") == 1


@pytest.mark.chaos
def test_manager_reclaims_dead_share_within_one_recompute():
    plan = FaultPlan([FaultEvent(t=30.0, kind="crash", rank=7)])
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=5,
        manager_config=ManagerConfig(
            global_cap_w=9600.0, policy="proportional", static_node_cap_w=1950.0
        ),
        fault_plan=plan,
    )
    cluster.submit(Jobspec(app="gemm", nnodes=8, params={"work_scale": 3.0}))
    cluster.run_until_complete(timeout_s=1_000_000)
    share_log = cluster.manager.share_log
    before = [e for e in share_log if e[0] < 30.0]
    after = [e for e in share_log if e[0] >= 30.0]
    assert before[-1][2] == pytest.approx(9600.0 / 8)
    # The very first recompute at/after the crash already reclaims.
    assert after[0][2] == pytest.approx(9600.0 / 7)
    metrics = cluster.telemetry_hub.metrics
    assert _counter_total(metrics, "manager_node_deaths_total") == 1


@pytest.mark.chaos
@pytest.mark.parametrize("dead_rank", [7, 1])  # leaf and interior
def test_fanout_tree_parity_under_crash(dead_rank):
    """Both strategies degrade the same rank set for any crashed broker.

    An interior broker (rank 1 in an 8-node fanout-2 tree) carries its
    subtree {1, 3, 4, 7}: store-and-forward kills those routes for
    fanout exactly as the dead child kills the subtree leg for tree.
    """

    def collect(strategy):
        inst = FluxInstance(platform="lassen", n_nodes=8, seed=11)
        attach_monitor(
            inst,
            strategy=strategy,
            retry=RetryConfig(timeout_s=2.0, retries=1, backoff=2.0),
        )
        FaultInjector(inst, FaultPlan([FaultEvent(t=10.0, kind="crash", rank=dead_rank)]))
        inst.run_for(20.0)
        nodes = _fetch_nodes(inst, list(range(8)), 0.0, 15.0)
        by_host = {}
        for rec in nodes:
            key = (
                rec["rank"],
                bool(rec.get("error")),
                rec["complete"],
                len(rec["samples"]),
            )
            by_host[rec["hostname"]] = key
        return by_host

    fanout = collect("fanout")
    tree = collect("tree")
    assert fanout == tree
    expected_dead = {7} if dead_rank == 7 else {1, 3, 4, 7}
    dead = {k for host, (r, err, _c, _n) in fanout.items() for k in [r] if err}
    assert dead == expected_dead


@pytest.mark.chaos
def test_hang_recovered_by_retries():
    """A hang shorter than the retry budget costs latency, not data."""
    inst = FluxInstance(platform="lassen", n_nodes=4, seed=3)
    attach_monitor(inst, retry=RetryConfig(timeout_s=2.0, retries=2, backoff=2.0))
    FaultInjector(inst, FaultPlan([FaultEvent(t=9.9, kind="hang", rank=2, duration_s=3.0)]))
    inst.run_for(10.0)
    nodes = _fetch_nodes(inst, [0, 1, 2, 3], 0.0, 9.0)
    assert len(nodes) == 4
    for rec in nodes:
        assert not rec.get("error")
        assert rec["samples"]
    metrics = inst.telemetry.metrics
    assert _counter_total(metrics, "rpc_retries_total") > 0


@pytest.mark.chaos
def test_link_drops_recovered_by_retries():
    inst = FluxInstance(platform="lassen", n_nodes=4, seed=3)
    attach_monitor(inst, retry=RetryConfig(timeout_s=2.0, retries=3, backoff=1.5))
    # Restrict the lossy window to the non-root ranks: the client's own
    # RPC to the root service is local (0 -> 0) and has no retry of its
    # own, so the test exercises exactly the retried legs.
    FaultInjector(
        inst,
        FaultPlan(
            link=LinkFaults(drop_prob=0.4, t_start=0.0, t_end=1e9, ranks={1, 2, 3})
        ),
    )
    inst.run_for(10.0)
    nodes = _fetch_nodes(inst, [0, 1, 2, 3], 0.0, 9.0)
    complete = [rec for rec in nodes if not rec.get("error")]
    # With 40% loss and 4 attempts most legs recover; all answered legs
    # carry real samples.
    assert complete
    for rec in complete:
        assert rec["samples"]
    metrics = inst.telemetry.metrics
    assert _counter_total(metrics, "tbon_messages_dropped_total") > 0


@pytest.mark.chaos
def test_restart_brings_back_partial_telemetry():
    """After crash+restart the node answers again, flagged partial."""
    plan = FaultPlan(
        [FaultEvent(t=20.0, kind="crash", rank=3, duration_s=20.0)]
    )
    cluster = PowerManagedCluster(
        platform="lassen", n_nodes=4, seed=9, fault_plan=plan
    )
    job = cluster.submit(Jobspec(app="gemm", nnodes=4, params={"work_scale": 3.0}))
    cluster.run_until_complete(timeout_s=1_000_000)
    assert cluster.sim.now > 60.0  # restart (t=40) happened mid-job
    data = cluster.monitor.client.fetch(job.jobid, timeout_s=120.0)
    host = cluster.nodes[3].hostname
    # The reborn agent answers (no error record) but its history starts
    # at the restart, so the job window is partial.
    assert host not in data.node_error
    assert data.node_complete[host] is False
    samples = data.samples_for(host)
    assert samples
    assert min(s["timestamp"] for s in samples) >= 40.0


# ----------------------------------------------------------------------
# The hard invariant: faults disabled == byte-identical
# ----------------------------------------------------------------------
def _run_fingerprint(fault_plan):
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=21,
        manager_config=ManagerConfig(
            global_cap_w=4800.0, policy="proportional", static_node_cap_w=1950.0
        ),
        fault_plan=fault_plan,
    )
    job = cluster.submit(Jobspec(app="gemm", nnodes=4, params={"work_scale": 2.0}))
    cluster.run_until_complete(timeout_s=1_000_000)
    cluster.run_for(4.0)
    data = cluster.monitor.client.fetch(job.jobid)
    blob = data.to_csv()
    blob += repr(cluster.manager.share_log)
    blob += repr(
        sorted(
            (jid, m.runtime_s, m.avg_node_power_w)
            for jid, m in cluster.all_metrics().items()
        )
    )
    blob += repr(
        [
            (e.name, e.category, e.ts_s, e.dur_s, e.rank, e.kind)
            for e in cluster.telemetry_hub.tracer.events()
        ]
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def test_faults_disabled_byte_identical():
    """None plan, empty plan and explicit empty() all fingerprint alike."""
    assert _run_fingerprint(None) == _run_fingerprint(FaultPlan.empty())
    assert _run_fingerprint(None) == _run_fingerprint(FaultPlan())
