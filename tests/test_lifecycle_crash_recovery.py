"""Crash-at-random-tick recovery: the digest-equivalence oracle.

The artifact's contract — snapshot → wipe → restore at *any* instant
leaves the remaining run byte-identical to never having crashed — is
property-tested here over generated scenarios (cluster tier) and a
deterministic mid-outage site restore (federated tier), plus unit
coverage of the ``lifecycle`` simtest invariant that guards the books.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import PowerManagedCluster
from repro.flux.jobspec import Jobspec
from repro.lifecycle.machine import MAINTENANCE, RETIRED
from repro.lifecycle.recovery import fuzz_recovery, run_scenario_with_recovery
from repro.lifecycle.snapshot import (
    restore_site,
    snapshot_site,
    wipe_site_state,
)
from repro.manager.cluster_manager import ManagerConfig
from repro.simtest.federation.harness import run_federated_scenario
from repro.simtest.federation.scenario import ClusterScenario, FederatedScenario
from repro.simtest.harness import SimtestContext, run_scenario
from repro.simtest.invariants import LifecycleChecker
from repro.simtest.scenario import (
    GeneratorConfig,
    JobEntry,
    Scenario,
    generate_scenario,
)

#: Small scenarios keep each (base run + recovery run) pair cheap; the
#: 100-seed campaign in tools/verify.sh covers the full default bounds.
SMALL = GeneratorConfig(max_nodes=8, max_jobs=3)


# ----------------------------------------------------------------------
# Property: crash anywhere, restore, land on the same digest
# ----------------------------------------------------------------------
@settings(derandomize=True, deadline=None, max_examples=8)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    fraction=st.floats(min_value=0.15, max_value=0.85),
)
def test_crash_restore_lands_on_the_uninterrupted_digest(seed, fraction):
    result = run_scenario_with_recovery(
        generate_scenario(seed, SMALL), crash_fraction=fraction
    )
    assert result.ok, result.summary()


def test_fuzz_batch_reports_equivalence():
    batch = fuzz_recovery(range(3), cfg=SMALL)
    assert batch.ok, "\n".join(r.summary() for r in batch.failures)
    assert batch.summary() == "3 seeds, 3 equivalent, 0 diverged"


# ----------------------------------------------------------------------
# Federated tier: restore mid-outage, digests still converge
# ----------------------------------------------------------------------
def test_site_crash_restore_mid_outage_is_digest_equivalent():
    scenario = FederatedScenario(
        seed=9,
        site_budget_w=15_000.0,
        rebalance_epoch_s=10.0,
        clusters=(
            ClusterScenario(
                name="east", platform="lassen", n_nodes=3,
                jobs=(JobEntry(app="gemm", nnodes=2, work_scale=3.0,
                               submit_t=0.0),),
                outages=((12.0, 8.0),),
            ),
            ClusterScenario(
                name="west", platform="lassen", n_nodes=2,
                jobs=(JobEntry(app="nqueens", nnodes=2, work_scale=3.0,
                               submit_t=2.0),),
            ),
        ),
    )
    base = run_federated_scenario(scenario)
    assert base.ok, base.summary()
    assert base.makespan_s is not None and base.makespan_s > 15.0

    # t=15 is inside east's outage window (12 → 20): the artifact must
    # carry the site's dead-set bookkeeping for the digests to match.
    def _crash_restore(site, sim):
        def _cycle():
            blob = json.dumps(snapshot_site(site), sort_keys=True)
            wipe_site_state(site)
            restore_site(site, json.loads(blob))

        sim.schedule_at(15.0, _cycle)

    recovered = run_federated_scenario(scenario, setup=_crash_restore)
    assert recovered.ok, recovered.summary()
    assert recovered.digest == base.digest


# ----------------------------------------------------------------------
# The lifecycle invariant checker
# ----------------------------------------------------------------------
def _running_cluster(n_nodes: int = 4):
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=n_nodes,
        seed=6,
        manager_config=ManagerConfig(
            global_cap_w=1500.0 * n_nodes,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
    )
    cluster.submit(Jobspec(app="gemm", nnodes=n_nodes, params={"work_scale": 6.0}))
    cluster.run_for(10.0)
    return cluster


def test_checker_flags_booked_rank_forced_into_maintenance():
    cluster = _running_cluster()
    ctx = SimtestContext(cluster, generate_scenario(0, SMALL))
    checker = LifecycleChecker()
    assert checker.check(ctx) == []
    # Forge the transition *without* draining the books — the bug class
    # the invariant exists to catch, exact at the very same tick.
    root = cluster.manager.cluster
    root.lifecycle.transition(2, MAINTENANCE, reason="forged", t=cluster.sim.now)
    violations = checker.check(ctx)
    assert violations
    assert "books rank 2" in violations[0].message


def test_proper_maintenance_drain_is_clean_immediately():
    cluster = _running_cluster()
    root = cluster.manager.cluster
    root.begin_maintenance(2)
    ctx = SimtestContext(cluster, generate_scenario(0, SMALL))
    checker = LifecycleChecker()
    assert checker.check(ctx) == []  # books drained in the same event
    assert all(
        2 not in state.ranks for state in root.job_level.jobs.values()
    )
    # After service the rank returns to the pool.
    root.end_maintenance(2)
    assert root.lifecycle.is_available(2)


def test_retired_rank_releases_its_cap_within_one_settle_tick():
    cluster = _running_cluster()
    root = cluster.manager.cluster
    nm = cluster.manager.node_managers[2]
    assert nm.node_limit_w is not None  # capped while booked
    root.retire_node(2)
    ctx = SimtestContext(cluster, generate_scenario(0, SMALL))
    checker = LifecycleChecker()
    # First sight: the departure RPC is still crossing the TBON, so the
    # stale cap is a suspect, not yet a violation.
    assert checker.check(ctx) == []
    cluster.run_for(1.0)
    ctx.tick_index += 1
    assert nm.node_limit_w is None
    assert checker.check(ctx) == []


def test_forged_retirement_without_drain_violates_after_grace():
    cluster = _running_cluster()
    root = cluster.manager.cluster
    # Retire via the raw registry, skipping retire_node's drain: the
    # node manager keeps its limit forever.
    root.lifecycle.transition(2, RETIRED, reason="forged", t=cluster.sim.now)
    root.job_level.node_died(2)  # keep the booking check quiet
    ctx = SimtestContext(cluster, generate_scenario(0, SMALL))
    checker = LifecycleChecker()
    assert checker.check(ctx) == []  # settle grace
    cluster.run_for(5.0)
    ctx.tick_index += 1
    violations = checker.check(ctx)
    assert violations
    assert "retired rank 2" in violations[0].message


def test_mid_run_maintenance_scenario_passes_all_invariants():
    scenario = Scenario(
        seed=13,
        n_nodes=6,
        global_cap_w=9_000.0,
        jobs=(
            JobEntry(app="gemm", nnodes=6, work_scale=4.0, submit_t=0.0),
            JobEntry(app="nqueens", nnodes=4, work_scale=1.0, submit_t=30.0),
        ),
    )

    def _setup(cluster, sim):
        def _service():
            cluster.manager.cluster.begin_maintenance(5)

        sim.schedule_at(10.0, _service)

    result = run_scenario(scenario, setup=_setup)
    assert result.ok, result.summary()
