"""Unit + property tests for the analysis utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.analysis.energy import JobMetrics, combined_energy_kj, integrate_energy_j
from repro.analysis.stats import boxplot_stats, mean, percent_change, stdev
from repro.analysis.traces import ClusterPowerTrace
from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec


# ---------------------------------------------------------------------------
# Energy integration
# ---------------------------------------------------------------------------

def test_integrate_constant_power():
    series = [(0.0, 100.0), (10.0, 100.0)]
    assert integrate_energy_j(series) == pytest.approx(1000.0)


def test_integrate_ramp():
    series = [(0.0, 0.0), (10.0, 100.0)]
    assert integrate_energy_j(series) == pytest.approx(500.0)


def test_integrate_short_series_is_zero():
    assert integrate_energy_j([]) == 0.0
    assert integrate_energy_j([(0.0, 100.0)]) == 0.0


def test_integrate_rejects_backwards_time():
    with pytest.raises(ValueError):
        integrate_energy_j([(5.0, 1.0), (1.0, 1.0)])


@given(
    st.lists(
        st.tuples(st.floats(0, 1000), st.floats(0, 5000)),
        min_size=2,
        max_size=50,
    ).map(lambda pts: sorted(pts, key=lambda p: p[0]))
)
def test_integrate_matches_numpy_trapezoid(series):
    ours = integrate_energy_j(series)
    t = [p[0] for p in series]
    p = [p[1] for p in series]
    theirs = float(np.trapezoid(p, t))
    assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-6)


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------

def test_mean_and_stdev():
    assert mean([1.0, 2.0, 3.0]) == 2.0
    assert stdev([1.0, 2.0, 3.0]) == pytest.approx(1.0)
    assert stdev([5.0]) == 0.0


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])


def test_percent_change_sign_convention():
    assert percent_change(110.0, 100.0) == pytest.approx(10.0)
    assert percent_change(90.0, 100.0) == pytest.approx(-10.0)
    with pytest.raises(ZeroDivisionError):
        percent_change(1.0, 0.0)


def test_boxplot_stats():
    b = boxplot_stats([1.0, 2.0, 3.0, 4.0, 5.0])
    assert b.minimum == 1.0 and b.maximum == 5.0
    assert b.median == 3.0
    assert b.iqr == pytest.approx(2.0)
    assert b.spread_pct == pytest.approx((5 - 1) / 3 * 100)


def test_boxplot_empty_raises():
    with pytest.raises(ValueError):
        boxplot_stats([])


@given(st.lists(st.floats(1.0, 100.0), min_size=1, max_size=50))
def test_boxplot_ordering_property(xs):
    b = boxplot_stats(xs)
    assert b.minimum <= b.q1 <= b.median <= b.q3 <= b.maximum


# ---------------------------------------------------------------------------
# JobMetrics
# ---------------------------------------------------------------------------

def test_job_metrics_row_formatting():
    m = JobMetrics(
        app="gemm",
        nnodes=6,
        runtime_s=548.0,
        max_node_power_w=1523.0,
        avg_node_power_w=1325.0,
        avg_node_energy_kj=726.0,
    )
    assert "gemm" in m.row()
    assert JobMetrics.header().split()[0] == "app"


def test_combined_energy_weights_by_nodes():
    a = JobMetrics("a", 6, 1.0, 1.0, 1.0, 100.0)
    b = JobMetrics("b", 2, 1.0, 1.0, 1.0, 50.0)
    assert combined_energy_kj([a, b]) == pytest.approx(700.0)


# ---------------------------------------------------------------------------
# ClusterPowerTrace
# ---------------------------------------------------------------------------

def test_trace_records_idle_and_load():
    inst = FluxInstance(platform="lassen", n_nodes=2, seed=1)
    trace = ClusterPowerTrace(inst, interval_s=2.0)
    inst.submit(Jobspec(app="laghos", nnodes=2))
    inst.run_until_complete()
    inst.run_for(4.0)
    trace.stop()
    series = trace.cluster_series()
    assert series[0][1] == pytest.approx(800.0)  # both idle at t=0
    assert trace.max_cluster_power_w() > 800.0


def test_trace_window_average():
    inst = FluxInstance(platform="lassen", n_nodes=1, seed=1)
    trace = ClusterPowerTrace(inst, interval_s=1.0)
    inst.run_for(10.0)
    assert trace.avg_cluster_power_w() == pytest.approx(400.0)
    assert trace.avg_cluster_power_w(t_start=2.0, t_end=5.0) == pytest.approx(400.0)


def test_trace_subset_of_ranks():
    inst = FluxInstance(platform="lassen", n_nodes=4, seed=1)
    trace = ClusterPowerTrace(inst, interval_s=2.0, ranks=[1, 2])
    inst.run_for(4.0)
    assert set(trace.node_series) == {"lassen001", "lassen002"}


def test_trace_node_timeline_alignment():
    inst = FluxInstance(platform="lassen", n_nodes=2, seed=1)
    trace = ClusterPowerTrace(inst, interval_s=2.0)
    inst.run_for(6.0)
    tl = trace.node_timeline("lassen000")
    assert [t for t, _ in tl] == [0.0, 2.0, 4.0, 6.0]


def test_trace_empty_window_raises():
    inst = FluxInstance(platform="lassen", n_nodes=1, seed=1)
    trace = ClusterPowerTrace(inst, interval_s=2.0)
    with pytest.raises(ValueError):
        trace.max_cluster_power_w()
