"""Property tests for the FPP controller state machine."""

import math

from hypothesis import given, strategies as st

from repro.manager.policies.fpp import FPPGpuController, FPPParams

period_or_none = st.one_of(st.none(), st.floats(5.0, 60.0))


@given(
    periods=st.lists(period_or_none, min_size=1, max_size=20),
    start_cap=st.floats(150.0, 300.0),
)
def test_caps_always_within_bounds(periods, start_cap):
    """Whatever period sequence arrives, caps stay in [floor, ceiling]."""
    ctl = FPPGpuController(0, FPPParams(), sample_dt_s=2.0)
    floor, ceiling = 100.0, 300.0
    cap = min(start_cap, ceiling)
    for p in periods:
        ctl.period_s = p
        cap = ctl.next_cap(cap, floor, ceiling)
        assert floor <= cap <= ceiling


@given(periods=st.lists(st.floats(5.0, 60.0), min_size=3, max_size=20))
def test_converged_is_absorbing(periods):
    """Once converged, no period sequence changes the cap again."""
    ctl = FPPGpuController(0, FPPParams(), sample_dt_s=2.0)
    cap = 253.0
    ctl.period_s = periods[0]
    cap = ctl.next_cap(cap, 100.0, 253.0)  # probe
    ctl.period_s = periods[0]  # identical -> converge
    cap = ctl.next_cap(cap, 100.0, 253.0)
    assert ctl.converged
    frozen = cap
    for p in periods[1:]:
        ctl.period_s = p
        assert ctl.next_cap(frozen, 100.0, 253.0) == frozen


@given(
    t_prev=st.floats(5.0, 60.0),
    delta=st.floats(-20.0, 20.0),
)
def test_branch_selection_matches_algorithm1(t_prev, delta):
    """The three branches of GET-GPU-CAP fire exactly per the thresholds."""
    p = FPPParams()
    ctl = FPPGpuController(0, p, sample_dt_s=2.0)
    ctl.period_s = t_prev
    cap = ctl.next_cap(253.0, 100.0, 253.0)  # first interval: probe
    ctl.period_s = t_prev + delta
    new_cap = ctl.next_cap(cap, 100.0, 253.0)
    if abs(delta) <= p.converge_th_s:
        assert ctl.converged and new_cap == cap
    elif delta < 0 and abs(delta) < p.change_th_s:
        assert new_cap == max(100.0, cap - p.p_reduce_w)
    else:
        idx = min(int(abs(delta) / p.change_th_s), 2)
        assert new_cap == min(253.0, cap + p.powercap_levels_w[idx])


@given(st.lists(st.floats(0.0, 400.0), min_size=0, max_size=120))
def test_store_power_never_crashes_and_period_sane(samples):
    ctl = FPPGpuController(0, FPPParams(), sample_dt_s=2.0)
    for s in samples:
        ctl.store_power(s)
    assert ctl.period_s is None or (
        math.isfinite(ctl.period_s) and ctl.period_s > 0
    )


@given(n=st.integers(0, 100))
def test_reset_buffer_always_empties(n):
    ctl = FPPGpuController(0, FPPParams(), sample_dt_s=2.0)
    for i in range(n):
        ctl.store_power(float(i % 7) * 40.0)
    ctl.reset_buffer()
    assert ctl.buffer == []
    # A refresh on an empty buffer must not fabricate a period.
    old = ctl.period_s
    ctl.refresh_period()
    assert ctl.period_s == old or ctl.period_s is None
