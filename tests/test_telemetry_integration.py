"""Integration tests: the observability hub wired into a managed run.

Two properties matter most and are pinned here:

1. the instrumented hot paths actually report (metric names exist,
   traces recorded, overhead attributed), and
2. telemetry is a pure observer — a run with it disabled produces
   byte-identical power timelines and job metrics.
"""

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster


def make_cluster(telemetry_enabled=True, policy="fpp", platform="lassen"):
    return PowerManagedCluster(
        platform=platform,
        n_nodes=8,
        seed=7,
        manager_config=ManagerConfig(
            global_cap_w=9600.0, policy=policy, static_node_cap_w=1950.0
        ),
        telemetry_enabled=telemetry_enabled,
    )


@pytest.fixture(scope="module")
def ran_cluster():
    cluster = make_cluster()
    cluster.submit(Jobspec(app="gemm", nnodes=4))
    cluster.submit(Jobspec(app="lammps", nnodes=4))
    cluster.run_until_complete()
    return cluster


def test_expected_metrics_present(ran_cluster):
    names = set(ran_cluster.telemetry_hub.metrics.names())
    expected = {
        "flux_rpc_requests_total",
        "flux_rpc_latency_seconds",
        "flux_messages_sent_total",
        "flux_events_published_total",
        "tbon_bytes_total",
        "tbon_hops_total",
        "monitor_samples_total",
        "monitor_buffer_occupancy",
        "manager_share_recomputes_total",
        "manager_job_limit_assignments_total",
        "manager_node_limit_updates_total",
        "manager_cap_update_latency_seconds",
        "manager_gpu_cap_sets_total",
        "fpp_control_ticks_total",
        "fpp_fft_runs_total",
        "overhead_seconds_total",
    }
    assert expected <= names, f"missing: {expected - names}"


def test_rpc_latency_measured(ran_cluster):
    h = ran_cluster.telemetry_hub.metrics.histogram(
        "flux_rpc_latency_seconds",
        labels={"topic": "power-manager.set-node-limit"},
    )
    assert h.count > 0
    # Control RPCs ride the ~100 us TBON path; round trips stay well
    # under a second on an 8-node tree.
    assert 0.0 < h.mean < 1.0


def test_cap_chain_latency_measured(ran_cluster):
    h = ran_cluster.telemetry_hub.metrics.histogram(
        "manager_cap_update_latency_seconds"
    )
    assert h.count > 0
    assert 0.0 < h.mean < 1.0  # one-way < round trip


def test_traces_recorded(ran_cluster):
    names = {e.name for e in ran_cluster.telemetry_hub.tracer.events()}
    assert "fpp.control_tick" in names
    assert any(n.startswith("rpc:") for n in names)


def test_monitor_overhead_below_threshold(ran_cluster):
    report = ran_cluster.overhead_report()
    pct = report.monitor_overhead_pct
    # Lassen steady state is 7 ms per 2 s sample = 0.35 %; the paper
    # reports 1.2 % on Lassen and 0.4 % average. Anything at or above
    # 1.2 % would mean the accounting (or the monitor) regressed.
    assert 0.0 < pct < 1.2
    assert report.paper_reference_pct() == 1.2
    assert report.pct("application") > 10.0


def test_overhead_categories_accounted(ran_cluster):
    acc = ran_cluster.telemetry_hub.accountant
    assert acc.seconds("monitor") > 0.0
    assert acc.seconds("manager") > 0.0
    # Mirrored into the registry for export.
    c = ran_cluster.telemetry_hub.metrics.counter(
        "overhead_seconds_total", labels={"category": "monitor"}
    )
    assert c.value == pytest.approx(acc.seconds("monitor"))


def test_tioga_overhead_is_much_lower():
    cluster = make_cluster(platform="tioga", policy="proportional")
    cluster.submit(Jobspec(app="gemm", nnodes=4))
    cluster.run_until_complete()
    # 0.8 ms per 2 s sample = 0.04 % — the paper's Tioga figure.
    assert cluster.overhead_report().monitor_overhead_pct == pytest.approx(
        0.04, abs=0.02
    )


# ----------------------------------------------------------------------
# The determinism contract
# ----------------------------------------------------------------------
def _run_and_fingerprint(telemetry_enabled):
    cluster = make_cluster(telemetry_enabled=telemetry_enabled)
    cluster.submit(Jobspec(app="gemm", nnodes=4))
    cluster.submit(Jobspec(app="lammps", nnodes=4))
    t_end = cluster.run_until_complete()
    return (
        t_end,
        cluster.trace.to_csv(),
        {
            jid: (m.runtime_s, m.avg_node_power_w, m.avg_node_energy_kj)
            for jid, m in cluster.all_metrics().items()
        },
    )


def test_telemetry_on_off_byte_identical():
    on = _run_and_fingerprint(True)
    off = _run_and_fingerprint(False)
    assert on == off


def test_disabled_hub_records_nothing():
    cluster = make_cluster(telemetry_enabled=False)
    cluster.submit(Jobspec(app="gemm", nnodes=2))
    cluster.run_until_complete()
    hub = cluster.telemetry_hub
    assert not hub.enabled
    assert all(
        m.value == 0.0
        for name in hub.metrics.names()
        for m in hub.metrics.series_for(name)
        if hasattr(m, "value")
    )
    assert len(hub.tracer) == 0
    assert hub.accountant.categories() == []
