"""The asyncio HTTP/1.1 shell: real sockets over the service core.

Boots a :class:`ServingServer` on an ephemeral port inside each test's
own event loop and talks to it with raw sockets / the keep-alive
client: JSON round-trips, query-string decoding, protocol-level error
envelopes (malformed request line, bad JSON, oversized bodies), the
single-dispatcher ordering guarantee, and the HTTP flavour of the
loadgen harness.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.cluster import PowerManagedCluster
from repro.manager.cluster_manager import ManagerConfig
from repro.serving import (
    AsyncApiClient,
    ClusterRegistry,
    LoadProfile,
    PowerService,
    ServingServer,
    SimDriver,
    arun_loadtest_http,
)
from repro.serving.http import MAX_REQUEST_BYTES


def _server(n_nodes=8, advance_interval_s=None):
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=n_nodes,
        seed=5,
        manager_config=ManagerConfig(
            global_cap_w=1250.0 * n_nodes, policy="proportional",
            static_node_cap_w=1950.0,
        ),
    )
    registry = ClusterRegistry.from_cluster(cluster, name="default")
    return ServingServer(
        PowerService(registry), SimDriver(registry),
        advance_interval_s=advance_interval_s,
    )


def _run(coro):
    return asyncio.run(coro)


async def _with_server(body, **kwargs):
    server = _server(**kwargs)
    await server.start()
    try:
        return await body(server)
    finally:
        await server.stop()


# ---------------------------------------------------------------------------
# JSON round-trips
# ---------------------------------------------------------------------------


def test_health_and_submit_roundtrip():
    async def body(server):
        client = AsyncApiClient("127.0.0.1", server.port)
        status, payload = await client.request("GET", "/v1/health")
        assert status == 200 and payload["status"] == "ok"
        status, job = await client.request(
            "POST", "/v1/clusters/default/jobs",
            body={"app": "gemm", "nnodes": 2, "params": {"work_scale": 0.5}},
        )
        assert status == 201 and job["jobid"] == 1
        status, got = await client.request(
            "GET", f"/v1/clusters/default/jobs/{job['jobid']}",
            params={"response_format": "detailed"},
        )
        assert status == 200 and got["app"] == "gemm"
        await client.close()

    _run(_with_server(body))


def test_query_string_reaches_params():
    async def body(server):
        client = AsyncApiClient("127.0.0.1", server.port)
        status, page = await client.request(
            "GET", "/v1/clusters/default/nodes",
            params={"limit": 3, "offset": 2, "response_format": "detailed"},
        )
        assert status == 200
        assert [n["rank"] for n in page["nodes"]] == [2, 3, 4]
        assert "idle_power_w" in page["nodes"][0]
        await client.close()

    _run(_with_server(body))


def test_keep_alive_serves_many_requests_per_connection():
    async def body(server):
        client = AsyncApiClient("127.0.0.1", server.port)
        for _ in range(20):
            status, _payload = await client.request("GET", "/v1/health")
            assert status == 200
        await client.close()

    _run(_with_server(body))


def test_structured_404_over_the_wire():
    async def body(server):
        client = AsyncApiClient("127.0.0.1", server.port)
        status, payload = await client.request("GET", "/v1/clusters/nowhere")
        assert status == 404
        assert payload["error"]["code"] == "unknown_cluster"
        await client.close()

    _run(_with_server(body))


# ---------------------------------------------------------------------------
# Protocol-level garbage: structured 4xx, never a hang or traceback
# ---------------------------------------------------------------------------


async def _raw_exchange(port, blob):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(blob)
    await writer.drain()
    data = await reader.read(MAX_REQUEST_BYTES)
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    return data


def _status_and_body(raw):
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(payload)


def test_malformed_request_line_is_a_400():
    async def body(server):
        raw = await _raw_exchange(server.port, b"NONSENSE\r\n\r\n")
        status, payload = _status_and_body(raw)
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    _run(_with_server(body))


def test_invalid_json_body_is_a_400():
    async def body(server):
        blob = (
            b"POST /v1/clusters/default/jobs HTTP/1.1\r\n"
            b"Content-Length: 9\r\n\r\n{not json"
        )
        status, payload = _status_and_body(await _raw_exchange(server.port, blob))
        assert status == 400
        assert "JSON" in payload["error"]["message"]

    _run(_with_server(body))


def test_oversized_body_is_a_413():
    async def body(server):
        blob = (
            f"POST /v1/batch HTTP/1.1\r\n"
            f"Content-Length: {MAX_REQUEST_BYTES + 1}\r\n\r\n"
        ).encode()
        status, payload = _status_and_body(await _raw_exchange(server.port, blob))
        assert status == 413
        assert payload["error"]["code"] == "too_large"

    _run(_with_server(body))


def test_bad_content_length_is_a_400():
    async def body(server):
        blob = b"GET /v1/health HTTP/1.1\r\nContent-Length: lots\r\n\r\n"
        status, payload = _status_and_body(await _raw_exchange(server.port, blob))
        assert status == 400

    _run(_with_server(body))


# ---------------------------------------------------------------------------
# The single dispatcher
# ---------------------------------------------------------------------------


def test_concurrent_submits_serialize_without_loss():
    """50 sockets submitting at once: every submit lands, ids are unique."""

    async def body(server):
        async def one(i):
            client = AsyncApiClient("127.0.0.1", server.port)
            status, job = await client.request(
                "POST", "/v1/clusters/default/jobs",
                body={"app": "gemm", "nnodes": 1, "name": f"c{i}"},
            )
            await client.close()
            assert status == 201
            return job["jobid"]

        jobids = await asyncio.gather(*(one(i) for i in range(50)))
        assert sorted(jobids) == list(range(1, 51))
        client = AsyncApiClient("127.0.0.1", server.port)
        status, page = await client.request(
            "GET", "/v1/clusters/default/jobs", params={"limit": 100})
        assert status == 200 and page["total"] == 50
        await client.close()

    _run(_with_server(body))


def test_advance_loop_moves_simulated_time():
    async def body(server):
        t0 = server.driver.sim.now
        await asyncio.sleep(0.12)
        client = AsyncApiClient("127.0.0.1", server.port)
        status, health = await client.request("GET", "/v1/health")
        await client.close()
        assert status == 200
        assert health["t"] > t0

    _run(_with_server(body, advance_interval_s=0.02))


# ---------------------------------------------------------------------------
# HTTP loadgen flavour
# ---------------------------------------------------------------------------


def test_http_loadtest_runs_clean():
    async def body(server):
        profile = LoadProfile(clients=10, requests_per_client=3,
                              warmup_jobs=2, advance_every=0)
        result = await arun_loadtest_http(
            3, profile, "127.0.0.1", server.port, n_nodes=8)
        assert result.mode == "http"
        assert result.n_requests == 30
        assert result.errors == 0, result.status_counts
        assert result.p99_ms > 0
        return result

    first = _run(_with_server(body))
    second = _run(_with_server(body))
    # Fresh identically-seeded worlds: byte-identical traffic + answers.
    assert first.trace_sha256 == second.trace_sha256
    assert first.response_digest == second.response_digest


def test_dispatch_api_without_sockets():
    async def body(server):
        response = await server.dispatch("GET", "/v1/health")
        assert response.status == 200 and response.body["status"] == "ok"

    _run(_with_server(body))
