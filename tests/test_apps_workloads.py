"""Unit tests for the workload/queue generators."""

import numpy as np
import pytest

from repro.apps.workloads import PAPER_QUEUE_MIX, make_random_queue


def test_default_queue_has_paper_composition():
    queue = make_random_queue(np.random.default_rng(1))
    counts = {}
    for entry in queue:
        counts[entry.spec.app] = counts.get(entry.spec.app, 0) + 1
    assert counts == PAPER_QUEUE_MIX
    assert len(queue) == 10


def test_node_counts_in_range():
    queue = make_random_queue(np.random.default_rng(2), min_nodes=1, max_nodes=8)
    assert all(1 <= e.spec.nnodes <= 8 for e in queue)


def test_same_seed_same_queue():
    a = make_random_queue(np.random.default_rng(7))
    b = make_random_queue(np.random.default_rng(7))
    assert [(e.spec.app, e.spec.nnodes) for e in a] == [
        (e.spec.app, e.spec.nnodes) for e in b
    ]


def test_different_seeds_differ():
    a = make_random_queue(np.random.default_rng(1))
    b = make_random_queue(np.random.default_rng(2))
    assert [(e.spec.app, e.spec.nnodes) for e in a] != [
        (e.spec.app, e.spec.nnodes) for e in b
    ]


def test_work_scales_propagate_to_params():
    queue = make_random_queue(
        np.random.default_rng(1), work_scales={"gemm": 2.5}
    )
    for e in queue:
        if e.spec.app == "gemm":
            assert e.spec.params["work_scale"] == 2.5
        else:
            assert "work_scale" not in e.spec.params


def test_custom_mix():
    queue = make_random_queue(np.random.default_rng(1), mix={"nqueens": 4})
    assert len(queue) == 4
    assert all(e.spec.app == "nqueens" for e in queue)


def test_submit_spread_offsets():
    queue = make_random_queue(np.random.default_rng(1), submit_spread_s=100.0)
    offsets = [e.submit_offset_s for e in queue]
    assert all(0.0 <= o <= 100.0 for o in offsets)
    assert len(set(offsets)) > 1


def test_zero_spread_means_all_at_zero():
    queue = make_random_queue(np.random.default_rng(1))
    assert all(e.submit_offset_s == 0.0 for e in queue)


def test_job_names_unique():
    queue = make_random_queue(np.random.default_rng(1))
    names = [e.spec.name for e in queue]
    assert len(set(names)) == len(names)


# ---------------------------------------------------------------------------
# CSV round-trip
# ---------------------------------------------------------------------------

def test_queue_csv_roundtrip():
    from repro.apps.workloads import queue_from_csv, queue_to_csv

    queue = make_random_queue(
        np.random.default_rng(4),
        work_scales={"gemm": 2.0, "lammps": 3.0},
        submit_spread_s=50.0,
    )
    text = queue_to_csv(queue)
    parsed = queue_from_csv(text)
    assert len(parsed) == len(queue)
    for a, b in zip(queue, parsed):
        assert a.spec.app == b.spec.app
        assert a.spec.nnodes == b.spec.nnodes
        assert a.spec.params.get("work_scale", 1.0) == pytest.approx(
            b.spec.params.get("work_scale", 1.0)
        )
        assert a.submit_offset_s == pytest.approx(b.submit_offset_s)


def test_queue_csv_rejects_garbage():
    from repro.apps.workloads import queue_from_csv

    with pytest.raises(ValueError):
        queue_from_csv("not,a,queue")
    with pytest.raises(ValueError):
        queue_from_csv("app,nnodes,work_scale,submit_offset_s,name\nonly,two")


def test_queue_csv_replays_identically():
    """A replayed queue drives the same campaign as the original."""
    from repro.apps.workloads import queue_from_csv, queue_to_csv
    from repro.flux.instance import FluxInstance

    queue = make_random_queue(
        np.random.default_rng(5), mix={"laghos": 3}, work_scales={"laghos": 2.0}
    )
    replay = queue_from_csv(queue_to_csv(queue))

    def run(q):
        inst = FluxInstance(platform="lassen", n_nodes=8, seed=9)
        for entry in q:
            inst.submit(entry.spec)
        inst.run_until_complete(timeout_s=500_000)
        return inst.jobmanager.makespan_s()

    assert run(queue) == pytest.approx(run(replay))
