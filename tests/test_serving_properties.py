"""Property tests of the serving API (hypothesis, derandomized).

Three properties the ISSUE pins:

* **Pagination is a partition** — for any (limit, offset) walk, the
  concatenated pages equal the full listing exactly: nothing dropped,
  nothing duplicated, order preserved.
* **Concise ⊂ detailed** — the concise job/node view is a *strict*
  field-subset of the detailed view, and agrees with it on every shared
  field.
* **Malformed requests are client errors** — arbitrary garbage methods
  / paths / params / bodies never produce a 500 or a traceback: any
  failure is a structured 4xx with an ``error.code`` envelope.

The worlds are built once at module scope and treated read-only (the
fuzz target gets its own world so an accidentally *valid* submit can't
touch the pagination fixtures).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cluster import PowerManagedCluster
from repro.manager.cluster_manager import ManagerConfig
from repro.serving import (
    CONCISE_JOB_FIELDS,
    ClusterRegistry,
    DETAILED_JOB_FIELDS,
    PowerService,
    SimDriver,
)
from repro.flux.jobspec import Jobspec

settings.register_profile("repro", derandomize=True, max_examples=200)
settings.load_profile("repro")

N_JOBS = 23


def _world():
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=21,
        manager_config=ManagerConfig(
            global_cap_w=10_000.0, policy="proportional",
            static_node_cap_w=1950.0,
        ),
    )
    registry = ClusterRegistry.from_cluster(cluster, name="default")
    service = PowerService(registry)
    driver = SimDriver(registry)
    # A mixed population: small jobs complete, wide ones run or queue,
    # a couple get cancelled — every JobState appears in the books.
    for i in range(N_JOBS):
        nnodes = 1 + (i % 4) if i % 5 else 8
        cluster.submit(Jobspec(app="gemm", nnodes=nnodes,
                               params={"work_scale": 0.3 + 0.1 * (i % 3)}))
    for jobid in (10, 20):
        service.handle("DELETE", f"/v1/clusters/default/jobs/{jobid}")
    driver.advance(40.0)
    return service


SERVICE = _world()
FUZZ_SERVICE = _world()
BACKEND = SERVICE.registry.resolve("default")


def _walk_pages(params):
    """Follow next_offset to the end; return the concatenated jobids."""
    seen, offset, pages = [], params.get("offset", 0), 0
    while True:
        resp = SERVICE.handle("GET", "/v1/clusters/default/jobs",
                              {**params, "offset": offset})
        assert resp.status == 200, resp.body
        seen.extend(job["jobid"] for job in resp.body["jobs"])
        pages += 1
        assert pages <= N_JOBS + 1, "pagination does not terminate"
        if resp.body["next_offset"] is None:
            return seen, resp.body["total"]
        assert resp.body["next_offset"] == offset + resp.body["limit"]
        offset = resp.body["next_offset"]


# ---------------------------------------------------------------------------
# Pagination
# ---------------------------------------------------------------------------


@given(limit=st.integers(min_value=1, max_value=N_JOBS + 2))
def test_page_walk_is_exactly_the_full_listing(limit):
    expected = [r.jobid for r in BACKEND.jobs.values()]
    seen, total = _walk_pages({"limit": limit})
    assert seen == expected
    assert total == len(expected)
    assert len(seen) == len(set(seen))


@given(
    limit=st.integers(min_value=1, max_value=N_JOBS + 2),
    state=st.sampled_from(["submitted", "running", "completed", "cancelled"]),
)
def test_filtered_page_walk_partitions_the_filtered_listing(limit, state):
    expected = [r.jobid for r in BACKEND.jobs.values()
                if r.state.value == state]
    seen, total = _walk_pages({"limit": limit, "state": state})
    assert seen == expected
    assert total == len(expected)


@given(
    offset=st.integers(min_value=0, max_value=N_JOBS + 5),
    limit=st.integers(min_value=1, max_value=N_JOBS + 5),
)
def test_single_page_is_the_exact_slice(offset, limit):
    expected = [r.jobid for r in BACKEND.jobs.values()]
    resp = SERVICE.handle("GET", "/v1/clusters/default/jobs",
                          {"offset": offset, "limit": limit})
    assert resp.status == 200
    assert [j["jobid"] for j in resp.body["jobs"]] == \
        expected[offset:offset + limit]


@given(limit=st.integers(min_value=1, max_value=11))
def test_node_pages_partition_the_cluster(limit):
    seen, offset = [], 0
    while True:
        resp = SERVICE.handle("GET", "/v1/clusters/default/nodes",
                              {"offset": offset, "limit": limit})
        assert resp.status == 200
        seen.extend(n["rank"] for n in resp.body["nodes"])
        if resp.body["next_offset"] is None:
            break
        offset = resp.body["next_offset"]
    assert seen == list(range(BACKEND.n_nodes))


# ---------------------------------------------------------------------------
# Concise ⊂ detailed
# ---------------------------------------------------------------------------


@given(jobid=st.integers(min_value=1, max_value=N_JOBS))
def test_concise_job_view_is_strict_subset_of_detailed(jobid):
    concise = SERVICE.handle("GET", f"/v1/clusters/default/jobs/{jobid}")
    detailed = SERVICE.handle("GET", f"/v1/clusters/default/jobs/{jobid}",
                              {"response_format": "detailed"})
    assert concise.status == detailed.status == 200
    assert set(concise.body) < set(detailed.body)  # strict subset
    assert set(concise.body) == set(CONCISE_JOB_FIELDS)
    assert set(detailed.body) == set(DETAILED_JOB_FIELDS)
    for key, value in concise.body.items():
        assert detailed.body[key] == value


@given(rank=st.integers(min_value=0, max_value=7))
def test_concise_node_view_is_strict_subset_of_detailed(rank):
    concise = SERVICE.handle("GET", "/v1/clusters/default/nodes",
                             {"offset": rank, "limit": 1})
    detailed = SERVICE.handle(
        "GET", "/v1/clusters/default/nodes",
        {"offset": rank, "limit": 1, "response_format": "detailed"},
    )
    c, d = concise.body["nodes"][0], detailed.body["nodes"][0]
    assert set(c) < set(d)
    for key, value in c.items():
        assert d[key] == value


# ---------------------------------------------------------------------------
# Malformed requests: structured 4xx, never a 500
# ---------------------------------------------------------------------------

_json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
    st.text(max_size=20),
)
_json_values = st.recursive(
    _json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=10), children, max_size=4),
    ),
    max_leaves=10,
)
_paths = st.one_of(
    st.sampled_from([
        "/v1/clusters/default/jobs",
        "/v1/clusters/default/jobs/0",
        "/v1/clusters/default/jobs/nan",
        "/v1/clusters/default/nodes",
        "/v1/clusters//jobs",
        "/v1/clusters/default/jobs/1/output/extra",
        "/v1/batch",
        "/v1/site/power",
        "/v1",
        "/",
        "",
    ]),
    st.text(alphabet="/abcjv1?&=%. ", max_size=40),
)


@given(
    method=st.sampled_from(["GET", "POST", "DELETE", "PUT", "PATCH", "BREW"]),
    path=_paths,
    params=st.dictionaries(
        st.sampled_from(["limit", "offset", "response_format", "state", "x"]),
        st.one_of(st.integers(-100, 100_000), st.text(max_size=8)),
        max_size=4,
    ),
    body=st.one_of(st.none(), _json_values),
)
def test_garbage_requests_never_500(method, path, params, body):
    resp = FUZZ_SERVICE.handle(method, path, params, body)
    assert resp.status < 500, (method, path, params, body, resp.body)
    if resp.status >= 400:
        err = resp.body["error"]
        assert isinstance(err["code"], str) and err["code"]
        assert isinstance(err["message"], str) and err["message"]


@given(ops=st.lists(_json_values, min_size=1, max_size=5))
def test_garbage_batch_ops_fail_individually_not_the_envelope(ops):
    resp = FUZZ_SERVICE.handle("POST", "/v1/batch", body={"ops": ops})
    assert resp.status in (200, 400)
    if resp.status == 200:
        for entry in resp.body["results"]:
            assert entry["status"] < 500
