"""Unit + property tests for the FCFS scheduler."""

import pytest
from hypothesis import given, strategies as st

from repro.flux.scheduler import Scheduler


def test_allocates_lowest_free_ranks():
    s = Scheduler(8)
    assert s.allocate(3) == [0, 1, 2]
    assert s.allocate(2) == [3, 4]


def test_release_returns_ranks_to_pool():
    s = Scheduler(4)
    ranks = s.allocate(4)
    s.release(ranks[:2])
    assert s.free_count == 2
    assert s.allocate(2) == ranks[:2]


def test_over_allocation_raises():
    s = Scheduler(4)
    s.allocate(3)
    with pytest.raises(RuntimeError):
        s.allocate(2)


def test_zero_allocation_rejected():
    s = Scheduler(4)
    with pytest.raises(ValueError):
        s.allocate(0)


def test_double_release_raises():
    s = Scheduler(4)
    ranks = s.allocate(2)
    s.release(ranks)
    with pytest.raises(RuntimeError):
        s.release(ranks)


def test_release_out_of_range_rejected():
    s = Scheduler(4)
    s.allocate(4)
    with pytest.raises(ValueError):
        s.release([7])


def test_needs_at_least_one_node():
    with pytest.raises(ValueError):
        Scheduler(0)


# ---------------------------------------------------------------------------
# pick_next: FCFS vs backfill
# ---------------------------------------------------------------------------

def test_fcfs_blocks_behind_head():
    s = Scheduler(4, backfill=False)
    s.allocate(3)  # 1 free
    queue = [10, 11]
    requests = {10: 2, 11: 1}
    assert s.pick_next(queue, requests) is None  # head needs 2, only 1 free


def test_backfill_skips_blocked_head():
    s = Scheduler(4, backfill=True)
    s.allocate(3)
    queue = [10, 11]
    requests = {10: 2, 11: 1}
    assert s.pick_next(queue, requests) == 11


def test_pick_next_prefers_head_when_it_fits():
    s = Scheduler(4, backfill=True)
    queue = [10, 11]
    requests = {10: 2, 11: 1}
    assert s.pick_next(queue, requests) == 10


def test_pick_next_empty_queue():
    assert Scheduler(4).pick_next([], {}) is None


# ---------------------------------------------------------------------------
# Property: allocation is exclusive and conserving
# ---------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 8)),
        max_size=50,
    )
)
def test_no_double_allocation_property(ops):
    """Random alloc/free traffic never hands out a rank twice."""
    s = Scheduler(16)
    held = []  # list of allocations (lists of ranks)
    in_use = set()
    for op, n in ops:
        if op == "alloc" and s.can_allocate(n):
            ranks = s.allocate(n)
            assert not (set(ranks) & in_use), "rank double-allocated"
            in_use.update(ranks)
            held.append(ranks)
        elif op == "free" and held:
            ranks = held.pop(n % len(held))
            s.release(ranks)
            in_use.difference_update(ranks)
        assert s.free_count == 16 - len(in_use)
