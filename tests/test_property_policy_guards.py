"""Property tests for the policy zoo's pure control arithmetic.

Three pure functions carry the safety story of docs/policies.md, and
each has a no-escape contract a simulator run can only spot-check:

* :func:`repro.manager.policies.safety.guard_cap` — a guarded write is
  always inside the device box ``[lo, hi]``; the budget ceiling binds
  unless the floor/box override it; a damper skip never installs a cap;
* :func:`repro.manager.policies.pi.pi_step` — the commanded budget
  never leaves the output box and the stored integral stays bounded by
  the anti-windup clamp, for *any* gains (including mis-tuned ones);
* :func:`repro.manager.policies.ecoshift.split_node_budget` — every
  allocation respects its domain box and the split conserves the
  budget: ``sum(alloc) == clamp(budget, sum(lo), sum(hi))``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.manager.policies.ecoshift import split_node_budget
from repro.manager.policies.pi import pi_step
from repro.manager.policies.safety import guard_cap

settings.register_profile("repro", derandomize=True, max_examples=200)
settings.load_profile("repro")

EPS = 1e-6

watts = st.floats(-500.0, 3000.0)
spans = st.tuples(st.floats(0.0, 500.0), st.floats(0.0, 500.0)).map(
    lambda p: (min(p), min(p) + abs(p[1] - p[0]))
)


# ----------------------------------------------------------------------
# guard_cap
# ----------------------------------------------------------------------
@given(
    proposed=watts,
    last=st.none() | watts,
    box=spans,
    ceiling=st.none() | watts,
    floor=st.none() | watts,
    damper=st.floats(0.0, 100.0),
)
def test_guard_cap_result_always_inside_box(
    proposed, last, box, ceiling, floor, damper
):
    lo, hi = box
    d = guard_cap(
        proposed, last, lo, hi, ceiling_w=ceiling, floor_w=floor, damper_w=damper
    )
    if d.cap_w is None:
        assert d.clamps == ("damper",)
    else:
        assert lo - EPS <= d.cap_w <= hi + EPS


@given(proposed=watts, box=spans, ceiling=watts)
def test_guard_cap_budget_ceiling_binds_inside_box(proposed, box, ceiling):
    """With no floor, the result never exceeds max(lo, min(ceiling, hi))."""
    lo, hi = box
    d = guard_cap(proposed, None, lo, hi, ceiling_w=ceiling)
    assert d.cap_w is not None  # no damper configured
    assert d.cap_w <= max(lo, min(ceiling, hi)) + EPS


@given(proposed=watts, box=spans, floor=watts)
def test_guard_cap_floor_binds_inside_box(proposed, box, floor):
    lo, hi = box
    d = guard_cap(proposed, None, lo, hi, floor_w=floor)
    assert d.cap_w is not None
    assert d.cap_w >= min(hi, max(lo, floor)) - EPS


@given(proposed=watts, last=watts, box=spans, damper=st.floats(0.001, 100.0))
def test_guard_cap_damper_skips_exactly_the_small_moves(
    proposed, last, box, damper
):
    lo, hi = box
    boxed = min(max(proposed, lo), hi)
    d = guard_cap(proposed, last, lo, hi, damper_w=damper)
    if abs(boxed - last) < damper:
        assert d.cap_w is None and d.clamps == ("damper",)
    else:
        assert d.cap_w == pytest.approx(boxed)


def test_guard_cap_rejects_inverted_box():
    with pytest.raises(ValueError):
        guard_cap(100.0, None, 200.0, 100.0)


def test_guard_cap_floor_wins_over_ceiling_on_conflict():
    # Misconfigured ceiling below the floor: progress protection wins,
    # and the box still bounds the result.
    d = guard_cap(150.0, None, 100.0, 300.0, ceiling_w=120.0, floor_w=180.0)
    assert d.cap_w == pytest.approx(180.0)
    assert d.clamps == ("budget", "slowdown")


# ----------------------------------------------------------------------
# pi_step
# ----------------------------------------------------------------------
gains = st.floats(0.0, 50.0)


@given(
    error=st.floats(-2000.0, 2000.0),
    integral=st.floats(-10_000.0, 10_000.0),
    dt=st.floats(0.0, 60.0),
    kp=gains,
    ki=gains,
    base=st.floats(0.0, 2000.0),
    box=spans,
    clamp=st.floats(0.0, 5000.0),
)
def test_pi_step_output_never_leaves_the_box(
    error, integral, dt, kp, ki, base, box, clamp
):
    lo, hi = box
    out, new_integral = pi_step(error, integral, dt, kp, ki, base, lo, hi, clamp)
    assert lo - EPS <= out <= hi + EPS
    # Anti-windup: the stored integral never grows past the clamp
    # (pre-existing excess may persist, but it cannot increase).
    assert abs(new_integral) <= max(abs(integral), clamp) + EPS
    assert math.isfinite(out) and math.isfinite(new_integral)


@given(
    error=st.floats(-2000.0, 2000.0),
    dt=st.floats(0.0, 60.0),
    base=st.floats(0.0, 2000.0),
    box=spans,
)
def test_pi_step_zero_gains_degenerate_to_boxed_base(error, dt, base, box):
    lo, hi = box
    out, new_integral = pi_step(error, 0.0, dt, 0.0, 0.0, base, lo, hi, 4000.0)
    assert out == pytest.approx(min(max(base, lo), hi))


def test_pi_step_conditional_integration_freezes_in_saturation():
    # Large positive error, output saturated high: the integral must
    # not keep winding up.
    _, i1 = pi_step(1000.0, 0.0, 6.0, 0.4, 0.02, 500.0, 0.0, 600.0, 4000.0)
    assert i1 == 0.0


def test_pi_step_rejects_bad_inputs():
    with pytest.raises(ValueError):
        pi_step(0.0, 0.0, 1.0, 0.1, 0.1, 0.0, 10.0, 5.0, 100.0)
    with pytest.raises(ValueError):
        pi_step(0.0, 0.0, -1.0, 0.1, 0.1, 0.0, 0.0, 5.0, 100.0)


# ----------------------------------------------------------------------
# split_node_budget
# ----------------------------------------------------------------------
@st.composite
def split_inputs(draw):
    n = draw(st.integers(1, 5))
    boxes = [draw(spans) for _ in range(n)]
    demands = draw(st.lists(st.floats(0.0, 2000.0), min_size=n, max_size=n))
    budget = draw(st.floats(0.0, 5000.0))
    return budget, boxes, demands


@given(inputs=split_inputs())
def test_split_conserves_budget_and_respects_boxes(inputs):
    budget, boxes, demands = inputs
    alloc = split_node_budget(budget, boxes, demands)
    assert len(alloc) == len(boxes)
    for a, (lo, hi) in zip(alloc, boxes):
        assert lo - EPS <= a <= hi + EPS
    feasible_total = min(max(budget, sum(lo for lo, _ in boxes)),
                         sum(hi for _, hi in boxes))
    assert sum(alloc) == pytest.approx(feasible_total, abs=1e-4)


@given(inputs=split_inputs())
def test_split_is_deterministic(inputs):
    budget, boxes, demands = inputs
    assert split_node_budget(budget, boxes, demands) == split_node_budget(
        budget, boxes, demands
    )


def test_split_rejects_malformed_inputs():
    with pytest.raises(ValueError):
        split_node_budget(100.0, [(0.0, 50.0)], [10.0, 20.0])
    with pytest.raises(ValueError):
        split_node_budget(100.0, [(50.0, 10.0)], [10.0])


def test_split_prefers_demand_over_headroom():
    # One hungry and one idle domain under a budget that covers demand:
    # the hungry domain gets its demand, surplus spreads by headroom.
    alloc = split_node_budget(
        300.0, [(50.0, 250.0), (50.0, 250.0)], [200.0, 0.0]
    )
    assert alloc[0] > alloc[1]
    assert alloc[0] >= 200.0 - EPS
