"""Unit tests for generator-based processes."""

import pytest

from repro.simkernel import (
    AllOf,
    AnyOf,
    Process,
    ProcessKilled,
    SimEvent,
    Simulator,
    Timeout,
)


def test_timeout_advances_time():
    sim = Simulator()
    seen = []

    def gen():
        yield Timeout(5.0)
        seen.append(sim.now)

    Process(sim, gen())
    sim.run()
    assert seen == [5.0]


def test_timeout_value_is_delivered():
    sim = Simulator()
    got = []

    def gen():
        v = yield Timeout(1.0, value="hello")
        got.append(v)

    Process(sim, gen())
    sim.run()
    assert got == ["hello"]


def test_negative_timeout_rejected():
    with pytest.raises(ValueError):
        Timeout(-1.0)


def test_process_result_available_after_completion():
    sim = Simulator()

    def gen():
        yield Timeout(1.0)
        return 42

    p = Process(sim, gen())
    sim.run()
    assert not p.alive
    assert p.result == 42


def test_result_raises_while_alive():
    sim = Simulator()

    def gen():
        yield Timeout(1.0)

    p = Process(sim, gen())
    with pytest.raises(RuntimeError):
        _ = p.result


def test_simevent_succeed_resumes_waiter():
    sim = Simulator()
    ev = SimEvent(sim)
    got = []

    def waiter():
        v = yield ev
        got.append(v)

    Process(sim, waiter())
    sim.schedule(3.0, ev.succeed, "payload")
    sim.run()
    assert got == ["payload"]


def test_simevent_fail_raises_in_waiter():
    sim = Simulator()
    ev = SimEvent(sim)
    caught = []

    def waiter():
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    Process(sim, waiter())
    sim.schedule(1.0, ev.fail, ValueError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_simevent_double_trigger_rejected():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_waiting_on_triggered_event_resumes_immediately():
    sim = Simulator()
    ev = SimEvent(sim)
    ev.succeed("early")
    got = []

    def waiter():
        v = yield ev
        got.append((sim.now, v))

    Process(sim, waiter())
    sim.run()
    assert got == [(0.0, "early")]


def test_event_value_property():
    sim = Simulator()
    ev = SimEvent(sim)
    with pytest.raises(RuntimeError):
        _ = ev.value
    ev.succeed(7)
    assert ev.value == 7


def test_multiple_waiters_all_resume():
    sim = Simulator()
    ev = SimEvent(sim)
    got = []

    def waiter(i):
        v = yield ev
        got.append((i, v))

    for i in range(3):
        Process(sim, waiter(i))
    sim.schedule(1.0, ev.succeed, "x")
    sim.run()
    assert sorted(got) == [(0, "x"), (1, "x"), (2, "x")]


def test_process_waits_on_another_process():
    sim = Simulator()
    got = []

    def child():
        yield Timeout(2.0)
        return "done"

    def parent():
        c = Process(sim, child())
        v = yield c
        got.append((sim.now, v))

    Process(sim, parent())
    sim.run()
    assert got == [(2.0, "done")]


def test_child_exception_propagates_to_joiner():
    sim = Simulator()
    caught = []

    def child():
        yield Timeout(1.0)
        raise RuntimeError("child died")

    def parent():
        try:
            yield Process(sim, child())
        except RuntimeError as exc:
            caught.append(str(exc))

    Process(sim, parent())
    sim.run()
    assert caught == ["child died"]


def test_allof_gathers_results_in_order():
    sim = Simulator()
    got = []

    def gen():
        results = yield AllOf(sim, [Timeout(3.0, "a"), Timeout(1.0, "b")])
        got.append((sim.now, results))

    Process(sim, gen())
    sim.run()
    assert got == [(3.0, ["a", "b"])]


def test_allof_empty_resumes_immediately():
    sim = Simulator()
    got = []

    def gen():
        results = yield AllOf(sim, [])
        got.append(results)

    Process(sim, gen())
    sim.run()
    assert got == [[]]


def test_anyof_resumes_on_first():
    sim = Simulator()
    got = []

    def gen():
        idx, val = yield AnyOf(sim, [Timeout(5.0, "slow"), Timeout(1.0, "fast")])
        got.append((sim.now, idx, val))

    Process(sim, gen())
    sim.run()
    assert got == [(1.0, 1, "fast")]


def test_anyof_requires_nonempty():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_kill_terminates_process():
    sim = Simulator()
    seen = []

    def gen():
        yield Timeout(10.0)
        seen.append("should not happen")

    p = Process(sim, gen())
    sim.schedule(1.0, p.kill)
    sim.run()
    assert seen == []
    assert not p.alive
    assert p.result is None  # killed processes do not raise from .result


def test_kill_after_completion_is_noop():
    sim = Simulator()

    def gen():
        yield Timeout(1.0)
        return "ok"

    p = Process(sim, gen())
    sim.run()
    p.kill()
    assert p.result == "ok"


def test_killed_cleanup_runs_finally():
    sim = Simulator()
    cleaned = []

    def gen():
        try:
            yield Timeout(10.0)
        finally:
            cleaned.append(True)

    p = Process(sim, gen())
    sim.schedule(1.0, p.kill)
    sim.run()
    assert cleaned == [True]


def test_yielding_non_waitable_raises():
    sim = Simulator()

    def gen():
        yield 42

    Process(sim, gen())
    with pytest.raises(TypeError):
        sim.run()


def test_immediate_return_process():
    sim = Simulator()

    def gen():
        return "instant"
        yield  # pragma: no cover

    p = Process(sim, gen())
    sim.run()
    assert p.result == "instant"
