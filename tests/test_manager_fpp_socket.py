"""Unit tests for the socket-level FPP extension."""

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.manager.module import attach_manager
from repro.manager.policies import FPPSocketPolicy, SOCKET_FPP_PARAMS


def socket_cluster(platform="lassen", n_nodes=2, cap=1400.0, seed=4):
    return PowerManagedCluster(
        platform=platform,
        n_nodes=n_nodes,
        seed=seed,
        trace=False,
        manager_config=ManagerConfig(global_cap_w=cap, policy="fpp-socket"),
    )


def test_socket_params_scaled_for_cpu_range():
    assert SOCKET_FPP_PARAMS.p_reduce_w < 50.0
    assert max(SOCKET_FPP_PARAMS.powercap_levels_w) < 25.0


def test_socket_policy_registered():
    from repro.manager.policies import POLICY_FACTORIES

    assert POLICY_FACTORIES["fpp-socket"] is FPPSocketPolicy


def test_socket_share_enforced_on_cpu_job():
    cluster = socket_cluster()
    job = cluster.submit(Jobspec(app="nqueens", nnodes=2, launcher="non-mpi"))
    cluster.run_until_complete(timeout_s=200_000)
    m = cluster.metrics(job.jobid)
    # NQueens demands ~740 W/node but the share is 700 W: sockets capped.
    assert m.max_node_power_w <= 700.0 * 1.02
    assert m.runtime_s > 300.0  # slowed by the cap


def test_socket_caps_installed_per_socket():
    cluster = socket_cluster()
    cluster.submit(Jobspec(app="nqueens", nnodes=2, launcher="non-mpi"))
    cluster.run_for(30.0)
    nm = cluster.manager.node_manager_for_rank(0)
    caps = nm.policy.describe()["caps_w"]
    assert len(caps) == 2  # dual socket
    lo, hi = nm.socket_cap_range
    assert all(lo <= c <= hi for c in caps)
    cluster.run_until_complete(timeout_s=200_000)


def test_unconstrained_socket_policy_is_noop():
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=2,
        seed=4,
        trace=False,
        manager_config=ManagerConfig(global_cap_w=None, policy="fpp-socket"),
    )
    job = cluster.submit(Jobspec(app="nqueens", nnodes=2, launcher="non-mpi"))
    cluster.run_until_complete(timeout_s=200_000)
    assert cluster.metrics(job.jobid).runtime_s == pytest.approx(300.0, abs=3.0)


def test_socket_policy_on_generic_platform_uses_rapl():
    cluster = PowerManagedCluster(
        platform="generic",
        n_nodes=2,
        seed=4,
        trace=False,
        manager_config=ManagerConfig(global_cap_w=700.0, policy="fpp-socket"),
    )
    cluster.submit(Jobspec(app="nqueens", nnodes=2, launcher="non-mpi"))
    cluster.run_for(10.0)
    node = cluster.nodes[0]
    assert any(d.get_cap("rapl") is not None for d in node.cpu_domains)
    cluster.run_until_complete(timeout_s=200_000)


def test_node_manager_socket_helpers():
    cluster = socket_cluster()
    nm = cluster.manager.node_manager_for_rank(0)
    assert nm.socket_count == 2
    lo, hi = nm.socket_cap_range
    assert (lo, hi) == (50.0, 250.0)
    # Derivation fits the budget: 2 sockets + non-CPU estimate.
    share = nm.derive_socket_share(700.0)
    assert lo <= share <= hi


def test_socket_cap_clamped_into_range():
    cluster = socket_cluster()
    nm = cluster.manager.node_manager_for_rank(0)
    nm.set_socket_cap(0, 10.0)  # below min -> clamped
    assert cluster.nodes[0].cpu_domains[0].get_cap("socket-manager") == 50.0
    nm.clear_socket_caps()
    assert cluster.nodes[0].cpu_domains[0].get_cap("socket-manager") is None
