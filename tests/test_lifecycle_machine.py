"""Lifecycle state machine and snapshot schema bookkeeping.

Unit-level: the guarded transition graph, the registry queries, the
silent snapshot/restore round trip, and the schema-version lint that
keeps artifact compatibility honest.
"""

from __future__ import annotations

import pytest

from repro.lifecycle.machine import (
    AVAILABLE,
    DEGRADED,
    ENROLL,
    MAINTENANCE,
    RETIRED,
    STATES,
    TRANSITIONS,
    LifecycleError,
    LifecycleRegistry,
)
from repro.lifecycle.snapshot import (
    SCHEMA_FIELDS,
    SCHEMA_FINGERPRINTS,
    SCHEMA_VERSION,
    schema_fingerprint,
    schema_lint,
)


# ----------------------------------------------------------------------
# Transition graph
# ----------------------------------------------------------------------
def test_happy_path_walks_every_operational_state():
    reg = LifecycleRegistry([1], "node")
    assert reg.state_of(1) == ENROLL
    for state in (AVAILABLE, DEGRADED, AVAILABLE, MAINTENANCE, AVAILABLE, RETIRED):
        reg.transition(1, state, reason="walk", t=1.0)
    assert reg.state_of(1) == RETIRED
    assert [entry[3] for entry in reg.transition_log] == [
        AVAILABLE, DEGRADED, AVAILABLE, MAINTENANCE, AVAILABLE, RETIRED,
    ]


def test_retired_is_terminal():
    reg = LifecycleRegistry([1], "node")
    reg.transition(1, AVAILABLE)
    reg.transition(1, RETIRED)
    for state in (AVAILABLE, DEGRADED, MAINTENANCE, ENROLL):
        assert not reg.can_transition(1, state)
        with pytest.raises(LifecycleError):
            reg.transition(1, state)


def test_illegal_edges_raise():
    reg = LifecycleRegistry([1], "node")
    with pytest.raises(LifecycleError):
        reg.transition(1, DEGRADED)  # enroll -> degraded is not an edge
    reg.transition(1, AVAILABLE)
    with pytest.raises(LifecycleError):
        reg.transition(1, ENROLL)  # nothing returns to enroll
    with pytest.raises(LifecycleError):
        reg.transition(1, "melted")  # unknown state
    with pytest.raises(LifecycleError):
        reg.transition(99, AVAILABLE)  # unknown entity


def test_maintenance_crash_degrades():
    # Broker events outrank operator intent: a node that dies while in
    # maintenance is degraded, not still "held for service".
    reg = LifecycleRegistry([1], "node")
    reg.transition(1, AVAILABLE)
    reg.transition(1, MAINTENANCE)
    reg.transition(1, DEGRADED, reason="broker.down")
    assert reg.state_of(1) == DEGRADED


def test_transition_graph_is_closed_over_states():
    assert set(TRANSITIONS) == set(STATES)
    for targets in TRANSITIONS.values():
        assert set(targets) <= set(STATES)


def test_ensure_is_idempotent():
    reg = LifecycleRegistry([1, 2], "node")
    assert reg.ensure(1, AVAILABLE) is True
    assert reg.ensure(1, AVAILABLE) is False
    assert len(reg.transition_log) == 1


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def test_queries_and_counts():
    reg = LifecycleRegistry(range(4), "node")
    for rank in range(4):
        reg.transition(rank, AVAILABLE)
    reg.transition(0, DEGRADED)
    reg.transition(1, MAINTENANCE)
    assert reg.is_available(2) and reg.is_available(3)
    assert not reg.is_available(0)
    assert reg.in_state(DEGRADED) == [0]
    assert reg.in_state(AVAILABLE) == [2, 3]
    assert reg.counts() == {
        ENROLL: 0, AVAILABLE: 2, DEGRADED: 1, MAINTENANCE: 1, RETIRED: 0,
    }
    assert 0 in reg and 99 not in reg
    with pytest.raises(LifecycleError):
        reg.in_state("melted")


# ----------------------------------------------------------------------
# Snapshot / restore
# ----------------------------------------------------------------------
def test_snapshot_round_trip_preserves_states_and_log():
    reg = LifecycleRegistry(range(3), "node")
    for rank in range(3):
        reg.transition(rank, AVAILABLE, reason="enroll", t=0.0)
    reg.transition(1, DEGRADED, reason="broker.down", t=5.0)
    snap = reg.snapshot()

    other = LifecycleRegistry(range(3), "node")
    other.restore(snap)
    assert other.state_of(0) == AVAILABLE
    assert other.state_of(1) == DEGRADED
    assert other.transition_log == reg.transition_log
    # Integer entity keys survive the str() round trip.
    assert all(isinstance(e, int) for e in other.entities())


def test_restore_none_is_amnesiac_wipe():
    reg = LifecycleRegistry(range(3), "node")
    for rank in range(3):
        reg.transition(rank, AVAILABLE)
    reg.transition(1, RETIRED)
    reg.restore(None)
    assert all(reg.state_of(r) == AVAILABLE for r in range(3))
    assert reg.transition_log == []


def test_restore_rejects_unknown_entities_and_states():
    reg = LifecycleRegistry([0, 1], "node")
    with pytest.raises(LifecycleError):
        reg.restore({"states": {"7": AVAILABLE}})
    with pytest.raises(LifecycleError):
        reg.restore({"states": {"0": "melted"}})


def test_string_entities_round_trip():
    reg = LifecycleRegistry(["east", "west"], "cluster")
    reg.transition("east", AVAILABLE)
    reg.transition("west", AVAILABLE)
    reg.transition("west", DEGRADED, reason="outage", t=3.0)
    other = LifecycleRegistry(["east", "west"], "cluster")
    other.restore(reg.snapshot())
    assert other.state_of("west") == DEGRADED
    assert other.entities() == ["east", "west"]


# ----------------------------------------------------------------------
# Schema lint
# ----------------------------------------------------------------------
def test_schema_lint_is_clean():
    assert schema_lint() == []
    assert SCHEMA_FINGERPRINTS[SCHEMA_VERSION] == schema_fingerprint()


def test_fingerprint_moves_when_fields_change():
    # The property the verify stage relies on: any key-set edit --
    # adding a field, renaming one, adding a section -- changes the
    # fingerprint, so an un-bumped SCHEMA_VERSION fails the lint.
    mutated = {k: tuple(v) for k, v in SCHEMA_FIELDS.items()}
    mutated["node_manager"] = mutated["node_manager"] + ("new_field",)
    assert schema_fingerprint(mutated) != schema_fingerprint()
    renamed = {k: tuple(v) for k, v in SCHEMA_FIELDS.items()}
    renamed["policy"] = ("name", "blob")
    assert schema_fingerprint(renamed) != schema_fingerprint()
    assert schema_fingerprint(dict(SCHEMA_FIELDS)) == schema_fingerprint()
