"""Unit tests for the history-based power policy."""

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.manager.policies import POLICY_FACTORIES, HistoryPolicy


def history_cluster(cap=2400.0, seed=28, **kwargs):
    return PowerManagedCluster(
        platform="lassen",
        n_nodes=2,
        seed=seed,
        trace=False,
        manager_config=ManagerConfig(
            global_cap_w=cap, policy="history", static_node_cap_w=1950.0
        ),
        **kwargs,
    )


def test_registered_in_factories():
    assert POLICY_FACTORIES["history"] is HistoryPolicy


def test_parameter_validation():
    with pytest.raises(ValueError):
        HistoryPolicy(window=0)
    with pytest.raises(ValueError):
        HistoryPolicy(margin_w=-1.0)


def test_caps_track_quicksilver_peak_plus_margin():
    cluster = history_cluster()
    cluster.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 30}))
    cluster.run_for(120.0)
    node = cluster.nodes[0]
    caps = [g.get_cap("nvml") for g in node.gpu_domains]
    # QS peaks at 138 W/GPU; history caps near 138 + 20 margin —
    # far below the ~200 W share-derived ceiling.
    assert all(c is not None for c in caps)
    assert all(140.0 <= c <= 170.0 for c in caps)
    cluster.run_until_complete(timeout_s=1_000_000)


def test_history_policy_does_not_slow_workload():
    capped = history_cluster()
    j1 = capped.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 30}))
    capped.run_until_complete(timeout_s=1_000_000)

    free = PowerManagedCluster(
        platform="lassen", n_nodes=2, seed=28, trace=False
    )
    j2 = free.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 30}))
    free.run_until_complete(timeout_s=1_000_000)

    assert capped.metrics(j1.jobid).runtime_s == pytest.approx(
        free.metrics(j2.jobid).runtime_s, rel=0.02
    )


def test_history_respects_share_ceiling():
    cluster = history_cluster(cap=1800.0)  # 900 W/node share
    cluster.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 2}))
    cluster.run_for(120.0)
    nm = cluster.manager.node_manager_for_rank(0)
    ceiling = nm.derive_gpu_share(900.0)
    caps = [g.get_cap("nvml") for g in cluster.nodes[0].gpu_domains]
    assert all(c <= ceiling + 1e-6 for c in caps)
    cluster.run_until_complete(timeout_s=2_000_000)


def test_describe_reports_fill():
    cluster = history_cluster()
    cluster.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 30}))
    cluster.run_for(10.0)
    d = cluster.manager.node_manager_for_rank(0).policy.describe()
    assert d["policy"] == "history"
    assert len(d["history_fill"]) == 4
    cluster.run_until_complete(timeout_s=1_000_000)


def test_reset_on_new_job():
    cluster = history_cluster()
    a = cluster.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 10}))
    cluster.run_until_complete(timeout_s=1_000_000)
    b = cluster.submit(Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.5}))
    cluster.run_for(5.0)
    nm = cluster.manager.node_manager_for_rank(0)
    # Fresh history after the tenant change: fill restarted.
    assert max(nm.policy.describe()["history_fill"]) <= 3
    cluster.run_until_complete(timeout_s=1_000_000)
