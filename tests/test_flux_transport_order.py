"""Transport ordering tests: overlay channels are FIFO streams.

A real Flux broker connection never reorders messages; with jittered
per-hop latency the simulator must enforce the same property, otherwise
two rapid share assignments can arrive swapped and leave a node
enforcing a stale power limit (a bug this suite pins down).
"""

import numpy as np

from repro.flux.broker import Broker
from repro.flux.overlay import TBON
from repro.manager.node_manager import SET_LIMIT_TOPIC
from repro.simkernel import Simulator


def make_brokers(n=8, seed=123):
    sim = Simulator()
    overlay = TBON(
        size=n, fanout=2, rng=np.random.default_rng(seed), latency_jitter=0.9
    )
    registry = {}
    brokers = [Broker(sim, r, overlay, registry=registry) for r in range(n)]
    return sim, brokers


def test_requests_to_same_peer_arrive_in_send_order():
    sim, brokers = make_brokers()
    seen = []
    brokers[7].register_service("t.order", lambda b, m: (
        seen.append(m.payload["i"]), b.respond(m, {})
    ))
    for i in range(50):
        brokers[0].rpc(7, "t.order", {"i": i})
    sim.run()
    assert seen == list(range(50))


def test_rapid_limit_updates_last_writer_wins():
    """The scenario behind the bug: two same-time share assignments."""
    sim, brokers = make_brokers()
    state = {}

    def handler(b, m):
        state["limit"] = m.payload["limit_w"]
        b.respond(m, {})

    brokers[5].register_service(SET_LIMIT_TOPIC, handler)
    brokers[0].rpc(5, SET_LIMIT_TOPIC, {"limit_w": 1600.0})
    brokers[0].rpc(5, SET_LIMIT_TOPIC, {"limit_w": 1200.0})
    sim.run()
    assert state["limit"] == 1200.0


def test_events_from_one_publisher_deliver_in_order_everywhere():
    sim, brokers = make_brokers()
    got = {r: [] for r in range(8)}
    for r, b in enumerate(brokers):
        b.subscribe("seq.", lambda m, r=r: got[r].append(int(m.topic.split(".")[1])))
    for i in range(30):
        brokers[3].publish(f"seq.{i}")
    sim.run()
    for r in range(8):
        assert got[r] == list(range(30)), f"rank {r} saw reordered events"


def test_fifo_does_not_stall_other_destinations():
    """Ordering is per destination; traffic to A never delays B."""
    sim, brokers = make_brokers()
    times = {}

    def handler(rank):
        def h(b, m):
            times[rank] = sim.now
            b.respond(m, {})
        return h

    brokers[1].register_service("x", handler(1))
    brokers[2].register_service("x", handler(2))
    # Flood rank 1, then one message to rank 2.
    for _ in range(100):
        brokers[0].rpc(1, "x")
    brokers[0].rpc(2, "x")
    sim.run()
    # Rank 2's message is not serialised behind the 100 to rank 1.
    assert times[2] < times[1]


def test_responses_to_same_requester_in_order():
    sim, brokers = make_brokers()
    order = []

    def handler(b, m):
        b.respond(m, {"i": m.payload["i"]})

    brokers[6].register_service("r", handler)
    for i in range(20):
        fut = brokers[0].rpc(6, "r", {"i": i})
        fut._subscribe(sim, _Recorder(sim, order, i))
    sim.run()
    assert order == list(range(20))


class _Recorder:
    """Minimal process stand-in: records when its future resolves."""

    def __init__(self, sim, order, i):
        self._order = order
        self._i = i
        self._pending_event = None

    def _resume(self, value):
        self._order.append(self._i)

    def _throw(self, error):  # pragma: no cover - not expected
        raise error
