"""Unit tests for campaign reports."""

import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.analysis.report import summarise_campaign


@pytest.fixture
def finished_cluster():
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=4,
        seed=6,
        manager_config=ManagerConfig(
            global_cap_w=4800.0, policy="proportional", static_node_cap_w=1950.0
        ),
    )
    cluster.submit(Jobspec(app="laghos", nnodes=2, params={"work_scale": 4}))
    cluster.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 8}))
    cluster.run_until_complete(timeout_s=500_000)
    cluster.run_for(1.0)
    return cluster


def test_summary_counts_jobs(finished_cluster):
    s = summarise_campaign(finished_cluster)
    assert s.n_jobs == 2
    assert s.n_completed == 2
    assert s.n_cancelled == 0
    assert len(s.job_rows) == 2


def test_summary_energy_consistent_with_metrics(finished_cluster):
    s = summarise_campaign(finished_cluster)
    expected = sum(
        m.avg_node_energy_kj * m.nnodes
        for m in finished_cluster.all_metrics().values()
    )
    assert s.total_energy_kj == pytest.approx(expected)


def test_summary_utilisation_bounded(finished_cluster):
    s = summarise_campaign(finished_cluster)
    assert 0.0 < s.utilisation <= 1.0
    assert s.node_hours > 0


def test_summary_policy_metadata(finished_cluster):
    s = summarise_campaign(finished_cluster)
    assert s.policy == "proportional"
    assert s.global_cap_w == 4800.0
    assert s.share_changes >= 1
    assert s.peak_cluster_kw is not None


def test_render_contains_key_lines(finished_cluster):
    text = summarise_campaign(finished_cluster).render()
    assert "campaign report" in text
    assert "lassen x 4 nodes" in text
    assert "laghos" in text and "quicksilver" in text
    assert "power policy:    proportional" in text


def test_summary_with_cancelled_job():
    cluster = PowerManagedCluster(platform="lassen", n_nodes=2, seed=6, trace=False)
    a = cluster.submit(Jobspec(app="laghos", nnodes=2))
    b = cluster.submit(Jobspec(app="laghos", nnodes=2))
    cluster.instance.jobmanager.cancel(b.jobid)
    cluster.run_until_complete()
    s = summarise_campaign(cluster)
    assert s.n_cancelled == 1
    assert s.n_completed == 1


def test_summary_without_manager_or_trace():
    cluster = PowerManagedCluster(platform="lassen", n_nodes=1, seed=6, trace=False)
    cluster.submit(Jobspec(app="laghos", nnodes=1))
    cluster.run_until_complete()
    s = summarise_campaign(cluster)
    assert s.policy is None
    assert s.peak_cluster_kw is None
    assert "power policy" not in s.render()
