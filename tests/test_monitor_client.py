"""Unit tests for the telemetry client and its CSV artefact."""

import pytest

from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec
from repro.monitor.client import CSV_HEADER, component_powers
from repro.monitor.module import attach_monitor


@pytest.fixture
def ran_job(lassen4):
    mon = attach_monitor(lassen4)
    rec = lassen4.submit(Jobspec(app="quicksilver", nnodes=2, params={"work_scale": 5}))
    lassen4.run_until_complete()
    lassen4.run_for(4.0)
    return lassen4, mon, rec


def test_fetch_returns_rows_for_job_nodes(ran_job):
    inst, mon, rec = ran_job
    data = mon.client.fetch(rec.jobid)
    assert data.jobid == rec.jobid
    assert data.hostnames == ["lassen000", "lassen001"]
    assert data.complete
    assert len(data.rows) > 10


def test_rows_cover_job_window_only(ran_job):
    inst, mon, rec = ran_job
    data = mon.client.fetch(rec.jobid)
    for r in data.rows:
        assert rec.t_start <= r["timestamp"] <= rec.t_end


def test_csv_format(ran_job):
    _, mon, rec = ran_job
    csv = mon.client.fetch(rec.jobid).to_csv()
    lines = csv.strip().splitlines()
    assert lines[0] == CSV_HEADER
    first = lines[1].split(",")
    assert first[0] == str(rec.jobid)
    assert first[1] in ("lassen000", "lassen001")
    assert first[-1] == "complete"
    assert len(first) == len(CSV_HEADER.split(","))


def test_csv_write_to_file(ran_job, tmp_path):
    _, mon, rec = ran_job
    data = mon.client.fetch(rec.jobid)
    path = tmp_path / "job.csv"
    data.write_csv(str(path))
    assert path.read_text().startswith(CSV_HEADER)


def test_aggregates(ran_job):
    _, mon, rec = ran_job
    data = mon.client.fetch(rec.jobid)
    assert 400.0 <= data.mean("node_w") <= 1000.0
    per_node = data.per_node_mean("node_w")
    assert set(per_node) == {"lassen000", "lassen001"}
    assert data.max_node_power_w() <= 952.0 + 1.0


def test_cluster_power_series_sums_nodes(ran_job):
    _, mon, rec = ran_job
    data = mon.client.fetch(rec.jobid)
    series = data.cluster_power_series()
    assert series, "no series"
    # Any summed point is at most 2 nodes at max power.
    assert all(p <= 2 * 1000.0 for _, p in series)


def test_fetch_unknown_job_raises(ran_job):
    inst, mon, _ = ran_job
    with pytest.raises(KeyError):
        mon.client.fetch(9999)


def test_fetch_unstarted_job_raises(lassen4):
    mon = attach_monitor(lassen4)
    a = lassen4.submit(Jobspec(app="gemm", nnodes=4))
    b = lassen4.submit(Jobspec(app="gemm", nnodes=4))  # queued behind a
    lassen4.run_for(1.0)
    with pytest.raises(RuntimeError):
        mon.client.fetch(b.jobid)
    lassen4.run_until_complete()


def test_partial_flag_when_buffer_wrapped():
    """A tiny buffer wraps during the job -> partial data flag."""
    inst = FluxInstance(platform="lassen", n_nodes=1, seed=5)
    mon = attach_monitor(inst, buffer_capacity=5)
    rec = inst.submit(Jobspec(app="quicksilver", nnodes=1, params={"work_scale": 10}))
    inst.run_until_complete()
    data = mon.client.fetch(rec.jobid)
    assert not data.complete
    assert "partial" in data.to_csv()


def test_component_powers_prefers_per_gpu_keys():
    sample = {
        "power_node_watts": 1000.0,
        "power_cpu_watts_socket_0": 100.0,
        "power_cpu_watts_socket_1": 100.0,
        "power_mem_watts_socket_0": 50.0,
        "power_gpu_watts_gpu_0": 200.0,
        "power_gpu_watts_gpu_1": 200.0,
        "power_gpu_watts_socket_0": 400.0,  # aggregate; must not double count
    }
    parts = component_powers(sample)
    assert parts["gpu_w"] == 400.0
    assert parts["cpu_w"] == 200.0
    assert parts["mem_w"] == 50.0


def test_component_powers_falls_back_to_oam():
    sample = {
        "power_node_watts": 700.0,
        "power_cpu_watts_socket_0": 100.0,
        "power_gpu_watts_oam_0": 150.0,
        "power_gpu_watts_oam_1": 150.0,
    }
    assert component_powers(sample)["gpu_w"] == 300.0


def test_tioga_telemetry_end_to_end(tioga2):
    mon = attach_monitor(tioga2)
    rec = tioga2.submit(Jobspec(app="laghos", nnodes=2))
    tioga2.run_until_complete()
    tioga2.run_for(4.0)
    data = mon.client.fetch(rec.jobid)
    # Tioga: no memory domain; node power is the conservative sum.
    assert data.mean("mem_w") == 0.0
    assert data.mean("node_w") == pytest.approx(
        data.mean("cpu_w") + data.mean("gpu_w"), rel=0.01
    )


def test_csv_partial_marker_row_for_sampleless_node():
    """A node with zero in-window rows gets an explicit marker row."""
    from repro.monitor.client import JobPowerData

    data = JobPowerData(jobid=7)
    data.node_complete["alive0"] = True
    data.rows.append(
        {"hostname": "alive0", "timestamp": 4.0, "node_w": 900.0,
         "cpu_w": 300.0, "mem_w": 100.0, "gpu_w": 500.0}
    )
    data.node_complete["dead1"] = False
    data.node_error["dead1"] = "rpc timed out"
    lines = data.to_csv().strip().splitlines()
    assert lines[0] == CSV_HEADER
    assert "7,dead1,,,,,,partial" in lines
    # Every line still has the full column count.
    assert all(line.count(",") == CSV_HEADER.count(",") for line in lines)
    assert data.degraded_hosts == ["dead1"]
    assert not data.complete
