"""Unit + property tests for the monitor's circular buffer."""

import pytest
from hypothesis import given, strategies as st

from repro.monitor.buffer import (
    DEFAULT_CAPACITY,
    DEFAULT_SAMPLE_BYTES,
    CircularBuffer,
)


def test_defaults_match_paper_sizing():
    """Section III-A: 100,000 samples at ~43.4 MiB."""
    buf = CircularBuffer()
    assert buf.capacity == DEFAULT_CAPACITY == 100_000
    mib = buf.capacity_bytes() / (1024 * 1024)
    assert mib == pytest.approx(43.4, abs=0.1)
    assert DEFAULT_SAMPLE_BYTES == 455


def test_append_and_len():
    buf = CircularBuffer(capacity=3)
    buf.append(1.0, {"a": 1})
    buf.append(2.0, {"a": 2})
    assert len(buf) == 2
    assert buf.dropped == 0


def test_wraparound_drops_oldest():
    buf = CircularBuffer(capacity=3)
    for t in range(5):
        buf.append(float(t), {"t": t})
    assert len(buf) == 3
    assert buf.dropped == 2
    assert buf.oldest_timestamp == 2.0
    assert buf.newest_timestamp == 4.0


def test_invalid_capacity():
    with pytest.raises(ValueError):
        CircularBuffer(capacity=0)


def test_nonmonotonic_timestamps_rejected():
    buf = CircularBuffer(capacity=10)
    buf.append(5.0, {})
    with pytest.raises(ValueError):
        buf.append(4.0, {})


def test_equal_timestamps_allowed():
    buf = CircularBuffer(capacity=10)
    buf.append(5.0, {"i": 1})
    buf.append(5.0, {"i": 2})
    assert len(buf) == 2


def test_range_query_inclusive():
    buf = CircularBuffer(capacity=10)
    for t in range(10):
        buf.append(float(t), {"t": t})
    samples, complete = buf.range(2.0, 5.0)
    assert [s["t"] for s in samples] == [2, 3, 4, 5]
    assert complete


def test_range_invalid_window():
    buf = CircularBuffer(capacity=10)
    with pytest.raises(ValueError):
        buf.range(5.0, 2.0)


def test_range_reports_partial_after_wrap():
    """A job window that predates retained history is flagged partial."""
    buf = CircularBuffer(capacity=3)
    for t in range(10):
        buf.append(float(t), {"t": t})
    samples, complete = buf.range(0.0, 9.0)
    assert [s["t"] for s in samples] == [7, 8, 9]
    assert not complete


def test_range_complete_when_window_within_history():
    buf = CircularBuffer(capacity=3)
    for t in range(10):
        buf.append(float(t), {"t": t})
    _, complete = buf.range(7.0, 9.0)
    assert complete


def test_empty_buffer_range_is_complete():
    buf = CircularBuffer(capacity=3)
    samples, complete = buf.range(0.0, 10.0)
    assert samples == [] and complete


def test_size_bytes_tracks_fill():
    buf = CircularBuffer(capacity=100)
    assert buf.size_bytes() == 0
    buf.append(0.0, {})
    assert buf.size_bytes() == DEFAULT_SAMPLE_BYTES


def test_snapshot_is_copy_oldest_first():
    buf = CircularBuffer(capacity=3)
    for t in range(5):
        buf.append(float(t), {"t": t})
    snap = buf.snapshot()
    assert [t for t, _ in snap] == [2.0, 3.0, 4.0]
    snap.clear()
    assert len(buf) == 3  # copy, not a view


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------

@given(
    cap=st.integers(1, 50),
    n=st.integers(0, 200),
)
def test_len_never_exceeds_capacity(cap, n):
    buf = CircularBuffer(capacity=cap)
    for t in range(n):
        buf.append(float(t), {})
    assert len(buf) == min(cap, n)
    assert buf.dropped == max(0, n - cap)
    assert buf.total_appended == n


@given(
    cap=st.integers(1, 30),
    times=st.lists(st.floats(0, 1000), min_size=0, max_size=100).map(sorted),
    window=st.tuples(st.floats(0, 1000), st.floats(0, 1000)).map(sorted),
)
def test_range_returns_exactly_retained_window(cap, times, window):
    buf = CircularBuffer(capacity=cap)
    for t in times:
        buf.append(t, {"t": t})
    t0, t1 = window
    samples, _ = buf.range(t0, t1)
    retained = times[-cap:] if cap < len(times) else times
    expected = [t for t in retained if t0 <= t <= t1]
    assert [s["t"] for s in samples] == expected


@given(st.integers(1, 20), st.integers(0, 100))
def test_newest_oldest_consistency(cap, n):
    buf = CircularBuffer(capacity=cap)
    for t in range(n):
        buf.append(float(t), {})
    if n == 0:
        assert buf.oldest_timestamp is None and buf.newest_timestamp is None
    else:
        assert buf.newest_timestamp == float(n - 1)
        assert buf.oldest_timestamp == float(max(0, n - cap))
        assert buf.oldest_timestamp <= buf.newest_timestamp


# ---------------------------------------------------------------------------
# Flush and wrap edges (the bisect-backed ring rewrite)
# ---------------------------------------------------------------------------

def test_flush_empties_but_keeps_lifetime_counters():
    buf = CircularBuffer(capacity=3)
    for t in range(5):
        buf.append(float(t), {"t": t})
    n = buf.flush()
    assert n == 3
    assert len(buf) == 0
    assert buf.total_appended == 5
    assert buf.oldest_timestamp is None and buf.newest_timestamp is None
    # History was lost, so windows over the flushed era read as partial.
    samples, complete = buf.range(0.0, 10.0)
    assert samples == [] and not complete


def test_append_after_flush_restarts_history():
    """Post-flush appends may go backwards in time and wrap correctly."""
    buf = CircularBuffer(capacity=3)
    for t in (10.0, 11.0, 12.0):
        buf.append(t, {"t": t})
    buf.flush()
    for t in range(5):  # earlier than the flushed history: allowed
        buf.append(float(t), {"t": t})
    assert len(buf) == 3
    samples, complete = buf.range(2.0, 4.0)
    assert [s["t"] for s in samples] == [2, 3, 4]
    assert complete
    assert buf.total_appended == 8


def test_range_boundaries_exact_on_wrapped_ring():
    """Window edges landing exactly on retained samples, after wrap."""
    buf = CircularBuffer(capacity=4)
    for t in range(10):  # retained: 6, 7, 8, 9
        buf.append(float(t), {"t": t})
    samples, complete = buf.range(6.0, 9.0)
    assert [s["t"] for s in samples] == [6, 7, 8, 9]
    assert complete  # oldest retained == window start
    samples, complete = buf.range(5.5, 8.0)
    assert [s["t"] for s in samples] == [6, 7, 8]
    assert not complete  # 5.5 predates retained history


def test_range_with_duplicate_timestamps_keeps_all():
    buf = CircularBuffer(capacity=10)
    buf.append(1.0, {"i": 0})
    for i in range(1, 4):
        buf.append(2.0, {"i": i})
    buf.append(3.0, {"i": 4})
    samples, _ = buf.range(2.0, 2.0)
    assert [s["i"] for s in samples] == [1, 2, 3]
