"""Hypothesis pins: vectorized hot paths equal their scalar references.

The columnar store (ISSUE 8) is only allowed to exist because every
vectorized twin is *bitwise* equal to the scalar code it replaces:

* :func:`repro.columnar.ops.split_budget_np` /
  :func:`~repro.columnar.ops.split_site_budget_np` /
  :func:`~repro.columnar.ops.per_node_share_np` vs the pure scalar
  split functions, element for element on random shapes;
* :func:`repro.telemetry.metrics.repeat_add` (the bulk replay of
  deferred accountant charges) vs the sequential ``+=`` loop;
* vectorized sample generation: a whole-machine job-power query under
  ``columnar=True`` returns payloads identical to the scalar agents',
  including across a mid-window power mutation (template rebuild).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar.ops import (
    per_node_share_np,
    split_budget_np,
    split_site_budget_np,
)
from repro.federation.rebalance import split_site_budget
from repro.manager.policies.proportional import per_node_share, split_budget
from repro.telemetry.metrics import repeat_add

# ---------------------------------------------------------------------------
# split_budget / per_node_share
# ---------------------------------------------------------------------------

budgets = st.floats(0.0, 5e6, allow_nan=False, allow_infinity=False)
peaks = st.floats(1.0, 5000.0, allow_nan=False, allow_infinity=False)


@given(
    budget=budgets,
    peak=peaks,
    job_nodes=st.dictionaries(
        st.integers(1, 10_000), st.integers(0, 800), max_size=32
    ),
)
def test_split_budget_np_matches_scalar(budget, peak, job_nodes):
    scalar = split_budget(budget, job_nodes, peak)
    vector = split_budget_np(budget, job_nodes, peak)
    assert vector == scalar  # exact float equality, key for key


@given(
    budget=budgets,
    peak=peaks,
    active=st.lists(st.integers(1, 100_000), min_size=1, max_size=64),
)
def test_per_node_share_np_matches_scalar(budget, peak, active):
    vector = per_node_share_np(budget, active, peak)
    for i, n in enumerate(active):
        assert float(vector[i]) == per_node_share(budget, n, peak)


# ---------------------------------------------------------------------------
# split_site_budget
# ---------------------------------------------------------------------------

_names = st.lists(
    st.sampled_from(["alpha", "beta", "gamma", "delta", "eps", "zeta"]),
    min_size=1,
    max_size=6,
    unique=True,
)


@st.composite
def site_cases(draw):
    names = draw(_names)
    budget = draw(st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False))
    demands = {
        c: draw(st.floats(0.0, 4e5, allow_nan=False, allow_infinity=False))
        for c in names
    }
    floors = None
    if draw(st.booleans()):
        # Floors that are satisfiable by construction: carve fractions
        # of the budget so their sum stays below it.
        remaining = budget
        floors = {}
        for c in names:
            frac = draw(st.floats(0.0, 0.9))
            floors[c] = remaining * frac / len(names)
            remaining -= floors[c]
    ceilings = None
    if draw(st.booleans()):
        ceilings = {}
        for c in names:
            if draw(st.booleans()):
                lo = (floors or {}).get(c, 0.0)
                ceilings[c] = lo + draw(st.floats(0.0, 5e5))
            else:
                ceilings[c] = None
    return budget, demands, floors, ceilings


@given(case=site_cases())
def test_split_site_budget_np_matches_scalar(case):
    budget, demands, floors, ceilings = case
    scalar = split_site_budget(budget, demands, floors, ceilings)
    vector = split_site_budget_np(budget, demands, floors, ceilings)
    assert set(vector) == set(scalar)
    for name in scalar:
        assert vector[name] == scalar[name], (
            f"{name}: {vector[name]!r} != {scalar[name]!r}"
        )


# ---------------------------------------------------------------------------
# repeat_add (bulk deferred-charge replay)
# ---------------------------------------------------------------------------


@given(
    base=st.floats(0.0, 1e9, allow_nan=False, allow_infinity=False),
    amount=st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
    count=st.integers(0, 5000),
)
def test_repeat_add_matches_sequential_loop(base, amount, count):
    expect = base
    for _ in range(count):
        expect += amount
    got = repeat_add(base, amount, count)
    assert math.isinf(got) == math.isinf(expect)
    if not math.isinf(expect):
        assert got == expect  # bitwise: same left-to-right IEEE adds


def test_repeat_add_crosses_chunk_boundary():
    """Chunked accumulation equals one unbroken sequential pass."""
    count = (1 << 20) + 17
    expect = 5.0
    for _ in range(count):
        expect += 0.3e-3
    assert repeat_add(5.0, 0.3e-3, count) == expect


# ---------------------------------------------------------------------------
# vectorized sample generation == scalar agents, through a real query
# ---------------------------------------------------------------------------


def _whole_machine_query(columnar: bool, n_nodes: int, platform: str,
                         mutate_at: float, window_s: float):
    from repro.flux.instance import FluxInstance
    from repro.monitor.module import attach_monitor
    from repro.monitor.root_agent import GET_JOB_POWER_TOPIC

    inst = FluxInstance(platform=platform, n_nodes=n_nodes, seed=11)
    attach_monitor(inst, sample_interval_s=2.0, columnar=columnar)
    # A mid-window power mutation forces a segment/template rebuild on
    # the columnar side (and a template invalidation on the scalar one).
    first = inst.brokers[0].node

    def _mutate() -> None:
        gpus = first.gpu_domains
        if gpus:
            gpus[0].set_demand(175.0)

    inst.sim.schedule(mutate_at, _mutate)
    inst.run_for(window_s)
    fut = inst.brokers[0].rpc(
        0,
        GET_JOB_POWER_TOPIC,
        {"ranks": list(range(n_nodes)), "t_start": 0.0, "t_end": window_s},
    )
    while not fut.triggered:
        if not inst.sim.step():
            raise RuntimeError("drained before query completed")
    payload = fut.value
    # The columnar side carries a lazy ColumnarSamples view; materialise
    # both sides so dict equality compares the actual sample contents.
    for node in payload["nodes"]:
        node["samples"] = list(node["samples"])
    return payload


@settings(max_examples=10, deadline=None)
@given(
    n_nodes=st.integers(1, 6),
    platform=st.sampled_from(["lassen", "tioga", "elcapitan"]),
    mutate_at=st.floats(0.5, 18.0, allow_nan=False),
)
def test_columnar_query_equals_scalar_query(n_nodes, platform, mutate_at):
    window = 20.0
    scalar = _whole_machine_query(False, n_nodes, platform, mutate_at, window)
    columnar = _whole_machine_query(True, n_nodes, platform, mutate_at, window)
    assert columnar == scalar  # full payload: every rank, every sample


@pytest.mark.parametrize("platform", ["lassen", "elcapitan"])
def test_columnar_query_equality_with_restart(platform):
    """Crash/restart (dead-mask + ring freeze) keeps payload equality."""
    from repro.cluster import PowerManagedCluster
    from repro.faults import FaultEvent, FaultPlan
    from repro.flux.jobspec import Jobspec
    from repro.manager.cluster_manager import ManagerConfig

    def run(columnar: bool):
        cluster = PowerManagedCluster(
            platform=platform,
            n_nodes=8,
            seed=21,
            manager_config=ManagerConfig(
                global_cap_w=12_000.0,
                policy="proportional",
                static_node_cap_w=1800.0,
            ),
            fault_plan=FaultPlan(
                [
                    FaultEvent(t=7.5, kind="crash", rank=3),
                    FaultEvent(t=14.0, kind="restart", rank=3),
                ]
            ),
            monitor_columnar=columnar,
        )
        job = cluster.submit(Jobspec(app="gemm", nnodes=6))
        cluster.run_until_complete(timeout_s=1_000_000)
        cluster.run_for(4.0)
        return cluster.monitor.client.fetch(job.jobid, timeout_s=300.0).to_csv()

    assert run(True) == run(False)
