"""Unit tests for the center-level (site) manager — ISSUE 5 tentpole.

Covers: shared-engine bootstrapping, demand-weighted epoch rebalancing,
floors/ceilings, whole-cluster outage share reclaim + recovery via the
broker event path, site budget retunes, config validation, and the
federation telemetry catalog.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultEvent, FaultPlan
from repro.federation import ClusterSpec, FederatedSite, SiteConfig
from repro.flux.jobspec import Jobspec


def two_cluster_config(**site_kwargs):
    defaults = dict(
        site_budget_w=40_000.0,
        rebalance_epoch_s=10.0,
        clusters=(
            ClusterSpec(name="alpha", platform="lassen", n_nodes=4,
                        static_node_cap_w=1950.0),
            ClusterSpec(name="beta", platform="tioga", n_nodes=3),
        ),
    )
    defaults.update(site_kwargs)
    return SiteConfig(**defaults)


def outage_plan(n_nodes, t=15.0, duration_s=30.0):
    return FaultPlan(events=[
        FaultEvent(t=t, kind="crash", rank=r, duration_s=duration_s)
        for r in range(1, n_nodes)
    ])


def test_clusters_share_one_engine_and_telemetry():
    site = FederatedSite(two_cluster_config(), seed=7)
    sims = {c.sim for c in site.clusters.values()}
    assert sims == {site.sim}
    hubs = {c.telemetry_hub for c in site.clusters.values()}
    assert hubs == {site.telemetry}


def test_hostnames_distinguish_sibling_clusters():
    config = SiteConfig(
        site_budget_w=10_000.0,
        clusters=(
            ClusterSpec(name="east", platform="lassen", n_nodes=2),
            ClusterSpec(name="west", platform="lassen", n_nodes=2),
        ),
    )
    site = FederatedSite(config, seed=0)
    assert [n.hostname for n in site.cluster("east").nodes] == ["east000", "east001"]
    assert [n.hostname for n in site.cluster("west").nodes] == ["west000", "west001"]


def test_initial_split_is_equal_when_idle():
    site = FederatedSite(two_cluster_config(), seed=7)
    assert site.assigned_shares == {"alpha": 20_000.0, "beta": 20_000.0}
    assert site.expected_total_w == 40_000.0


def test_epoch_rebalance_follows_demand():
    site = FederatedSite(two_cluster_config(), seed=7)
    site.submit("alpha", Jobspec(app="gemm", nnodes=3))
    site.submit("beta", Jobspec(app="lammps", nnodes=1))
    site.run_for(12.0)
    # demand weights 3:1 → shares 30k / 10k
    assert site.assigned_shares["alpha"] == pytest.approx(30_000.0)
    assert site.assigned_shares["beta"] == pytest.approx(10_000.0)
    # installed in the cluster managers, not just bookkeeping
    for name, share in site.assigned_shares.items():
        cfg = site.clusters[name].manager.cluster.config
        assert cfg.global_cap_w == pytest.approx(share)


def test_floor_and_ceiling_are_respected():
    config = SiteConfig(
        site_budget_w=40_000.0,
        rebalance_epoch_s=10.0,
        clusters=(
            ClusterSpec(name="alpha", platform="lassen", n_nodes=4,
                        static_node_cap_w=1950.0, min_share_w=15_000.0),
            ClusterSpec(name="beta", platform="tioga", n_nodes=3,
                        max_share_w=18_000.0),
        ),
    )
    site = FederatedSite(config, seed=7)
    # All demand on beta: its proportional share would be the whole
    # budget, but alpha's floor and beta's ceiling both bind.
    site.submit("beta", Jobspec(app="lammps", nnodes=3))
    site.run_for(12.0)
    assert site.assigned_shares["alpha"] >= 15_000.0
    assert site.assigned_shares["beta"] <= 18_000.0
    # conservation with the ceiling slack flowing back to alpha
    assert sum(site.assigned_shares.values()) == pytest.approx(40_000.0)


def test_outage_reclaims_share_in_one_recompute():
    site = FederatedSite(
        two_cluster_config(), seed=3,
        fault_plans={"beta": outage_plan(3, t=15.0, duration_s=30.0)},
    )
    site.submit("alpha", Jobspec(app="gemm", nnodes=2))
    site.submit("beta", Jobspec(app="nqueens", nnodes=2))
    site.run_for(20.0)
    assert site.down_clusters == ["beta"]
    assert site.live_clusters == ["alpha"]
    assert site.assigned_shares["beta"] == 0.0
    assert site.assigned_shares["alpha"] == pytest.approx(40_000.0)
    outage_events = [e for e in site.budget_log if e[1] == "outage"]
    assert len(outage_events) == 1
    assert outage_events[0][0] == pytest.approx(15.0, abs=0.1)
    # the down cluster's manager is zeroed so stale state cannot spend
    beta_cfg = site.clusters["beta"].manager.cluster.config
    assert beta_cfg.global_cap_w == 0.0


def test_recovery_restores_cluster_to_the_split():
    site = FederatedSite(
        two_cluster_config(), seed=3,
        fault_plans={"beta": outage_plan(3, t=15.0, duration_s=30.0)},
    )
    site.submit("alpha", Jobspec(app="gemm", nnodes=2))
    site.run_for(60.0)
    assert site.down_clusters == []
    reasons = [e[1] for e in site.budget_log]
    assert "outage" in reasons and "recovery" in reasons
    recovery = next(e for e in site.budget_log if e[1] == "recovery")
    assert "beta" in recovery[3]  # back in the live set at the re-split
    metrics = site.telemetry.metrics
    outages = sum(
        s.value for s in metrics.series_for("federation_cluster_outages_total")
    )
    recoveries = sum(
        s.value
        for s in metrics.series_for("federation_cluster_recoveries_total")
    )
    assert outages == 1.0 and recoveries == 1.0


def test_partial_node_loss_is_not_an_outage():
    plan = FaultPlan(events=[FaultEvent(t=15.0, kind="crash", rank=1,
                                        duration_s=30.0)])
    site = FederatedSite(two_cluster_config(), seed=3,
                         fault_plans={"beta": plan})
    site.run_for(25.0)
    assert site.down_clusters == []
    assert not any(e[1] == "outage" for e in site.budget_log)


def test_site_retune_revalidates_floors_and_resplits():
    config = SiteConfig(
        site_budget_w=40_000.0,
        clusters=(
            ClusterSpec(name="alpha", platform="lassen", n_nodes=4,
                        static_node_cap_w=1950.0, min_share_w=10_000.0),
            ClusterSpec(name="beta", platform="tioga", n_nodes=3),
        ),
    )
    site = FederatedSite(config, seed=1)
    site.retune_site_budget(25_000.0)
    assert site.site_budget_w == 25_000.0
    assert sum(site.assigned_shares.values()) == pytest.approx(25_000.0)
    with pytest.raises(ValueError):
        site.retune_site_budget(5_000.0)  # below alpha's floor
    retunes = sum(
        s.value
        for s in site.telemetry.metrics.series_for("federation_site_retunes_total")
    )
    assert retunes == 1.0


def test_config_validation():
    with pytest.raises(ValueError):
        SiteConfig(site_budget_w=100.0, clusters=()).validate()
    with pytest.raises(ValueError):
        SiteConfig(
            site_budget_w=100.0,
            clusters=(ClusterSpec(name="a"), ClusterSpec(name="a")),
        ).validate()
    with pytest.raises(ValueError):
        SiteConfig(
            site_budget_w=100.0, rebalance_epoch_s=0.0,
            clusters=(ClusterSpec(name="a"),),
        ).validate()
    with pytest.raises(ValueError):
        SiteConfig(
            site_budget_w=100.0,
            clusters=(ClusterSpec(name="a", min_share_w=200.0),),
        ).validate()
    with pytest.raises(ValueError):
        FederatedSite(two_cluster_config(), seed=0,
                      fault_plans={"nope": FaultPlan(events=[])})


def test_jobs_complete_and_makespan_reported():
    site = FederatedSite(two_cluster_config(), seed=11)
    site.submit("alpha", Jobspec(app="gemm", nnodes=2))
    site.submit_at("beta", Jobspec(app="nqueens", nnodes=1), 5.0)
    t = site.run_until_complete()
    assert t > 5.0
    assert site.all_complete()
    for name in ("alpha", "beta"):
        assert site.clusters[name].makespan_s() is not None


def test_deferred_submissions_block_all_complete():
    site = FederatedSite(two_cluster_config(), seed=11)
    site.submit_at("alpha", Jobspec(app="nqueens", nnodes=1), 30.0)
    assert not site.all_complete()
    site.run_until_complete()
    assert site.all_complete()


def test_describe_reports_every_cluster():
    site = FederatedSite(two_cluster_config(), seed=0)
    d = site.describe()
    assert set(d["clusters"]) == {"alpha", "beta"}
    assert d["site_budget_w"] == 40_000.0
    assert d["clusters"]["alpha"]["platform"] == "lassen"


def test_per_cluster_seeds_are_independent():
    """Adding a cluster must not perturb an existing cluster's stream."""
    site2 = FederatedSite(two_cluster_config(), seed=42)
    config3 = SiteConfig(
        site_budget_w=40_000.0,
        clusters=two_cluster_config().clusters
        + (ClusterSpec(name="gamma", platform="tioga", n_nodes=2),),
    )
    site3 = FederatedSite(config3, seed=42)
    a2 = site2.cluster("alpha").instance.streams.seed
    a3 = site3.cluster("alpha").instance.streams.seed
    assert a2 == a3
