"""Simtest tenancy dimension: generation, byte-identity, fuzzing, and
the plant-a-bug self-check for the tenant invariant checkers.

The critical contract pinned here (ISSUE 10): switching tenancy OFF
(``p_tenancy=0``) produces scenarios that are byte-identical — dict
for dict, key for key — to what the generator produced before the
tenancy dimension existed. The tenant mix draws from its own
``simtest/tenancy`` substream, so topologies, job mixes, faults and
budgets of every historical seed are untouched.
"""

from __future__ import annotations

import os

import pytest

from repro.simtest.fuzzer import run_batch
from repro.simtest.harness import run_scenario
from repro.simtest.invariants import default_checkers
from repro.simtest.scenario import GeneratorConfig, Scenario, TenantMix, generate_scenario
from repro.simtest.shrink import make_oracle, shrink_scenario
from repro.tenancy.coordinator import TenancyCoordinator
from repro.tenancy.fairshare import split_budget_weighted

TENANTED = GeneratorConfig(p_tenancy=1.0)
ANONYMOUS = GeneratorConfig(p_tenancy=0.0)


def _strip_tenancy(d: dict) -> dict:
    """Remove every tenancy-related key a tenanted scenario adds."""
    out = dict(d)
    out.pop("tenancy", None)
    out["jobs"] = [
        {k: v for k, v in job.items() if k != "user"} for job in d["jobs"]
    ]
    return out


def test_tenancy_off_scenarios_are_byte_identical():
    """p_tenancy=0 emits exactly the pre-tenancy scenario dicts: no
    ``tenancy`` key, no ``user`` keys, and every other dimension equal
    to the tenanted draw of the same seed (substream isolation)."""
    for seed in range(10):
        anon = generate_scenario(seed, ANONYMOUS).to_dict()
        assert "tenancy" not in anon
        assert all("user" not in job for job in anon["jobs"])
        tenanted = generate_scenario(seed, TENANTED).to_dict()
        assert "tenancy" in tenanted
        assert _strip_tenancy(tenanted) == anon


def test_tenanted_scenario_roundtrip_exact():
    for seed in range(8):
        scenario = generate_scenario(seed, TENANTED)
        assert scenario.tenancy is not None
        payload = scenario.to_dict()
        again = Scenario.from_dict(payload)
        assert again == scenario
        assert again.to_dict() == payload
        assert isinstance(again.tenancy, TenantMix)


def test_generator_draws_admission_only_under_cap():
    """Admission control needs a budget to defend: a tenant mix with
    admission on implies the scenario carries a global cap."""
    seen_admission = False
    for seed in range(40):
        scenario = generate_scenario(
            seed, GeneratorConfig(p_tenancy=1.0, p_admission=1.0)
        )
        if scenario.tenancy.admission:
            seen_admission = True
            assert scenario.global_cap_w is not None
    assert seen_admission


def test_tenant_checkers_registered():
    names = {c.name for c in default_checkers()}
    assert {
        "tenant_conservation",
        "tenant_no_starvation",
        "tenant_admission",
    } <= names


def test_tenanted_run_is_deterministic():
    scenario = generate_scenario(3, TENANTED)
    r1 = run_scenario(scenario, checkers=default_checkers())
    r2 = run_scenario(scenario, checkers=default_checkers())
    assert r1.ok, [str(v) for v in r1.violations]
    assert r1.digest == r2.digest


def test_smoke_batch_forced_tenancy_clean():
    report = run_batch(list(range(6)), config=TENANTED, shrink=False)
    assert report.ok, report.summary()


def test_planted_fairshare_bug_is_caught_and_shrunk(monkeypatch):
    """Self-check: a deliberately biased splitter (one project's weight
    inflated after the checker's own snapshot) trips the
    tenant_conservation invariant, and the shrinker hands back a
    smaller scenario that still reproduces it."""

    def biased_split(self, budget_w, job_nodes, node_peak_w):
        weights = self.job_weights(job_nodes)
        if weights:
            first = sorted(weights)[0]
            weights[first] = weights[first] + 1.0
        return split_budget_weighted(
            budget_w, job_nodes, node_peak_w, weights
        )

    monkeypatch.setattr(TenancyCoordinator, "_split", biased_split)
    violation = None
    scenario = None
    for seed in range(8):
        scenario = generate_scenario(seed, TENANTED)
        result = run_scenario(
            scenario, checkers=default_checkers(), stop_on_first=True
        )
        for v in result.violations:
            if v.invariant == "tenant_conservation":
                violation = v
                break
        if violation is not None:
            break
    assert violation is not None, "planted bug was never detected"

    report = shrink_scenario(scenario, violation, max_runs=60)
    assert len(report.minimal.jobs) <= len(scenario.jobs)
    assert report.minimal.tenancy is not None  # the bug needs tenants
    # The minimal scenario still reproduces the same invariant.
    assert make_oracle("tenant_conservation")(report.minimal) is not None


@pytest.mark.tenants
@pytest.mark.simtest
@pytest.mark.skipif(
    not os.environ.get("REPRO_SIMTEST_DEEP"),
    reason="deep tenant-mix batch only with REPRO_SIMTEST_DEEP=1",
)
def test_deep_tenant_mix_batch():
    """ISSUE 10 acceptance: 100 forced-tenancy seeds, zero violations."""
    report = run_batch(list(range(100)), config=TENANTED, shrink=False)
    assert report.ok, report.summary()
