"""Cross-cutting invariants under randomised load.

These tests stress the full stack with seeded random job churn and
assert the properties a site operator depends on, independent of any
particular paper number: budget conservation, telemetry consistency,
and clean resource accounting.
"""

import numpy as np
import pytest

from repro import Jobspec, ManagerConfig, PowerManagedCluster
from repro.apps.registry import list_apps
from repro.flux.jobspec import JobState


def churn_cluster(policy: str, seed: int, n_nodes: int = 8, cap: float = 9600.0):
    """Random mix of short jobs arriving over time."""
    rng = np.random.default_rng(seed)
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=n_nodes,
        seed=seed,
        manager_config=ManagerConfig(
            global_cap_w=cap, policy=policy, static_node_cap_w=1950.0
        ),
    )
    apps = [a for a in list_apps() if a != "nqueens"]
    t = 0.0
    for _ in range(12):
        app = apps[int(rng.integers(0, len(apps)))]
        nnodes = int(rng.integers(1, n_nodes // 2 + 1))
        scale = float(rng.uniform(2.0, 8.0)) if app != "gemm" else float(
            rng.uniform(0.2, 0.5)
        )
        cluster.submit_at(
            Jobspec(app=app, nnodes=nnodes, params={"work_scale": scale}), t
        )
        t += float(rng.exponential(30.0))
    cluster.run_for(t + 1.0)
    cluster.run_until_complete(timeout_s=2_000_000)
    # Let the last job's cleanup RPCs (job-departed -> cap clearing)
    # deliver; they trail the completion event by sub-millisecond
    # message latency.
    cluster.run_for(1.0)
    return cluster


@pytest.mark.parametrize("policy", ["proportional", "fpp"])
@pytest.mark.parametrize("seed", [31, 32, 33])
def test_budget_never_exceeded_under_churn(policy, seed):
    """The cluster-level constraint holds through arbitrary churn.

    Share *decreases* take one enforcement round-trip (an RPC plus up
    to one 2 s tracking period) to land while an arriving job's demand
    starts immediately, so brief ~2-3% excursions at transitions are
    physical — the paper's own Table IV maxima sum past the budget too.
    Sustained violation is the bug class this test guards against.
    """
    cluster = churn_cluster(policy, seed)
    trace = cluster.trace
    assert trace is not None
    # The paper's formula P_n = P_G / (N_k + N_i) divides the budget
    # over *allocated* nodes only — idle nodes draw their ~400 W on top
    # of it. The enforceable invariant is therefore on allocated power:
    # sum of busy-node power stays within the budget (droop-free), with
    # brief small excursions at share transitions.
    idle_w = cluster.nodes[0].idle_power_w()
    total = 0
    violations = []
    for i, t in enumerate(trace.times):
        busy = [
            s[i] for s in trace.node_series.values() if s[i] > idle_w + 10.0
        ]
        if not busy:
            continue
        total += 1
        if sum(busy) > 9600.0:
            violations.append(sum(busy))
    assert max(violations, default=0.0) <= 9600.0 * 1.03
    assert len(violations) / max(total, 1) < 0.02


@pytest.mark.parametrize("seed", [41, 42])
def test_all_jobs_complete_and_nodes_return(seed):
    cluster = churn_cluster("proportional", seed)
    jm = cluster.instance.jobmanager
    assert all(r.state is JobState.COMPLETED for r in jm.jobs.values())
    assert cluster.instance.scheduler.free_count == cluster.instance.n_nodes
    # No node retains demand or manager caps after the last job.
    for node in cluster.nodes:
        assert node.total_power_w() == pytest.approx(node.idle_power_w())
        for gpu in node.gpu_domains:
            assert gpu.get_cap("nvml") is None


def test_telemetry_energy_agrees_with_exact_accounting():
    """Monitor-derived energy tracks the simulator's exact integral."""
    cluster = PowerManagedCluster(platform="lassen", n_nodes=2, seed=17)
    job = cluster.submit(
        Jobspec(app="gemm", nnodes=2, params={"work_scale": 0.5})
    )
    cluster.run_until_complete(timeout_s=500_000)
    cluster.run_for(4.0)
    m = cluster.metrics(job.jobid)
    data = cluster.telemetry(job.jobid)
    telemetry_energy_kj = data.mean("node_w") * m.runtime_s / 1e3
    assert telemetry_energy_kj == pytest.approx(m.avg_node_energy_kj, rel=0.05)


def test_eventlog_records_full_lifecycle():
    cluster = PowerManagedCluster(platform="lassen", n_nodes=2, seed=18, trace=False)
    job = cluster.submit(Jobspec(app="laghos", nnodes=2))
    cluster.run_until_complete()
    log = cluster.instance.jobmanager.eventlog(job.jobid)
    assert [e["event"] for e in log] == [
        "submitted",
        "scheduled",
        "running",
        "completed",
    ]
    times = [e["t"] for e in log]
    assert times == sorted(times)


def test_monitor_flush_marks_old_windows_partial():
    cluster = PowerManagedCluster(platform="lassen", n_nodes=1, seed=19, trace=False)
    job = cluster.submit(Jobspec(app="laghos", nnodes=1, params={"work_scale": 4}))
    cluster.run_until_complete()
    # Administrative flush of the node agent's buffer.
    fut = cluster.instance.brokers[0].rpc(0, "power-monitor.clear", {})
    cluster.run_for(1.0)
    assert fut.value["flushed"] > 0
    data = cluster.telemetry(job.jobid)
    assert not data.complete  # history for the job window was flushed


def test_per_job_shares_sum_within_budget():
    """At every recompute, assigned job limits sum to <= the budget."""
    cluster = churn_cluster("proportional", 51)
    jl = cluster.manager.cluster.job_level
    # Reconstruct sums from the assignment log grouped by time.
    by_time = {}
    for t, jobid, node_limit in jl.assignment_log:
        if node_limit is not None:
            by_time.setdefault(round(t, 6), {})[jobid] = node_limit
    # The log stores per-node limits; recover job totals via job state
    # history is complex — instead assert per-node limit never exceeds
    # the even-split bound for one active node.
    for t, limits in by_time.items():
        for node_limit in limits.values():
            assert node_limit <= 3050.0 + 1e-6
