"""Equivalence and pricing-identity pins for the batched hot path.

Three families of invariants back the ISSUE-3 perf work:

* **Sampling-mode equivalence** — the batched one-event-per-interval
  tick and the legacy per-node timers must produce byte-identical job
  CSVs and identical telemetry exports (counter-for-counter) on the
  seeded 16-node scenarios, for both aggregation strategies, with and
  without faults. The batched mode is pinned against the golden
  fixtures by ``test_golden_determinism``; here the legacy mode is
  pinned against the same fixtures, which makes the two modes equal to
  each other by transitivity (and keeps this file at one run per
  scenario instead of two).

* **RNG stream identity** — vectorized draws (``Generator.normal`` /
  ``standard_normal`` with a ``size``) fill the stream sequentially,
  so they equal the scalar per-draw loop they replaced bit for bit.
  The sensor suite and overlay path-delay model rely on this.

* **Arithmetic wire-size pricing** — query responses are priced as
  ``base + n_samples * per_node_sample_size`` instead of walking every
  sample dict; subtree queries as ``base + 8 * n_ranks``. Both must
  exactly equal what a full :func:`estimate_payload_bytes` walk of the
  same object returns, and the per-node sample size must go stale
  (template rebuilt) whenever a power mutation bumps ``power_rev``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import variorum
from repro.flux.message import estimate_payload_bytes
from repro.hardware.platforms.generic import make_generic_node
from repro.hardware.platforms.lassen import make_lassen_node
from repro.hardware.platforms.tioga import make_tioga_node
from repro.monitor.root_agent import _subtree_query
from repro.variorum.backends import get_backend

from tests.golden_scenarios import SCENARIOS, fixture_paths, run_scenario


# ---------------------------------------------------------------------------
# Batched vs legacy sampling: byte-identical outputs
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_legacy_timers_match_goldens(name):
    """Per-node timers reproduce the goldens the batched tick matches."""
    spec = SCENARIOS[name]
    csv_blob, prom = run_scenario(
        spec["strategy"], spec["faults"], batch_sampling=False
    )
    csv_path, prom_path = fixture_paths(name)
    with open(csv_path) as fh:
        assert csv_blob == fh.read(), f"legacy-timer CSV diverged on {name}"
    with open(prom_path) as fh:
        assert prom == fh.read(), f"legacy-timer metrics diverged on {name}"


# ---------------------------------------------------------------------------
# Vectorized RNG draws equal the scalar loop they replaced
# ---------------------------------------------------------------------------

def test_vector_normal_equals_scalar_draws():
    """Generator.normal(size=n) consumes the stream like n scalar draws."""
    vec_rng = np.random.default_rng(1234)
    scal_rng = np.random.default_rng(1234)
    vec = vec_rng.normal(0.0, 2.5, size=7)
    scal = [scal_rng.normal(0.0, 2.5) for _ in range(7)]
    assert [float(x) for x in vec] == [float(x) for x in scal]
    # And the streams stay aligned for whatever draws next.
    assert float(vec_rng.normal()) == float(scal_rng.normal())


def test_vector_standard_normal_equals_scalar_draws():
    """standard_normal(n) (overlay path delays) is also stream-identical."""
    vec_rng = np.random.default_rng(99)
    scal_rng = np.random.default_rng(99)
    vec = vec_rng.standard_normal(5)
    scal = [scal_rng.standard_normal() for _ in range(5)]
    assert [float(x) for x in vec] == [float(x) for x in scal]


def test_noisy_sensor_read_matches_manual_scalar_path():
    """A noisy SensorSuite.read equals recomputing with scalar draws."""
    node = make_lassen_node(
        "n0", rng=np.random.default_rng(5), sensor_noise_sigma_w=1.5
    )
    ref_rng = np.random.default_rng(5)
    reading = node.sensors.read(4.0)
    # Replay the same draws scalar-by-scalar on an identical node.
    ref = make_lassen_node("n0")
    sigma = 1.5
    for dom in ref.measurable_domains:
        expect = max(0.0, dom.actual_w + float(ref_rng.normal(0.0, sigma)))
        assert reading.domains_w[dom.spec.name] == expect
    expect_node = max(0.0, ref.total_power_w() + float(ref_rng.normal(0.0, sigma)))
    assert reading.node_w == expect_node


# ---------------------------------------------------------------------------
# Arithmetic wire-size pricing == full estimator walk
# ---------------------------------------------------------------------------

@pytest.mark.parametrize(
    "make_node", [make_lassen_node, make_tioga_node, make_generic_node]
)
def test_sample_wire_bytes_equals_full_walk(make_node):
    node = make_node("n0")
    assert variorum.sample_wire_bytes(node) is None  # no sample yet
    sample = variorum.get_node_power_json(node, 3.25)
    size = variorum.sample_wire_bytes(node)
    assert size == estimate_payload_bytes(dict(sample))
    # Later samples (template fast path included) price identically.
    backend = get_backend(node.spec.vendor)
    later = backend.sample_cached(node, 5.0)
    assert estimate_payload_bytes(dict(later)) == size


def test_query_record_pricing_identity():
    """base + n * sample_size == walking the full response record."""
    node = make_lassen_node("n0")
    backend = get_backend(node.spec.vendor)
    samples = [backend.sample_cached(node, 2.0 * i) for i in range(6)]
    record = {
        "hostname": node.hostname,
        "rank": 3,
        "samples": samples,
        "complete": True,
        "downsampled": False,
    }
    base = estimate_payload_bytes({**record, "samples": []})
    per_sample = variorum.sample_wire_bytes(node)
    assert per_sample is not None
    assert base + 6 * per_sample == estimate_payload_bytes(record)


def test_subtree_query_pricing_identity():
    """The pre-stamped subtree query size equals a fresh full walk."""
    ranks = [3, 4, 5, 9, 12]
    payload = _subtree_query(ranks, 0.0, 60.0, {"max_samples": 100})
    assert payload._size_cache == estimate_payload_bytes(dict(payload))
    bare = _subtree_query([7], 10.0, 20.0, {})
    assert bare._size_cache == estimate_payload_bytes(dict(bare))


# ---------------------------------------------------------------------------
# Template fast path: correctness and invalidation
# ---------------------------------------------------------------------------

def test_sample_cached_equals_full_rebuild():
    node = make_lassen_node("n0")
    backend = get_backend(node.spec.vendor)
    first = backend.sample_cached(node, 0.0)
    hit = backend.sample_cached(node, 2.0)  # template hit
    assert hit is not first  # fresh dict, write-once safety
    assert hit == backend.get_node_power_json(node, 2.0)
    # Off-grid timestamps quantise identically on both paths.
    odd = backend.sample_cached(node, 7.0001234)
    assert odd == backend.get_node_power_json(node, 7.0001234)


@pytest.mark.parametrize(
    "mutate",
    [
        lambda node: node.domains["gpu0"].set_demand(280.0),
        lambda node: node.domains["cpu0"].set_cap("test", 120.0),
        lambda node: node.domains["cpu0"].clear_demand(),
        lambda node: node.opal.set_node_power_cap(1950.0),
        lambda node: node.opal.clear_node_power_cap(),
    ],
)
def test_power_mutations_invalidate_template(mutate):
    node = make_lassen_node("n0")
    backend = get_backend(node.spec.vendor)
    backend.sample_cached(node, 0.0)  # prime the template
    rev = node.power_rev
    mutate(node)
    assert node.power_rev > rev, "mutation must bump power_rev"
    after = backend.sample_cached(node, 2.0)
    assert after == backend.get_node_power_json(node, 2.0)


def test_template_reflects_demand_change():
    node = make_lassen_node("n0")
    backend = get_backend(node.spec.vendor)
    before = backend.sample_cached(node, 0.0)
    node.domains["gpu0"].set_demand(280.0)
    after = backend.sample_cached(node, 2.0)
    assert after["power_gpu_watts_gpu_0"] != before["power_gpu_watts_gpu_0"]


def test_noisy_sensors_never_use_template():
    """Per-sample RNG draws force the full path (stream must advance)."""
    node = make_lassen_node(
        "n0", rng=np.random.default_rng(11), sensor_noise_sigma_w=2.0
    )
    backend = get_backend(node.spec.vendor)
    a = backend.sample_cached(node, 0.0)
    b = backend.sample_cached(node, 0.0)  # same rev, same timestamp
    assert a["power_node_watts"] != b["power_node_watts"]
