"""Unit + property tests for power domains."""

import pytest
from hypothesis import given, strategies as st

from repro.hardware.domains import DomainKind, DomainSpec, PowerDomain


def gpu_spec(**overrides):
    kwargs = dict(
        name="gpu0",
        kind=DomainKind.GPU,
        idle_w=50.0,
        max_w=300.0,
        cappable=True,
        min_cap_w=100.0,
        max_cap_w=300.0,
    )
    kwargs.update(overrides)
    return DomainSpec(**kwargs)


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------

def test_spec_rejects_negative_idle():
    with pytest.raises(ValueError):
        gpu_spec(idle_w=-1.0)


def test_spec_rejects_max_below_idle():
    with pytest.raises(ValueError):
        gpu_spec(idle_w=100.0, max_w=50.0)


def test_cappable_spec_requires_cap_range():
    with pytest.raises(ValueError):
        gpu_spec(min_cap_w=None, max_cap_w=None)


def test_invalid_cap_range_rejected():
    with pytest.raises(ValueError):
        gpu_spec(min_cap_w=300.0, max_cap_w=100.0)


# ---------------------------------------------------------------------------
# Demand
# ---------------------------------------------------------------------------

def test_demand_defaults_to_idle():
    dom = PowerDomain(gpu_spec())
    assert dom.demand_w == 50.0
    assert dom.actual_w == 50.0


def test_demand_clamped_to_max():
    dom = PowerDomain(gpu_spec())
    dom.set_demand(500.0)
    assert dom.demand_w == 300.0


def test_demand_clamped_to_idle_floor():
    dom = PowerDomain(gpu_spec())
    dom.set_demand(10.0)
    assert dom.demand_w == 50.0


def test_clear_demand_restores_idle():
    dom = PowerDomain(gpu_spec())
    dom.set_demand(200.0)
    dom.clear_demand()
    assert dom.demand_w == 50.0


# ---------------------------------------------------------------------------
# Capping
# ---------------------------------------------------------------------------

def test_uncapped_actual_equals_demand():
    dom = PowerDomain(gpu_spec())
    dom.set_demand(250.0)
    assert dom.actual_w == 250.0
    assert dom.effective_cap_w is None


def test_cap_limits_actual():
    dom = PowerDomain(gpu_spec())
    dom.set_demand(250.0)
    dom.set_cap("nvml", 150.0)
    assert dom.actual_w == 150.0


def test_cap_above_demand_has_no_effect():
    dom = PowerDomain(gpu_spec())
    dom.set_demand(120.0)
    dom.set_cap("nvml", 200.0)
    assert dom.actual_w == 120.0


def test_effective_cap_is_min_of_sources():
    dom = PowerDomain(gpu_spec())
    dom.set_cap("nvml", 200.0)
    dom.set_cap("opal", 150.0)
    assert dom.effective_cap_w == 150.0
    dom.set_cap("opal", None)  # remove
    assert dom.effective_cap_w == 200.0


def test_cap_clamped_into_legal_range():
    dom = PowerDomain(gpu_spec())
    dom.set_cap("nvml", 10.0)
    assert dom.get_cap("nvml") == 100.0  # clamped to min_cap
    dom.set_cap("nvml", 500.0)
    assert dom.get_cap("nvml") == 300.0


def test_capping_uncappable_domain_raises():
    spec = DomainSpec(name="mem0", kind=DomainKind.MEMORY, idle_w=30, max_w=150)
    with pytest.raises(ValueError):
        PowerDomain(spec).set_cap("x", 100.0)


def test_cap_never_pushes_below_idle():
    dom = PowerDomain(gpu_spec(min_cap_w=10.0))
    dom.set_demand(250.0)
    dom.set_cap("nvml", 10.0)
    assert dom.actual_w == 50.0  # idle floor holds


# ---------------------------------------------------------------------------
# Throttle ratio
# ---------------------------------------------------------------------------

def test_throttle_is_one_when_uncapped():
    dom = PowerDomain(gpu_spec())
    dom.set_demand(250.0)
    assert dom.throttle_ratio == 1.0


def test_throttle_is_one_at_idle_demand():
    dom = PowerDomain(gpu_spec())
    dom.set_cap("nvml", 100.0)
    assert dom.throttle_ratio == 1.0  # no dynamic demand to throttle


def test_throttle_fraction_of_dynamic_power():
    dom = PowerDomain(gpu_spec())
    dom.set_demand(250.0)  # dyn demand 200
    dom.set_cap("nvml", 150.0)  # dyn grant 100
    assert dom.throttle_ratio == pytest.approx(0.5)


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

@given(
    demand=st.floats(0.0, 400.0),
    cap=st.floats(100.0, 300.0),
)
def test_actual_power_invariants(demand, cap):
    """idle <= actual <= min(demand clamp, cap clamp) always holds."""
    dom = PowerDomain(gpu_spec())
    dom.set_demand(demand)
    dom.set_cap("nvml", cap)
    actual = dom.actual_w
    assert actual >= dom.spec.idle_w
    assert actual <= dom.spec.max_w
    assert actual <= max(dom.get_cap("nvml"), dom.spec.idle_w) + 1e-9
    assert actual <= dom.demand_w + 1e-9


@given(
    demand=st.floats(0.0, 400.0),
    caps=st.lists(st.floats(100.0, 300.0), min_size=0, max_size=4),
)
def test_throttle_ratio_bounded(demand, caps):
    dom = PowerDomain(gpu_spec())
    dom.set_demand(demand)
    for i, c in enumerate(caps):
        dom.set_cap(f"src{i}", c)
    assert 0.0 <= dom.throttle_ratio <= 1.0


@given(st.lists(st.floats(100.0, 300.0), min_size=1, max_size=5))
def test_effective_cap_is_minimum(caps):
    dom = PowerDomain(gpu_spec())
    for i, c in enumerate(caps):
        dom.set_cap(f"s{i}", c)
    assert dom.effective_cap_w == pytest.approx(min(caps))
