"""Unit tests for repro.telemetry.tracing and the chrome exporter."""

import json

import pytest

from repro.analysis.chrome_trace import (
    chrome_trace_dict,
    events_from_chrome,
    to_chrome_trace_json,
    write_chrome_trace,
)
from repro.telemetry.tracing import TraceEvent, TraceRecorder


@pytest.fixture
def clock():
    return {"now": 0.0}


@pytest.fixture
def rec(clock):
    return TraceRecorder(capacity=4, clock=lambda: clock["now"])


def test_instant_and_span(rec, clock):
    clock["now"] = 1.0
    rec.instant("tick", "manager", rank=3, jobs=2)
    clock["now"] = 2.5
    rec.span("rpc:kvs.get", "flux", start_s=2.0, rank=0, peer=1)
    events = rec.events()
    assert len(events) == 2
    assert events[0].kind == "instant"
    assert events[0].ts_s == 1.0
    assert events[0].attrs == {"jobs": 2}
    assert events[1].kind == "span"
    assert events[1].dur_s == pytest.approx(0.5)  # end defaults to clock()


def test_trace_span_context_manager(rec, clock):
    with rec.trace_span("phase", "monitor", rank=1, n=7):
        clock["now"] = 3.0
    (ev,) = rec.events()
    assert ev.name == "phase"
    assert ev.ts_s == 0.0
    assert ev.dur_s == 3.0
    assert ev.attrs == {"n": 7}


def test_ring_eviction_and_dropped(rec):
    for i in range(7):
        rec.instant(f"e{i}", "flux")
    assert len(rec) == 4
    assert rec.dropped == 3
    assert [e.name for e in rec.events()] == ["e3", "e4", "e5", "e6"]


def test_disabled_recorder_records_nothing(rec):
    rec.enabled = False
    rec.instant("x", "flux")
    with rec.trace_span("y", "flux"):
        pass
    assert len(rec) == 0
    assert rec.dropped == 0


def test_clear(rec):
    rec.instant("x", "flux")
    rec.clear()
    assert len(rec) == 0


def test_render_last(rec):
    for i in range(3):
        rec.instant(f"e{i}", "flux")
    out = rec.render(last=2)
    assert "e1" in out and "e2" in out and "e0" not in out


# ----------------------------------------------------------------------
# Chrome Trace Event export
# ----------------------------------------------------------------------
def test_chrome_trace_dict_shape(rec, clock):
    rec.span("rpc:x", "flux", start_s=1.0, end_s=1.002, rank=2, peer=0)
    doc = chrome_trace_dict(rec)
    (ev,) = doc["traceEvents"]
    assert ev["ph"] == "X"
    assert ev["ts"] == pytest.approx(1.0e6)   # microseconds
    assert ev["dur"] == pytest.approx(2000.0)
    assert ev["tid"] == 2
    assert ev["args"]["peer"] == 0


def test_chrome_round_trip_is_lossless(rec, clock):
    rec.instant("tick", "manager", rank=None, jobs=3)
    rec.span("agg", "monitor", start_s=0.1, end_s=0.4, rank=0, nodes=8)
    originals = rec.events()
    rebuilt = events_from_chrome(to_chrome_trace_json(rec))
    assert rebuilt == originals
    assert all(isinstance(e, TraceEvent) for e in rebuilt)


def test_write_chrome_trace(tmp_path, rec):
    rec.instant("a", "flux")
    path = tmp_path / "trace.json"
    n = write_chrome_trace(str(path), rec)
    assert n == 1
    doc = json.loads(path.read_text())
    assert doc["traceEvents"][0]["name"] == "a"
