"""Unit tests for the payload-size / bandwidth transport model."""

import pytest

from repro.flux.broker import Broker
from repro.flux.message import Message, MessageType, estimate_payload_bytes
from repro.flux.overlay import TBON
from repro.simkernel import Simulator


# ---------------------------------------------------------------------------
# Payload size estimation
# ---------------------------------------------------------------------------

def test_scalar_sizes():
    assert estimate_payload_bytes(None) == 4
    assert estimate_payload_bytes(True) == 4
    assert estimate_payload_bytes(3) == 8
    assert estimate_payload_bytes(3.14) == 8
    assert estimate_payload_bytes("abcd") == 6


def test_container_sizes_accumulate():
    small = estimate_payload_bytes({"a": 1})
    bigger = estimate_payload_bytes({"a": 1, "b": [1, 2, 3]})
    assert bigger > small


def test_estimate_tracks_real_json_order_of_magnitude():
    import json

    payload = {
        "samples": [
            {"timestamp": float(i), "power_node_watts": 1234.567}
            for i in range(100)
        ]
    }
    est = estimate_payload_bytes(payload)
    real = len(json.dumps(payload).encode())
    assert 0.3 * real <= est <= 3.0 * real


def test_message_size_includes_header():
    msg = Message(msg_type=MessageType.REQUEST, topic="x", payload={})
    assert msg.size_bytes() >= 64


# ---------------------------------------------------------------------------
# Bandwidth-aware delays
# ---------------------------------------------------------------------------

def test_path_delay_grows_with_payload():
    t = TBON(size=8, hop_latency_s=1e-4)
    small = t.path_delay(7, 0, size_bytes=100)
    large = t.path_delay(7, 0, size_bytes=10_000_000)
    assert large > small
    # 10 MB over 12.5 GB/s = 6.4 ms per hop, 3 hops for rank 7.
    assert large == pytest.approx(3 * (1e-4 + 6.4e-3), rel=0.01)


def test_zero_size_matches_control_latency():
    t = TBON(size=8, hop_latency_s=1e-4)
    assert t.path_delay(7, 0) == t.path_delay(7, 0, size_bytes=0)


def test_custom_bandwidth():
    slow = TBON(size=2, hop_latency_s=0.0, bandwidth_bps=8e6)  # 1 MB/s
    assert slow.path_delay(1, 0, size_bytes=1_000_000) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Receiver ingest queueing
# ---------------------------------------------------------------------------

def test_concurrent_large_responses_serialise_at_receiver():
    """N senders of big payloads: the last arrival queues behind N-1."""
    sim = Simulator()
    overlay = TBON(size=9, fanout=8, hop_latency_s=1e-5)
    registry = {}
    brokers = [Broker(sim, r, overlay, registry=registry) for r in range(9)]
    arrivals = []
    big = {"data": "z" * 1_000_000}  # ~1 MB -> 0.64 ms ingest each

    def handler(b, m):
        b.respond(m, big)

    done = []
    for r in range(1, 9):
        brokers[r].register_service("big", handler)
    futs = [brokers[0].rpc(r, "big", {}) for r in range(1, 9)]

    sim.run()
    # All resolved; total time >= 8 ingest slots at the root.
    assert all(f.triggered for f in futs)
    assert sim.now >= 8 * (1_000_000 * 8.0 / overlay.bandwidth_bps)


def test_small_control_messages_barely_queue():
    sim = Simulator()
    overlay = TBON(size=9, fanout=8, hop_latency_s=1e-5)
    registry = {}
    brokers = [Broker(sim, r, overlay, registry=registry) for r in range(9)]
    for r in range(1, 9):
        brokers[r].register_service("ping", lambda b, m: b.respond(m, {}))
    futs = [brokers[0].rpc(r, "ping", {}) for r in range(1, 9)]
    sim.run()
    assert all(f.triggered for f in futs)
    assert sim.now < 1e-3  # microsecond-scale control traffic


# ---------------------------------------------------------------------------
# Downsampled telemetry queries
# ---------------------------------------------------------------------------

def test_query_downsampling(lassen4):
    from repro.monitor.module import attach_monitor

    attach_monitor(lassen4)
    lassen4.run_for(100.0)
    fut = lassen4.brokers[0].rpc(
        1,
        "power-monitor.query",
        {"t_start": 0.0, "t_end": 100.0, "max_samples": 10},
    )
    lassen4.run_for(1.0)
    payload = fut.value
    assert payload["downsampled"] is True
    assert len(payload["samples"]) <= 10
    ts = [s["timestamp"] for s in payload["samples"]]
    assert ts == sorted(ts)


def test_query_without_limit_not_downsampled(lassen4):
    from repro.monitor.module import attach_monitor

    attach_monitor(lassen4)
    lassen4.run_for(20.0)
    fut = lassen4.brokers[0].rpc(
        1, "power-monitor.query", {"t_start": 0.0, "t_end": 20.0}
    )
    lassen4.run_for(1.0)
    assert fut.value["downsampled"] is False
    assert len(fut.value["samples"]) == 11


def test_query_invalid_max_samples_rejected(lassen4):
    from repro.flux.message import FluxRPCError
    from repro.monitor.module import attach_monitor

    attach_monitor(lassen4)
    fut = lassen4.brokers[0].rpc(
        1,
        "power-monitor.query",
        {"t_start": 0.0, "t_end": 5.0, "max_samples": 0},
    )
    lassen4.run_for(1.0)
    with pytest.raises(FluxRPCError):
        _ = fut.value


def test_get_job_power_forwards_max_samples(lassen4):
    from repro.flux.jobspec import Jobspec
    from repro.monitor.module import attach_monitor
    from repro.monitor.root_agent import GET_JOB_POWER_TOPIC

    attach_monitor(lassen4)
    lassen4.submit(Jobspec(app="laghos", nnodes=2, params={"work_scale": 8}))
    lassen4.run_until_complete()
    fut = lassen4.brokers[0].rpc(
        0,
        GET_JOB_POWER_TOPIC,
        {"ranks": [0, 1], "t_start": 0.0, "t_end": 100.0, "max_samples": 5},
    )
    lassen4.run_for(1.0)
    for node in fut.value["nodes"]:
        assert len(node["samples"]) <= 5


def test_downsampled_query_retains_last_sample(lassen4):
    """Regression: the stride pick must always include the newest sample.

    The old ``samples[::stride]`` could drop the window's final sample
    (the freshest reading — exactly what a live dashboard polls for)
    whenever ``(n - 1) % stride != 0``.
    """
    from repro.monitor.module import attach_monitor

    attach_monitor(lassen4)
    lassen4.run_for(100.0)
    full = lassen4.brokers[0].rpc(
        1, "power-monitor.query", {"t_start": 0.0, "t_end": 100.0}
    )
    lassen4.run_for(1.0)
    last_ts = full.value["samples"][-1]["timestamp"]
    for max_samples in (2, 3, 7, 10):
        fut = lassen4.brokers[0].rpc(
            1,
            "power-monitor.query",
            {"t_start": 0.0, "t_end": 100.0, "max_samples": max_samples},
        )
        lassen4.run_for(1.0)
        payload = fut.value
        assert len(payload["samples"]) <= max_samples
        assert payload["samples"][0]["timestamp"] == 0.0
        assert payload["samples"][-1]["timestamp"] == last_ts
