"""Unit tests for jobspecs and the job manager lifecycle."""

import pytest

from repro.flux.instance import FluxInstance
from repro.flux.jobspec import Jobspec, JobState


# ---------------------------------------------------------------------------
# Jobspec validation
# ---------------------------------------------------------------------------

def test_jobspec_requires_positive_nodes():
    with pytest.raises(ValueError):
        Jobspec(app="gemm", nnodes=0)


def test_jobspec_launcher_validated():
    with pytest.raises(ValueError):
        Jobspec(app="gemm", nnodes=1, launcher="slurm")


def test_jobspec_label():
    assert Jobspec(app="gemm", nnodes=2).label == "gemm-2n"
    assert Jobspec(app="gemm", nnodes=2, name="mine").label == "mine"


def test_jobstate_active_classification():
    assert JobState.RUNNING.active
    assert JobState.SUBMITTED.active
    assert not JobState.COMPLETED.active
    assert not JobState.CANCELLED.active


# ---------------------------------------------------------------------------
# Lifecycle on a real instance
# ---------------------------------------------------------------------------

def test_job_runs_to_completion(lassen4):
    rec = lassen4.submit(Jobspec(app="laghos", nnodes=2))
    lassen4.run_until_complete()
    assert rec.state is JobState.COMPLETED
    assert rec.t_start == 0.0
    assert rec.t_end == pytest.approx(12.55, abs=1.5)
    assert rec.ranks == [0, 1]


def test_fcfs_queues_when_full(lassen4):
    a = lassen4.submit(Jobspec(app="laghos", nnodes=3))
    b = lassen4.submit(Jobspec(app="laghos", nnodes=3))
    lassen4.run_until_complete()
    assert b.t_start >= a.t_end  # b waited for a's nodes


def test_parallel_jobs_share_cluster(lassen4):
    a = lassen4.submit(Jobspec(app="laghos", nnodes=2))
    b = lassen4.submit(Jobspec(app="laghos", nnodes=2))
    lassen4.run_until_complete()
    assert a.t_start == b.t_start == 0.0
    assert set(a.ranks).isdisjoint(b.ranks)


def test_job_too_large_rejected(lassen4):
    with pytest.raises(ValueError):
        lassen4.submit(Jobspec(app="laghos", nnodes=99))


def test_unknown_app_fails_at_execution(lassen4):
    with pytest.raises(KeyError):
        lassen4.submit(Jobspec(app="doom", nnodes=1))
        lassen4.run_until_complete()


def test_cancel_queued_job(lassen4):
    a = lassen4.submit(Jobspec(app="gemm", nnodes=4))
    b = lassen4.submit(Jobspec(app="laghos", nnodes=4))
    lassen4.jobmanager.cancel(b.jobid)
    lassen4.run_until_complete()
    assert b.state is JobState.CANCELLED
    assert a.state is JobState.COMPLETED


def test_cancel_running_job_rejected(lassen4):
    a = lassen4.submit(Jobspec(app="gemm", nnodes=1))
    lassen4.run_for(5.0)
    with pytest.raises(RuntimeError):
        lassen4.jobmanager.cancel(a.jobid)
    lassen4.run_until_complete()


def test_job_state_events_published(lassen4):
    topics = []
    lassen4.brokers[2].subscribe("job-state.", lambda m: topics.append(m.topic))
    lassen4.submit(Jobspec(app="laghos", nnodes=1))
    lassen4.run_until_complete()
    lassen4.run_for(1.0)  # let trailing events broadcast
    assert "job-state.submitted" in topics
    assert "job-state.scheduled" in topics
    assert "job-state.running" in topics
    assert "job-state.completed" in topics


def test_kvs_record_updated(lassen4):
    rec = lassen4.submit(Jobspec(app="laghos", nnodes=2))
    lassen4.run_until_complete()
    kvs_rec = lassen4.kvs.get(f"jobs.{rec.jobid}")
    assert kvs_rec["state"] == "completed"
    assert kvs_rec["ranks"] == rec.ranks
    assert kvs_rec["t_end"] is not None


def test_makespan(lassen4):
    lassen4.submit(Jobspec(app="laghos", nnodes=4))
    lassen4.submit(Jobspec(app="laghos", nnodes=4))
    lassen4.run_until_complete()
    assert lassen4.jobmanager.makespan_s() == pytest.approx(2 * 12.55, abs=2.0)


def test_submit_rpc_service(lassen4):
    fut = lassen4.brokers[3].rpc(
        0, "job-manager.submit", {"app": "laghos", "nnodes": 1}
    )
    lassen4.run_for(0.1)
    jobid = fut.value["jobid"]
    lassen4.run_until_complete()
    assert lassen4.jobmanager.jobs[jobid].state is JobState.COMPLETED


def test_list_rpc_service(lassen4):
    lassen4.submit(Jobspec(app="laghos", nnodes=1))
    lassen4.run_until_complete()
    fut = lassen4.brokers[1].rpc(0, "job-manager.list", {})
    lassen4.run_for(0.1)
    jobs = fut.value["jobs"]
    assert len(jobs) == 1 and jobs[0]["app"] == "laghos"


def test_runtime_property():
    rec_spec = Jobspec(app="laghos", nnodes=1)
    inst = FluxInstance(platform="lassen", n_nodes=1, seed=0)
    rec = inst.submit(rec_spec)
    assert rec.runtime_s is None
    inst.run_until_complete()
    assert rec.runtime_s == pytest.approx(rec.t_end - rec.t_start)
