"""Unit tests for FFT period detection."""

import numpy as np
import pytest

from repro.manager.fft import MIN_SAMPLES, estimate_period


def square_wave(period_s, dt, duration_s, high=250.0, low=60.0, duty=0.3):
    t = np.arange(0.0, duration_s, dt)
    pos = (t % period_s) / period_s
    return np.where(pos < duty, high, low)


def sine_wave(period_s, dt, duration_s, amp=100.0, offset=300.0):
    t = np.arange(0.0, duration_s, dt)
    return offset + amp * np.sin(2 * np.pi * t / period_s)


def test_detects_sine_period():
    vals = sine_wave(20.0, dt=2.0, duration_s=90.0)
    assert estimate_period(vals, 2.0) == pytest.approx(20.0, abs=2.0)


def test_detects_square_wave_period():
    """Quicksilver-like bursts: the FPP use case."""
    vals = square_wave(20.0, dt=2.0, duration_s=90.0)
    assert estimate_period(vals, 2.0) == pytest.approx(20.0, abs=2.5)


def test_subbin_interpolation_beats_bin_resolution():
    """A 13 s period in a 90 s window falls between bins; the estimate
    must land within the FPP convergence threshold (2 s)."""
    vals = sine_wave(13.0, dt=1.0, duration_s=90.0)
    assert estimate_period(vals, 1.0) == pytest.approx(13.0, abs=1.5)


def test_flat_signal_returns_none():
    assert estimate_period([300.0] * 45, 2.0) is None


def test_linear_trend_returns_none():
    vals = np.linspace(100.0, 500.0, 45)
    assert estimate_period(vals, 2.0) is None


def test_white_noise_returns_none():
    rng = np.random.default_rng(1)
    vals = 300.0 + rng.normal(0, 5.0, 64)
    # Pure noise has no prominent peak at default prominence.
    assert estimate_period(vals, 2.0) is None


def test_too_few_samples_returns_none():
    assert estimate_period([1.0] * (MIN_SAMPLES - 1), 2.0) is None


def test_invalid_dt_returns_none():
    assert estimate_period([1.0] * 20, 0.0) is None


def test_period_longer_than_half_window_rejected():
    vals = sine_wave(200.0, dt=2.0, duration_s=90.0)  # 0.45 cycles visible
    assert estimate_period(vals, 2.0) is None


def test_period_scales_with_dt():
    vals = square_wave(20.0, dt=2.0, duration_s=90.0)
    stretched = estimate_period(vals, 4.0)  # same samples, half the rate
    assert stretched == pytest.approx(40.0, abs=5.0)


def test_detects_stretched_period():
    """The stretched-by-capping case FPP must distinguish."""
    base = estimate_period(square_wave(12.0, 2.0, 90.0), 2.0)
    stretched = estimate_period(square_wave(16.0, 2.0, 90.0), 2.0)
    assert base is not None and stretched is not None
    assert stretched - base > 2.0  # above the convergence threshold


def test_noisy_periodic_signal_still_detected():
    rng = np.random.default_rng(2)
    vals = square_wave(20.0, 2.0, 90.0) + rng.normal(0, 8.0, 45)
    assert estimate_period(vals, 2.0) == pytest.approx(20.0, abs=3.0)


def test_prominence_threshold_configurable():
    rng = np.random.default_rng(3)
    vals = 300.0 + rng.normal(0, 5.0, 64)
    # With a permissive threshold even noise yields some period.
    assert estimate_period(vals, 2.0, min_prominence=1.01) is not None
