"""Unit tests for the tenancy model, usage ledger and admission rules.

The pure substrate under the coordinator (ISSUE 10): the
account/project/user directory and its canonical JSON round trip, the
exponentially-decaying usage ledger, and the structured admission
decision function whose check ordering the simtest replay checker
depends on.
"""

from __future__ import annotations

import math

import pytest

from repro.tenancy.accounting import (
    DEFAULT_HALF_LIFE_S,
    UsageLedger,
    decay_factor,
    effective_weight,
)
from repro.tenancy.admission import (
    ADMIT,
    CODE_OK,
    CODE_OVERSUBSCRIBED,
    CODE_QUEUE_FULL,
    CODE_TOO_LARGE,
    CODE_UNCONSTRAINED,
    CODE_UNKNOWN_TENANT,
    QUEUE,
    REJECT,
    AdmissionConfig,
    AdmissionDecision,
    decide,
)
from repro.tenancy.model import (
    DEFAULT_ACCOUNT,
    UNAFFILIATED,
    Account,
    Project,
    Tenant,
    TenantDirectory,
)


# ----------------------------------------------------------------------
# Directory
# ----------------------------------------------------------------------
def _demo_directory() -> TenantDirectory:
    return TenantDirectory.build(
        projects=[("astro", 4.0), ("bio", 2.0)],
        users=[("alice", "astro"), ("bo", "bio")],
    )


def test_directory_always_has_unaffiliated():
    d = TenantDirectory()
    assert UNAFFILIATED in d.projects()
    assert d.base_weight(UNAFFILIATED) == 1.0
    assert d.project_of("nobody") == UNAFFILIATED
    assert d.project_of(None) == UNAFFILIATED
    assert not d.knows_user("nobody")
    assert not d.knows_user(None)


def test_directory_build_and_lookups():
    d = _demo_directory()
    assert d.projects() == ["astro", "bio", UNAFFILIATED]
    assert d.users() == ["alice", "bo"]
    assert d.project_of("alice") == "astro"
    assert d.knows_user("bo")
    assert d.base_weight("astro") == 4.0
    assert d.base_weight("no-such-project") == 1.0  # falls back to unaffiliated


def test_directory_resolve_explicit_project_wins():
    d = _demo_directory()
    assert d.resolve("alice") == Tenant(user="alice", project="astro")
    # A registered explicit project overrides the user's own.
    assert d.resolve("alice", "bio") == Tenant(user="alice", project="bio")
    # An unknown explicit project falls back to the user's registration.
    assert d.resolve("alice", "ghost") == Tenant(user="alice", project="astro")
    assert d.resolve(None) == Tenant(user="", project=UNAFFILIATED)


def test_directory_account_weight_multiplies_down():
    d = TenantDirectory()
    d.add_account(Account(name="hpc", weight=3.0))
    d.add_project(Project(name="astro", account="hpc", weight=4.0))
    assert d.base_weight("astro") == 12.0
    # Projects under the implicit default account keep their own weight.
    d.add_project(Project(name="bio", weight=2.0))
    assert d.base_weight("bio") == 2.0
    assert d.project("bio").account == DEFAULT_ACCOUNT


def test_directory_roundtrip_is_canonical():
    d = _demo_directory()
    payload = d.to_dict()
    again = TenantDirectory.from_dict(payload)
    assert again.to_dict() == payload
    assert again.projects() == d.projects()
    assert again.base_weight("astro") == d.base_weight("astro")
    assert again.project_of("bo") == "bio"


def test_directory_validation():
    d = TenantDirectory()
    with pytest.raises(ValueError):
        d.add_user("", UNAFFILIATED)
    with pytest.raises(ValueError):
        d.add_user("alice", "no-such-project")
    for bad in (0.0, -1.0, float("nan"), float("inf")):
        with pytest.raises(ValueError):
            Project(name="p", weight=bad)
        with pytest.raises(ValueError):
            Account(name="a", weight=bad)
    with pytest.raises(ValueError):
        Project(name="")
    with pytest.raises(ValueError):
        Account(name="")


# ----------------------------------------------------------------------
# Usage ledger
# ----------------------------------------------------------------------
def test_ledger_charge_and_decay():
    ledger = UsageLedger(half_life_s=100.0)
    assert ledger.decayed("astro", 0.0) == 0.0
    ledger.charge("astro", watts=1000.0, duration_s=10.0, now=0.0)
    assert ledger.decayed("astro", 0.0) == 10_000.0
    # One half-life later, exactly half remains.
    assert math.isclose(ledger.decayed("astro", 100.0), 5_000.0, rel_tol=1e-12)
    # Lifetime total never decays.
    assert ledger.lifetime("astro") == 10_000.0


def test_ledger_lazy_decay_is_tick_rate_independent():
    """Charging via many small ticks or one big one lands on the same
    balance — the decay is a pure function of (amount, age)."""
    fine = UsageLedger(half_life_s=50.0)
    for i in range(10):
        fine.charge("p", watts=100.0, duration_s=1.0, now=float(i + 1))
    coarse = UsageLedger(half_life_s=50.0)
    for i in range(10):
        coarse.charge("p", watts=100.0, duration_s=1.0, now=float(i + 1))
        # Interleave idle reads; they must not perturb the balance.
        coarse.decayed("p", float(i + 1) + 0.5)
    assert fine.decayed("p", 20.0) == coarse.decayed("p", 20.0)


def test_ledger_snapshot_sorted_and_validation():
    ledger = UsageLedger()
    assert ledger.half_life_s == DEFAULT_HALF_LIFE_S
    ledger.charge("zeta", 10.0, 1.0, now=0.0)
    ledger.charge("alpha", 20.0, 1.0, now=0.0)
    rows = ledger.snapshot(0.0)
    assert [r[0] for r in rows] == ["alpha", "zeta"]
    assert rows[0][1] == 20.0 and rows[0][2] == 20.0
    with pytest.raises(ValueError):
        UsageLedger(half_life_s=0.0)
    with pytest.raises(ValueError):
        ledger.charge("p", -1.0, 1.0, now=0.0)
    with pytest.raises(ValueError):
        decay_factor(10.0, 0.0)
    with pytest.raises(ValueError):
        effective_weight(0.0, 10.0, 10.0)
    with pytest.raises(ValueError):
        effective_weight(1.0, -1.0, 10.0)
    with pytest.raises(ValueError):
        effective_weight(1.0, 10.0, 0.0)


def test_effective_weight_halves_at_norm():
    assert effective_weight(4.0, 0.0, 1000.0) == 4.0
    assert effective_weight(4.0, 1000.0, 1000.0) == 2.0


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------
def _cfg(**kw) -> AdmissionConfig:
    base = dict(budget_w=10_000.0, admit_node_w=1000.0)
    base.update(kw)
    return AdmissionConfig(**base)


def test_decide_admit_when_fits():
    d = decide(_cfg(), nnodes=4, committed_w=0.0, queue_depth=0)
    assert (d.action, d.code) == (ADMIT, CODE_OK)
    assert d.admitted
    assert d.demand_w == 4000.0 and d.capacity_w == 10_000.0


def test_decide_unconstrained_without_budget():
    d = decide(_cfg(budget_w=None), nnodes=100, committed_w=1e9, queue_depth=9)
    assert (d.action, d.code) == (ADMIT, CODE_UNCONSTRAINED)
    assert d.capacity_w is None


def test_decide_too_large_is_hard_reject():
    """A job infeasible even on an idle system never enters the queue."""
    d = decide(_cfg(), nnodes=11, committed_w=0.0, queue_depth=0)
    assert (d.action, d.code) == (REJECT, CODE_TOO_LARGE)
    assert not d.admitted


def test_decide_queue_then_queue_full():
    cfg = _cfg(max_queue_depth=1)
    q = decide(cfg, nnodes=4, committed_w=8000.0, queue_depth=0)
    assert (q.action, q.code) == (QUEUE, CODE_OVERSUBSCRIBED)
    full = decide(cfg, nnodes=4, committed_w=8000.0, queue_depth=1)
    assert (full.action, full.code) == (REJECT, CODE_QUEUE_FULL)
    # Unbounded queue never rejects on depth.
    unbounded = decide(_cfg(), nnodes=4, committed_w=8000.0, queue_depth=10_000)
    assert unbounded.action == QUEUE


def test_decide_registration_check_runs_first():
    """unknown_tenant outranks every other check — even too_large."""
    cfg = _cfg(enforce_registration=True)
    d = decide(cfg, nnodes=999, committed_w=0.0, queue_depth=0, known_tenant=False)
    assert (d.action, d.code) == (REJECT, CODE_UNKNOWN_TENANT)
    ok = decide(cfg, nnodes=4, committed_w=0.0, queue_depth=0, known_tenant=True)
    assert ok.action == ADMIT


def test_decide_oversubscription_scales_capacity():
    cfg = _cfg(oversubscription=1.5)
    assert cfg.capacity_w() == 15_000.0
    d = decide(cfg, nnodes=12, committed_w=0.0, queue_depth=0)
    assert (d.action, d.code) == (ADMIT, CODE_OK)


def test_decide_is_pure_and_serializable():
    d1 = decide(_cfg(), nnodes=4, committed_w=8000.0, queue_depth=0)
    d2 = decide(_cfg(), nnodes=4, committed_w=8000.0, queue_depth=0)
    assert d1 == d2
    assert d1.to_dict() == d2.to_dict()
    assert AdmissionDecision(**d1.to_dict()) == d1


def test_admission_config_validation():
    with pytest.raises(ValueError):
        AdmissionConfig(budget_w=-1.0)
    with pytest.raises(ValueError):
        AdmissionConfig(budget_w=100.0, admit_node_w=0.0)
    with pytest.raises(ValueError):
        AdmissionConfig(budget_w=100.0, oversubscription=0.5)
    with pytest.raises(ValueError):
        AdmissionConfig(budget_w=100.0, max_queue_depth=-1)
    with pytest.raises(ValueError):
        decide(_cfg(), nnodes=0, committed_w=0.0, queue_depth=0)
