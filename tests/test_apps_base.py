"""Unit + property tests for application profiles and the perf response."""

import pytest
from hypothesis import given, strategies as st

from repro.apps.base import AppProfile, PhaseProfile, PlatformDemand
from repro.apps.registry import get_profile


def minimal_profile(**overrides):
    kwargs = dict(
        name="toy",
        scaling="weak",
        launcher="mpi",
        base_runtime_s=100.0,
        ref_nodes=1,
        gpu_frac=0.5,
        cpu_frac=0.3,
        beta_gpu=0.8,
        gamma_gpu=1.6,
        demand={
            "lassen": PlatformDemand(cpu_dyn_w=50.0, mem_dyn_w=20.0, gpu_dyn_w=100.0)
        },
    )
    kwargs.update(overrides)
    return AppProfile(**kwargs)


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------

def test_invalid_scaling_rejected():
    with pytest.raises(ValueError):
        minimal_profile(scaling="diagonal")


def test_fractions_must_sum_to_at_most_one():
    with pytest.raises(ValueError):
        minimal_profile(gpu_frac=0.8, cpu_frac=0.5)


def test_profile_needs_demand():
    with pytest.raises(ValueError):
        minimal_profile(demand={})


def test_phase_validation():
    with pytest.raises(ValueError):
        PhaseProfile(period_s=-1.0)
    with pytest.raises(ValueError):
        PhaseProfile(duty=0.0)
    with pytest.raises(ValueError):
        PhaseProfile(gpu_depth=1.5)


# ---------------------------------------------------------------------------
# Phases
# ---------------------------------------------------------------------------

def test_flat_phase_factor_always_one():
    ph = PhaseProfile()
    assert ph.flat
    assert ph.demand_factor(123.4) == (1.0, 1.0)
    assert ph.mean_factor() == (1.0, 1.0)


def test_phase_high_low_by_progress_position():
    ph = PhaseProfile(period_s=10.0, duty=0.6, gpu_depth=0.5, cpu_depth=0.2)
    assert ph.demand_factor(1.0) == (1.0, 1.0)  # in the first 60%
    assert ph.demand_factor(7.0) == (0.5, 0.8)  # in the low tail
    assert ph.demand_factor(11.0) == (1.0, 1.0)  # wrapped around


def test_phase_mean_factor_weighted_by_duty():
    ph = PhaseProfile(period_s=10.0, duty=0.6, gpu_depth=0.5, cpu_depth=0.0)
    g, c = ph.mean_factor()
    assert g == pytest.approx(0.6 + 0.4 * 0.5)
    assert c == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Scaling laws
# ---------------------------------------------------------------------------

def test_weak_scaling_runtime_constant():
    p = minimal_profile(scaling="weak")
    assert p.runtime_s("lassen", 1) == p.runtime_s("lassen", 32)


def test_strong_scaling_runtime_shrinks_with_nodes():
    p = minimal_profile(scaling="strong", ref_nodes=4, strong_runtime_exp=0.75)
    assert p.runtime_s("lassen", 8) < p.runtime_s("lassen", 4)
    # Imperfect speedup: 2x nodes gives < 2x speedup.
    speedup = p.runtime_s("lassen", 4) / p.runtime_s("lassen", 8)
    assert 1.0 < speedup < 2.0


def test_strong_scaling_power_shrinks_with_nodes():
    p = minimal_profile(scaling="strong", ref_nodes=1, strong_power_exp=0.25)
    assert p.power_scale(32) < p.power_scale(2) < p.power_scale(1) == 1.0


def test_weak_scaling_power_constant():
    p = minimal_profile(scaling="weak")
    assert p.power_scale(32) == 1.0


def test_work_scale_multiplies_runtime():
    p = minimal_profile()
    assert p.runtime_s("lassen", 1, work_scale=3.0) == pytest.approx(300.0)


def test_missing_platform_demand_raises():
    p = minimal_profile()
    with pytest.raises(KeyError):
        p.platform_demand("tioga")


# ---------------------------------------------------------------------------
# Performance response
# ---------------------------------------------------------------------------

def test_response_is_one_at_full_power():
    assert AppProfile.component_response(1.0, 0.8, 1.6) == 1.0


def test_response_floor_prevents_zero():
    assert AppProfile.component_response(0.0, 1.0, 1.0) >= 0.02


def test_unthrottled_progress_rate_is_one():
    p = minimal_profile()
    assert p.progress_rate(1.0, 1.0) == pytest.approx(1.0)


def test_gpu_throttle_slows_progress():
    p = minimal_profile()
    assert p.progress_rate(0.5, 1.0) < 1.0


def test_insensitive_fraction_limits_slowdown():
    """Even a starved GPU cannot slow the app below its Amdahl bound."""
    p = minimal_profile(gpu_frac=0.5, cpu_frac=0.0)
    worst = p.progress_rate(0.0, 1.0)
    assert worst > 0.0
    # other fraction (0.5) still runs at full speed:
    assert worst >= 1.0 / (0.5 / 0.02 + 0.5)


@given(x=st.floats(0.0, 1.0), beta=st.floats(0.0, 1.0), gamma=st.floats(1.0, 3.0))
def test_response_bounded_and_monotone_nearby(x, beta, gamma):
    g = AppProfile.component_response(x, beta, gamma)
    assert 0.02 <= g <= 1.0
    g_up = AppProfile.component_response(min(1.0, x + 0.05), beta, gamma)
    assert g_up >= g - 1e-9  # nondecreasing in granted power


@given(
    gpu=st.floats(0.0, 1.0),
    cpu=st.floats(0.0, 1.0),
)
def test_progress_rate_bounded(gpu, cpu):
    p = minimal_profile()
    r = p.progress_rate(gpu, cpu)
    assert 0.0 < r <= 1.0 + 1e-9


@given(gpu=st.floats(0.0, 0.99))
def test_more_gpu_power_never_hurts(gpu):
    p = minimal_profile()
    assert p.progress_rate(gpu + 0.01, 1.0) >= p.progress_rate(gpu, 1.0) - 1e-9


# ---------------------------------------------------------------------------
# Registry profiles: mean power prediction consistency
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ["lammps", "gemm", "quicksilver", "laghos", "nqueens"])
def test_mean_node_demand_at_least_idle(name):
    p = get_profile(name)
    mean = p.mean_node_demand_w("lassen", 4, node_idle_w=400.0, n_sockets=2, n_gpus=4)
    assert mean >= 400.0
