"""Unit tests for the validation driver."""

import pytest

from repro.experiments.validate import Check, ValidationReport, run_validation


def test_report_accumulates_and_renders():
    r = ValidationReport()
    r.add("a", True, "fine")
    r.add("b", False, "broken")
    assert not r.all_passed
    text = r.render()
    assert "[PASS] a: fine" in text
    assert "[FAIL] b: broken" in text
    assert "1/2 checks passed" in text


def test_empty_report_passes():
    assert ValidationReport().all_passed


def test_check_row_format():
    assert Check("x", True, "d").row() == "[PASS] x: d"
    assert Check("x", False, "d").row() == "[FAIL] x: d"


@pytest.mark.slow
def test_full_validation_passes():
    """The capstone: every headline claim holds on the default seeds."""
    report = run_validation(seed=1, queue_seed=10)
    assert report.all_passed, "\n" + report.render()
    assert len(report.checks) == 11
