"""Unit tests for named random streams."""

import numpy as np

from repro.simkernel import RandomStreams


def test_same_name_returns_same_generator():
    s = RandomStreams(seed=1)
    assert s.get("a") is s.get("a")


def test_streams_are_reproducible_across_factories():
    a = RandomStreams(seed=42).get("x").random(10)
    b = RandomStreams(seed=42).get("x").random(10)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    s = RandomStreams(seed=42)
    a = s.get("x").random(10)
    b = s.get("y").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RandomStreams(seed=1).get("x").random(10)
    b = RandomStreams(seed=2).get("x").random(10)
    assert not np.array_equal(a, b)


def test_adding_consumer_does_not_perturb_existing():
    """The key invariant: new consumers never shift existing draws."""
    s1 = RandomStreams(seed=7)
    first = s1.get("existing").random(5)

    s2 = RandomStreams(seed=7)
    s2.get("brand-new-consumer").random(100)  # interleaved other use
    second = s2.get("existing").random(5)
    assert np.array_equal(first, second)


def test_reset_replays_from_scratch():
    s = RandomStreams(seed=3)
    a = s.get("x").random(5)
    s.reset()
    b = s.get("x").random(5)
    assert np.array_equal(a, b)


def test_fork_produces_independent_root():
    s = RandomStreams(seed=3)
    f = s.fork("child")
    a = s.get("x").random(5)
    b = f.get("x").random(5)
    assert not np.array_equal(a, b)


def test_fork_is_deterministic():
    a = RandomStreams(seed=3).fork("child").get("x").random(5)
    b = RandomStreams(seed=3).fork("child").get("x").random(5)
    assert np.array_equal(a, b)


def test_key_is_stable_crc32_not_python_hash():
    # CRC32 of "abc" is fixed forever; Python's hash() is salted.
    assert RandomStreams._key("abc") == 891568578
