"""Serving-tier accounting surface: pagination, formats, admission
HTTP envelopes, tenant filters, and the accounting loadgen mix.

Everything runs against the in-process :class:`PowerService` — the
same deterministic request/response layer the serving goldens pin —
so these are fast, hermetic, and byte-stable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import PowerManagedCluster
from repro.manager.cluster_manager import ManagerConfig
from repro.serving.driver import SimDriver
from repro.serving.loadgen import (
    ACCOUNTING_OP_MIX,
    LoadProfile,
    generate_trace,
    run_loadtest,
)
from repro.serving.registry import ClusterRegistry
from repro.serving.service import PowerService
from repro.tenancy import AdmissionConfig, TenancyConfig, TenantDirectory


def _directory() -> TenantDirectory:
    return TenantDirectory.build(
        projects=[("astro", 3.0), ("bio", 1.0)],
        users=[("alice", "astro"), ("bob", "bio")],
    )


def _service(
    admission: AdmissionConfig | None = None, seed: int = 11
) -> tuple[PowerService, SimDriver]:
    cluster = PowerManagedCluster(
        platform="lassen",
        n_nodes=8,
        seed=seed,
        manager_config=ManagerConfig(
            global_cap_w=8000.0,
            policy="proportional",
            static_node_cap_w=1950.0,
        ),
        tenancy=TenancyConfig(
            directory=_directory(),
            accounting_interval_s=5.0,
            admission=admission,
        ),
    )
    registry = ClusterRegistry.from_cluster(cluster, name="prod", aliases=["p"])
    return PowerService(registry), SimDriver(registry)


@pytest.fixture()
def gated():
    """Service with admission gating and a depth-1 queue, pre-loaded so
    every HTTP admission outcome (201/202/403) is reachable."""
    service, driver = _service(
        admission=AdmissionConfig(
            budget_w=8000.0, admit_node_w=1000.0, max_queue_depth=1
        )
    )
    for user in ("alice", "bob"):
        r = service.handle(
            "POST",
            "/v1/clusters/prod/jobs",
            body={"app": "gemm", "nnodes": 4, "user": user},
        )
        assert r.status == 201, r.body
    return service, driver


def test_submit_admission_envelopes(gated):
    service, _ = gated
    # Oversubscribed → 202 queued with the structured decision attached.
    r = service.handle(
        "POST",
        "/v1/clusters/prod/jobs",
        body={"app": "gemm", "nnodes": 2, "user": "alice"},
    )
    assert r.status == 202, (r.status, r.body)
    assert r.body["admitted"] is False
    assert r.body["decision"]["action"] == "queue"
    assert r.body["decision"]["code"] == "oversubscribed"
    # Queue full → 403 reject.
    r = service.handle(
        "POST",
        "/v1/clusters/prod/jobs",
        body={"app": "gemm", "nnodes": 2, "user": "bob"},
    )
    assert r.status == 403, (r.status, r.body)
    assert r.body["decision"]["code"] == "queue_full"
    # Oversized for the cluster → service-level 400, before admission.
    r = service.handle(
        "POST",
        "/v1/clusters/prod/jobs",
        body={"app": "gemm", "nnodes": 30, "user": "bob"},
    )
    assert r.status == 400


def test_submit_too_large_is_403():
    """Power-infeasible but schedulable → admission's too_large reject."""
    service, _ = _service(
        admission=AdmissionConfig(budget_w=8000.0, admit_node_w=1500.0),
        seed=2,
    )
    r = service.handle(
        "POST",
        "/v1/clusters/prod/jobs",
        body={"app": "gemm", "nnodes": 8, "user": "alice"},
    )
    assert r.status == 403
    assert r.body["decision"]["code"] == "too_large"


def test_accounting_pagination_partitions_exactly(gated):
    service, driver = gated
    driver.advance(12.0)
    page1 = service.handle(
        "GET", "/v1/accounting", params={"limit": "1", "offset": "0"}
    )
    assert page1.status == 200
    assert page1.body["total"] >= 2
    assert page1.body["next_offset"] == 1
    rest = service.handle(
        "GET", "/v1/accounting", params={"limit": "100", "offset": "1"}
    )
    assert rest.status == 200
    everything = service.handle("GET", "/v1/accounting").body["accounts"]
    assert page1.body["accounts"] + rest.body["accounts"] == everything
    # Past-the-end offset is an empty page, not an error.
    empty = service.handle(
        "GET", "/v1/accounting", params={"offset": str(len(everything))}
    )
    assert empty.status == 200 and empty.body["accounts"] == []


def test_accounting_concise_subset_of_detailed(gated):
    service, driver = gated
    driver.advance(12.0)
    concise = service.handle("GET", "/v1/accounting").body["accounts"]
    detailed = service.handle(
        "GET", "/v1/accounting", params={"response_format": "detailed"}
    ).body["accounts"]
    assert len(concise) == len(detailed)
    for c, d in zip(concise, detailed):
        assert set(c) < set(d), (set(c), set(d))
        for key, value in c.items():
            assert d[key] == value


def test_accounting_alias_and_project_detail(gated):
    service, driver = gated
    driver.advance(12.0)
    via_alias = service.handle("GET", "/v1/accounting", params={"cluster": "p"})
    assert via_alias.status == 200 and via_alias.body["accounts"]
    detail = service.handle("GET", "/v1/accounting/astro")
    assert detail.status == 200 and detail.body["entries"]
    missing = service.handle("GET", "/v1/accounting/nope")
    assert missing.status == 404
    assert missing.body["error"]["code"] == "unknown_project"


def test_job_list_tenant_filters(gated):
    service, _ = gated
    by_user = service.handle(
        "GET", "/v1/clusters/prod/jobs", params={"user": "alice"}
    )
    assert by_user.status == 200 and len(by_user.body["jobs"]) == 1
    by_project = service.handle(
        "GET", "/v1/clusters/prod/jobs", params={"project": "astro"}
    )
    assert by_project.status == 200 and by_project.body["jobs"]
    for job in by_project.body["jobs"]:
        detail = service.handle(
            "GET",
            f"/v1/clusters/prod/jobs/{job['jobid']}",
            params={"response_format": "detailed"},
        )
        assert detail.body.get("project") == "astro"
        assert detail.body.get("user") == "alice"


def test_accounting_on_tenancyless_cluster_is_empty_200():
    cluster = PowerManagedCluster(platform="lassen", n_nodes=4, seed=3)
    service = PowerService(ClusterRegistry.from_cluster(cluster, name="default"))
    r = service.handle("GET", "/v1/accounting")
    assert r.status == 200 and r.body["accounts"] == []
    assert service.handle("GET", "/v1/accounting/astro").status == 404


def test_fuzzed_tenant_payloads_never_500(gated):
    """Adversarial submit payloads and accounting params produce clean
    4xx/2xx envelopes — never an unhandled exception."""
    service, _ = gated
    rng = np.random.default_rng(42)
    junk_values = [
        None, "", "alice", 0, -3, 3.5, True, [], ["x"], {}, {"a": 1},
        "nope", "astro", 10**9, "\x00", "u" * 512,
    ]
    for _ in range(150):
        body = {"app": "gemm", "nnodes": 2}
        for key in ("user", "project", "nnodes", "app"):
            if rng.random() < 0.6:
                body[key] = junk_values[int(rng.integers(len(junk_values)))]
        r = service.handle("POST", "/v1/clusters/prod/jobs", body=body)
        assert r.status < 500, (r.status, body, r.body)
    for _ in range(60):
        params = {}
        for key in ("limit", "offset", "cluster", "response_format"):
            if rng.random() < 0.6:
                params[key] = str(
                    junk_values[int(rng.integers(len(junk_values)))]
                )
        r = service.handle("GET", "/v1/accounting", params=params)
        assert r.status < 500, (r.status, params, r.body)
        project = str(junk_values[int(rng.integers(len(junk_values)))])
        r = service.handle("GET", f"/v1/accounting/{project}")
        assert r.status < 500, (r.status, project, r.body)


def test_loadgen_accounting_mix_runs_clean_and_deterministic():
    def fresh():
        cluster = PowerManagedCluster(
            platform="lassen",
            n_nodes=16,
            seed=5,
            manager_config=ManagerConfig(
                global_cap_w=40000.0,
                policy="proportional",
                static_node_cap_w=3050.0,
            ),
            tenancy=TenancyConfig(directory=_directory()),
        )
        registry = ClusterRegistry.from_cluster(cluster, name="default")
        return PowerService(registry), SimDriver(registry)

    profile = LoadProfile(
        clients=20, requests_per_client=4, op_mix=ACCOUNTING_OP_MIX
    )
    service, driver = fresh()
    result = run_loadtest(7, profile, service, driver)
    assert result.errors == 0, result.status_counts
    assert result.op_counts.get("accounting", 0) > 0
    service, driver = fresh()
    again = run_loadtest(7, profile, service, driver)
    assert again.response_digest == result.response_digest


def test_default_op_mix_untouched_by_accounting_op():
    trace = generate_trace(3, LoadProfile(clients=10, requests_per_client=3))
    assert all(r.op != "accounting" for r in trace)
