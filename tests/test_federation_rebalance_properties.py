"""Property tests for the pure site-level rebalance arithmetic.

The three contract properties of
:func:`repro.federation.rebalance.split_site_budget` (ISSUE 5):

* **conservation** — shares sum exactly to the site budget, or to the
  binding total of the ceilings when those cap the distribution
  (:func:`~repro.federation.rebalance.site_allocation_total_w`);
* **monotonicity in demand** — raising one cluster's demand never
  lowers its own share;
* **floor safety** — no live cluster is ever allocated below its floor,
  and floor clamping never pushes the split over budget.

Plus the lifted-one-level equivalence: with no floors/ceilings and
equal demands, the split degenerates to the cluster manager's own
``split_budget`` equal division.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.federation.rebalance import (
    cluster_demand_w,
    site_allocation_total_w,
    split_site_budget,
    validate_floors,
)
from repro.manager.policies.proportional import split_budget

settings.register_profile("repro", derandomize=True, max_examples=200)
settings.load_profile("repro")

#: Loose comparison epsilon for sums of generated floats.
EPS = 1e-6


def _site(draw_budget, floors, demands, ceilings):
    names = [f"c{i}" for i in range(len(demands))]
    return (
        {n: d for n, d in zip(names, demands)},
        {n: f for n, f in zip(names, floors)},
        {n: c for n, c in zip(names, ceilings)},
    )


cluster_counts = st.integers(1, 6)


@st.composite
def site_inputs(draw, with_bounds=True):
    n = draw(cluster_counts)
    demands = draw(
        st.lists(st.floats(0.0, 50_000.0), min_size=n, max_size=n)
    )
    budget = draw(st.floats(1_000.0, 200_000.0))
    if not with_bounds:
        floors = [0.0] * n
        ceilings = [None] * n
    else:
        # Floors are feasible by construction: each below budget/n.
        floors = draw(
            st.lists(
                st.floats(0.0, budget / n * 0.9), min_size=n, max_size=n
            )
        )
        ceilings = []
        for i in range(n):
            if draw(st.booleans()):
                ceilings.append(
                    floors[i] + draw(st.floats(0.0, 100_000.0))
                )
            else:
                ceilings.append(None)
    demands_m, floors_m, ceilings_m = _site(budget, floors, demands, ceilings)
    return budget, demands_m, floors_m, ceilings_m


@given(site_inputs())
def test_conservation(inputs):
    """Σ shares == site_allocation_total_w exactly (to float tolerance)."""
    budget, demands, floors, ceilings = inputs
    shares = split_site_budget(budget, demands, floors, ceilings)
    assert set(shares) == set(demands)
    expected = site_allocation_total_w(budget, demands, ceilings)
    total = sum(shares.values())
    assert math.isclose(total, expected, rel_tol=1e-9, abs_tol=EPS), (
        total, expected,
    )
    # Never above the site budget, regardless of which total binds.
    assert total <= budget + EPS


@given(site_inputs())
def test_floor_and_ceiling_respect(inputs):
    """Every share lands inside its [floor, ceiling] box."""
    budget, demands, floors, ceilings = inputs
    shares = split_site_budget(budget, demands, floors, ceilings)
    for name, share in shares.items():
        assert share >= floors[name] - EPS, (name, share, floors[name])
        if ceilings[name] is not None:
            assert share <= ceilings[name] + EPS, (name, share, ceilings[name])


@given(site_inputs(with_bounds=False), st.floats(100.0, 50_000.0))
def test_monotonicity_in_demand(inputs, bump):
    """Raising one cluster's demand never lowers its own share."""
    budget, demands, _floors, _ceilings = inputs
    shares = split_site_budget(budget, demands)
    name = sorted(demands)[0]
    bumped = dict(demands)
    bumped[name] = bumped[name] + bump
    shares2 = split_site_budget(budget, bumped)
    assert shares2[name] >= shares[name] - EPS


@given(site_inputs())
def test_floor_clamping_never_starves(inputs):
    """A zero-demand live cluster with a floor still gets its floor."""
    budget, demands, floors, ceilings = inputs
    starved = dict(demands)
    name = sorted(demands)[0]
    starved[name] = 0.0
    shares = split_site_budget(budget, starved, floors, ceilings)
    assert shares[name] >= floors[name] - EPS


@given(
    budget=st.floats(1_000.0, 100_000.0),
    n=st.integers(1, 8),
)
def test_equal_demand_matches_cluster_split(budget, n):
    """Equal demands, no bounds → the cluster manager's equal split,
    lifted one level (each cluster's share == split_budget's per-job
    node share × one 'node')."""
    demands = {f"c{i}": cluster_demand_w(4, 3050.0) for i in range(n)}
    shares = split_site_budget(budget, demands)
    # split_budget divides a budget equally over jobs weighted by node
    # count; n jobs of 1 node each is the same arithmetic shape.
    per_job = split_budget(budget, {i: 1 for i in range(n)}, node_peak_w=budget)
    for i in range(n):
        assert math.isclose(
            shares[f"c{i}"], per_job[i], rel_tol=1e-9, abs_tol=EPS
        )


def test_validate_floors_rejects_infeasible():
    with pytest.raises(ValueError):
        validate_floors(100.0, {"a": 60.0, "b": 60.0})
    with pytest.raises(ValueError):
        validate_floors(100.0, {"a": -1.0})
    with pytest.raises(ValueError):
        validate_floors(100.0, {"a": 50.0}, {"a": 40.0})
    validate_floors(100.0, {"a": 60.0, "b": 40.0})


def test_split_rejects_negative_demand():
    with pytest.raises(ValueError):
        split_site_budget(100.0, {"a": -5.0})


def test_empty_site():
    assert split_site_budget(100.0, {}) == {}
    assert site_allocation_total_w(100.0, {}) == 0.0


def test_stranded_budget_topped_up():
    """The floor-pin + ceiling-bind interaction (found by the federated
    fuzzer, seed 2): leftover budget flows back to floor-pinned
    clusters instead of being stranded."""
    shares = split_site_budget(
        28_967.5,
        {"c0": 0.0, "c1": 21_350.0},
        {"c0": 4_191.6, "c1": 0.0},
        {"c0": 30_005.5, "c1": 14_752.1},
    )
    assert math.isclose(sum(shares.values()), 28_967.5, rel_tol=1e-9)
    assert shares["c1"] == 14_752.1
