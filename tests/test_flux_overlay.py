"""Unit + property tests for the TBON overlay."""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.flux.overlay import TBON


def test_parent_child_relationship_binary():
    t = TBON(size=7, fanout=2)
    assert t.parent(0) is None
    assert t.parent(1) == 0 and t.parent(2) == 0
    assert t.children(0) == [1, 2]
    assert t.children(1) == [3, 4]
    assert t.children(3) == []


def test_fanout_k_children():
    t = TBON(size=13, fanout=3)
    assert t.children(0) == [1, 2, 3]
    assert t.children(1) == [4, 5, 6]


def test_depth():
    t = TBON(size=7, fanout=2)
    assert t.depth(0) == 0
    assert t.depth(1) == 1
    assert t.depth(3) == 2


def test_max_depth_single_node():
    assert TBON(size=1).max_depth() == 0


def test_route_to_self_is_single_hop_free():
    t = TBON(size=8)
    assert t.route(3, 3) == [3]
    assert t.path_delay(3, 3) == 0.0


def test_route_up_to_root():
    t = TBON(size=8, fanout=2)
    assert t.route(5, 0) == [5, 2, 0]


def test_route_through_lca():
    t = TBON(size=8, fanout=2)
    # 3's ancestors: 3,1,0 ; 5's: 5,2,0 -> LCA is 0.
    assert t.route(3, 5) == [3, 1, 0, 2, 5]
    # 3 and 4 share parent 1.
    assert t.route(3, 4) == [3, 1, 4]


def test_invalid_rank_rejected():
    t = TBON(size=4)
    with pytest.raises(ValueError):
        t.route(0, 4)
    with pytest.raises(ValueError):
        t.parent(-1)


def test_invalid_construction():
    with pytest.raises(ValueError):
        TBON(size=0)
    with pytest.raises(ValueError):
        TBON(size=4, fanout=0)


def test_graph_is_a_tree():
    for size, fanout in [(1, 2), (5, 2), (16, 2), (17, 4), (100, 3)]:
        g = TBON(size=size, fanout=fanout).graph()
        assert g.number_of_nodes() == size
        assert g.number_of_edges() == size - 1
        assert nx.is_connected(g) if size > 1 else True
        assert nx.is_tree(g)


def test_path_delay_scales_with_hops():
    t = TBON(size=16, fanout=2, hop_latency_s=1e-4)
    assert t.path_delay(15, 0) == pytest.approx(4e-4)  # 15->7->3->1->0
    assert t.path_delay(1, 0) == pytest.approx(1e-4)


def test_hop_delay_jitter_seeded():
    import numpy as np

    t1 = TBON(size=4, rng=np.random.default_rng(5), latency_jitter=0.2)
    t2 = TBON(size=4, rng=np.random.default_rng(5), latency_jitter=0.2)
    d1 = [t1.hop_delay() for _ in range(10)]
    d2 = [t2.hop_delay() for _ in range(10)]
    assert d1 == d2
    assert len(set(d1)) > 1
    assert all(d > 0 for d in d1)


@given(
    size=st.integers(1, 200),
    fanout=st.integers(1, 5),
    data=st.data(),
)
def test_route_properties(size, fanout, data):
    """Routes start/end correctly, follow tree edges, and have no cycles."""
    t = TBON(size=size, fanout=fanout)
    src = data.draw(st.integers(0, size - 1))
    dst = data.draw(st.integers(0, size - 1))
    route = t.route(src, dst)
    assert route[0] == src
    assert route[-1] == dst
    assert len(set(route)) == len(route)  # no revisits
    for a, b in zip(route, route[1:]):
        assert t.parent(a) == b or t.parent(b) == a  # tree edges only


@given(size=st.integers(2, 200), fanout=st.integers(1, 5))
def test_every_rank_reaches_root(size, fanout):
    t = TBON(size=size, fanout=fanout)
    for rank in range(size):
        chain = list(t.ancestors(rank))
        assert chain[0] == rank
        assert chain[-1] == 0
        assert len(chain) == t.depth(rank) + 1
