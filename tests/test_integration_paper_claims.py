"""Integration tests: the paper's headline claims, end to end.

These run the actual experiment drivers (at full scale — simulated time
is cheap) and assert the *shapes* the paper reports: who wins, by
roughly what factor, and where the qualitative behaviours appear.
"""

import pytest

from repro.experiments import calibration as cal
from repro.experiments.fig1_timeline import run_fig1
from repro.experiments.fig7_nonmpi import run_fig7
from repro.experiments.table3_static import run_table3
from repro.experiments.table4_policies import run_table4
from repro.experiments.queue_campaign import run_queue_campaign


@pytest.fixture(scope="module")
def table4():
    return run_table4(seed=1)


@pytest.fixture(scope="module")
def table3():
    return run_table3(seed=1)


# ---------------------------------------------------------------------------
# Table III: IBM static capping
# ---------------------------------------------------------------------------

def test_table3_derived_gpu_caps_match_paper(table3):
    for cap, (gpu_ref, _, _) in cal.TABLE3.items():
        meas = table3.rows[cap].derived_gpu_cap_w
        assert meas == pytest.approx(gpu_ref, abs=2.0), f"cap {cap}"


def test_table3_unconstrained_peak_well_below_bound(table3):
    """Worst-case provisioning: max usage ~10.7 kW of an allowed 24.4 kW."""
    max_kw = table3.rows[3050.0].max_cluster_kw
    assert max_kw < 0.5 * cal.UNCONSTRAINED_BOUND_W / 1e3
    assert max_kw == pytest.approx(10.66, rel=0.10)


def test_table3_ibm_1200_is_extremely_conservative(table3):
    """At 1200 W node caps the cluster peaks near 6 kW, far below 9.6 kW."""
    max_kw = table3.rows[1200.0].max_cluster_kw
    assert max_kw == pytest.approx(6.05, rel=0.10)
    assert max_kw < 0.7 * cal.GLOBAL_POWER_CAP_W / 1e3


def test_table3_1950_approaches_the_bound(table3):
    max_kw = table3.rows[1950.0].max_cluster_kw
    assert max_kw == pytest.approx(9.5, rel=0.08)


def test_table3_monotone_in_cap(table3):
    kws = [table3.rows[c].max_cluster_kw for c in (1200.0, 1800.0, 1950.0, 3050.0)]
    assert kws == sorted(kws)


# ---------------------------------------------------------------------------
# Table IV: policy comparison
# ---------------------------------------------------------------------------

def test_unconstrained_matches_paper(table4):
    m = table4.scenarios["unconstrained"].metrics
    assert m["gemm"].runtime_s == pytest.approx(548.0, rel=0.03)
    assert m["gemm"].max_node_power_w == pytest.approx(1523.0, rel=0.03)
    assert m["quicksilver"].runtime_s == pytest.approx(348.0, rel=0.03)
    assert m["quicksilver"].max_node_power_w == pytest.approx(952.0, rel=0.03)


def test_ibm_default_slows_gemm_about_2x(table4):
    m = table4.scenarios["ibm_default_1200"].metrics
    slowdown = m["gemm"].runtime_s / 548.0
    assert slowdown == pytest.approx(1145.0 / 548.0, rel=0.10)


def test_ibm_default_barely_affects_quicksilver(table4):
    m = table4.scenarios["ibm_default_1200"].metrics
    assert m["quicksilver"].runtime_s < 348.0 * 1.08


def test_static_1950_near_unconstrained_performance(table4):
    m = table4.scenarios["static_1950"].metrics
    assert m["gemm"].runtime_s == pytest.approx(564.0, rel=0.05)


def test_policy_performance_ordering(table4):
    """static <= prop <= fpp << ibm_default for GEMM runtime."""
    t = {k: v.metrics["gemm"].runtime_s for k, v in table4.scenarios.items()}
    assert t["unconstrained"] <= t["static_1950"] <= t["proportional"]
    assert t["proportional"] <= t["fpp"] < t["ibm_default_1200"]


def test_fpp_saves_energy_vs_proportional(table4):
    """Abstract: 'FPP reduces energy by 1% compared to proportional'."""
    claims = table4.headline_claims()
    assert -4.0 < claims["fpp_vs_prop_energy_pct"] < -0.2
    assert 0.0 <= claims["fpp_vs_prop_gemm_slowdown_pct"] < 4.0


def test_fpp_beats_ibm_default_substantially(table4):
    """Abstract: 20% energy gain, 1.58x performance vs IBM default.

    Our IBM-default energy penalty is milder than the paper's (their
    1145 s run drew relatively more power), so accept a broad band on
    energy while requiring the speedup to match well.
    """
    claims = table4.headline_claims()
    assert claims["fpp_vs_ibm_energy_pct"] < -8.0
    assert claims["fpp_vs_ibm_gemm_speedup"] == pytest.approx(1.9, abs=0.35)


def test_proportional_beats_ibm_default(table4):
    claims = table4.headline_claims()
    assert claims["prop_vs_ibm_energy_pct"] < -8.0


def test_dynamic_policies_never_exceed_cluster_budget(table4):
    for name in ("proportional", "fpp"):
        res = table4.scenarios[name]
        assert res.max_cluster_power_w <= cal.GLOBAL_POWER_CAP_W * 1.02


def test_proportional_share_steps_up_when_qs_exits(table4):
    """Fig 5: GEMM nodes gain power after Quicksilver finishes."""
    res = table4.scenarios["proportional"]
    shares = [s for (_, _, s) in res.share_log if s is not None]
    assert any(abs(s - 1200.0) < 1.0 for s in shares)  # 8 nodes active
    assert any(abs(s - 1600.0) < 1.0 for s in shares)  # 6 nodes active


def test_fig5_gemm_node_power_increases_after_qs_exit(table4):
    res = table4.scenarios["proportional"]
    qs_end = res.metrics["quicksilver"].runtime_s
    gemm_host = "lassen000"
    tl = res.timelines[gemm_host]
    before = [w for t, w in tl if 30.0 <= t <= qs_end - 30.0]
    after = [w for t, w in tl if qs_end + 30.0 <= t <= res.metrics["gemm"].runtime_s - 10]
    assert sum(after) / len(after) > sum(before) / len(before) + 50.0


def test_fig6_fpp_converges_for_quicksilver(table4):
    """Fig 6: 'FPP converges quickly for both applications'."""
    # Quicksilver's stable 20 s period converges the controllers; GEMM's
    # flat/noisy signal keeps restoring to the ceiling. Either way the
    # policy reaches a steady cap well before the job ends — assert via
    # the share-driven GPU cap plateau in the timeline tail.
    res = table4.scenarios["fpp"]
    gemm = res.metrics["gemm"]
    tl = res.timelines["lassen000"]
    tail = [w for t, w in tl if gemm.runtime_s - 120 <= t <= gemm.runtime_s - 10]
    head = [w for t, w in tl if 90 <= t <= 180]
    assert tail, "no tail samples"
    # Tail power at or above early (probed) power: power was given back.
    assert sum(tail) / len(tail) >= sum(head) / len(head) - 50.0


# ---------------------------------------------------------------------------
# Section IV-E queue
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def queue():
    return run_queue_campaign(seed=10)


def test_queue_makespan_identical_across_policies(queue):
    """Paper: makespan identical under both policies (1539 s). FPP's
    probe transients can shift the critical path a few seconds here,
    so 'identical' means within 10 s (<0.7%)."""
    assert queue.makespans_equal(tolerance_s=10.0)


def test_queue_makespan_near_paper_value(queue):
    assert queue.runs["proportional"].makespan_s == pytest.approx(
        cal.QUEUE_MAKESPAN_S, rel=0.05
    )


def test_queue_fpp_improves_energy_per_node(queue):
    imp = queue.fpp_energy_improvement_pct()
    assert 0.2 < imp < 3.0  # paper: 1.26%


# ---------------------------------------------------------------------------
# Fig 1 + Fig 7 shapes
# ---------------------------------------------------------------------------

def test_fig1_quicksilver_periodic_lammps_flat():
    qs = run_fig1("quicksilver", work_scale=10)
    lm = run_fig1("lammps", work_scale=2)
    assert qs.dominant_period_s() == pytest.approx(20.0, abs=3.0)
    assert lm.dominant_period_s() == 0.0  # no prominent period
    assert qs.swing_w() > 300.0
    assert lm.swing_w() < qs.swing_w() / 3


def test_fig7_nonmpi_job_shrinks_gemm_share():
    res = run_fig7()
    before = res.gemm_power_before_w()
    during = res.gemm_power_during_w()
    after = res.gemm_power_after_w()
    assert during < before - 40.0
    assert after > during + 40.0
